//! YCSB over the block service (the paper's §V-E setup, live mode).
//!
//! Runs YCSB workloads A–F with 1000-byte records — deliberately unaligned
//! to 4 KiB blocks, which forces the read-modify-write behaviour the paper
//! analyzes — against a live proposed-system cluster, and verifies every
//! read against an in-memory model.
//!
//! ```sh
//! cargo run --release --example ycsb_demo
//! ```

use rablock::{BlockImage, ClusterBuilder, ImageSpec, PipelineMode, StoreError};
use rablock_workload::{WlKind, YcsbKind, YcsbWorkload};
use rand::SeedableRng;

const RECORDS: u64 = 4_000;
const RECORD_BYTES: u64 = 1_000;
const CAPACITY: u64 = 6_000;
const STEPS: u64 = 3_000;

fn main() -> Result<(), StoreError> {
    println!("YCSB over rablock (proposed system), {RECORDS} x {RECORD_BYTES}B records\n");
    let cluster = ClusterBuilder::new(PipelineMode::Dop)
        .nodes(2)
        .osds_per_node(2)
        .pg_count(32)
        .device_bytes(96 << 20)
        .start_live();

    let image_bytes = CAPACITY * RECORD_BYTES;
    for (i, kind) in YcsbKind::ALL.into_iter().enumerate() {
        let image = BlockImage::create(
            &cluster,
            ImageSpec::with_object_size(i as u8 + 1, image_bytes, 32, 1 << 20),
        )?;
        // Model of the record space for consistency checking.
        let mut model = vec![0u8; image_bytes as usize];
        let mut wl = YcsbWorkload::new(kind, RECORDS, RECORD_BYTES, CAPACITY);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF10);
        let (mut reads, mut writes) = (0u64, 0u64);
        let start = std::time::Instant::now();
        for step in 0..STEPS {
            for op in wl.next(&mut rng).ops {
                match op.kind {
                    WlKind::Write => {
                        let fill = (step % 251) as u8;
                        image.write(op.offset, &vec![fill; op.len as usize])?;
                        model[op.offset as usize..(op.offset + op.len) as usize].fill(fill);
                        writes += 1;
                    }
                    WlKind::Read => {
                        let got = image.read(op.offset, op.len)?;
                        let want = &model[op.offset as usize..(op.offset + op.len) as usize];
                        assert_eq!(got, want, "stale read in workload {kind} step {step}");
                        reads += 1;
                    }
                }
            }
        }
        println!(
            "workload {kind}: {STEPS} steps ({reads} reads, {writes} writes) in {:.2?} — all reads consistent",
            start.elapsed()
        );
    }

    cluster.shutdown();
    println!("\nall YCSB workloads passed strong-consistency checking.");
    Ok(())
}
