//! Drives the end-to-end data-integrity loop through the public API: a
//! seeded bit-rot fault silently corrupts one OSD's committed object data
//! mid-run, per-block checksums keep the rotten bytes away from clients,
//! and the background deep scrub finds the bad copies, votes blame, and
//! repairs them through the recovery push machinery — all while the
//! history checker vets every read against acked writes.
//!
//! Usage: `cargo run --release --example scrub_repair [seed] [flips]`

use rablock::sim::{
    BitRotSchedule, ClusterSim, ClusterSimConfig, ConnWorkload, FaultPlan, RetryPolicy, RotMedia,
    SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;
const OBJECTS: u64 = 8;
const BLOCKS: u64 = 16;
const WRITES: u64 = OBJECTS * BLOCKS;
const BALLAST: u64 = 256;
const READS: u64 = WRITES;

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

/// Ballast objects live far from the real ones; their writes keep the
/// cluster busy long enough for the rot strike and the scrub sweeps to
/// land inside the run, and push earlier records through the flush window.
fn ballast_oid(j: u64) -> ObjectId {
    let k = 1000 + (j % 8);
    ObjectId::new(GroupId((k % PGS as u64) as u32), k)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

/// Writes, ballast, then a full read-back sweep of every written block —
/// the reads run after the rot strike, so correct contents prove the
/// checksum/redirect/repair path end to end.
struct Conn {
    cursor: u64,
}

impl ConnWorkload for Conn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < WRITES {
            Some(WorkItem::Write {
                oid: oid(i % OBJECTS),
                offset: (i / OBJECTS) * 4096,
                len: 4096,
                fill: (i % 251) as u8,
            })
        } else if i < WRITES + BALLAST {
            let j = i - WRITES;
            Some(WorkItem::Write {
                oid: ballast_oid(j),
                offset: (j / 8) * 4096,
                len: 4096,
                fill: (j % 251) as u8,
            })
        } else if i < WRITES + BALLAST + READS {
            let j = i - WRITES - BALLAST;
            Some(WorkItem::Read {
                oid: oid(j % OBJECTS),
                offset: (j / OBJECTS) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

fn build(seed: u64, flips: u32) -> ClusterSim {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        // tiny() models the paper's checksum-free store; integrity needs
        // the per-block CRCs on.
        cos: CosOptions {
            checksums: true,
            ..CosOptions::tiny()
        },
        ..OsdConfig::default()
    };
    // Silent corruption against osd 1's committed data, mid-ballast: any
    // flushed block of any object it holds is fair game.
    cfg.faults = FaultPlan::none().with_bit_rot(BitRotSchedule {
        process: 1,
        at: ms(6),
        object_lo: 0,
        object_hi: u64::MAX,
        flips,
        media: RotMedia::CosData,
    });
    // Deep scrub every sweep, fast cadence so detection lands in-run.
    cfg.scrub_interval = Some(SimDuration::millis(4));
    cfg.scrub_deep_every = 1;
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    ClusterSim::new(
        cfg,
        vec![Box::new(Conn { cursor: 0 }) as Box<dyn ConnWorkload>],
    )
}

#[allow(clippy::type_complexity)]
fn run(seed: u64, flips: u32) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    let mut sim = build(seed, flips);
    let mut objects: Vec<(ObjectId, u64)> = (0..OBJECTS).map(|i| (oid(i), BLOCKS * 4096)).collect();
    objects.extend((0..8).map(|j| (ballast_oid(j), (BALLAST / 8) * 4096)));
    sim.prefill(&objects);
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    let divergence = sim.replica_digest_inconsistency();
    assert!(
        divergence.is_empty(),
        "replicas must agree at quiesce: {divergence:?}"
    );
    let checker = sim.checker().expect("history checking enabled");
    (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        checker.writes_acked(),
        checker.reads_checked(),
        report.scrubs_completed,
        report.scrub_errors_found,
        report.scrub_errors_repaired,
        report.read_checksum_errors,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(11, |s| s.parse().expect("seed: u64"));
    let flips: u32 = args.next().map_or(64, |s| s.parse().expect("flips: u32"));
    println!("scrub repair demo: seed={seed} flips={flips}");
    println!("fault: {flips} silent bit flips on osd1's committed data @6ms; deep scrub every 4ms");

    let first = run(seed, flips);
    let (w, r, e, acked, checked, scrubs, found, repaired, read_csum) = first;
    println!("writes_done={w} reads_done={r} client_errors={e} writes_acked={acked} reads_checked={checked}");
    println!("scrubs_completed={scrubs} errors_found={found} errors_repaired={repaired} read_checksum_errors={read_csum}");
    assert_eq!(e, 0, "no client ever sees the corruption");
    assert!(checked >= r, "every read vetted against acked writes");
    assert!(scrubs > 0, "scrub cadence ran");
    assert!(found > 0, "deep scrub must catch the rotten copies");
    assert!(repaired > 0, "scrub repair must heal them");

    let second = run(seed, flips);
    assert_eq!(first, second, "same seed must replay the identical history");
    println!("determinism: second run identical — rot was found, blamed, and healed; no client saw a corrupt byte.");
}
