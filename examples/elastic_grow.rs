//! Drives the elastic-operations layer end to end through the public API:
//! a cluster boots with half its OSDs weighted out of placement, then an
//! admin weaves them in at full weight while clients keep writing — so new
//! OSDs peer, pull history, and backfill in under a tight throttle, and the
//! rebalance is visible in the report counters and the capacity spread.
//!
//! Usage: `cargo run --release --example elastic_grow [seed]`

use rablock::sim::{
    ChurnOp, ClusterSim, ClusterSimConfig, ConnWorkload, RetryPolicy, SimDuration, SimRng, SimTime,
    WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cluster::placement::DEFAULT_OSD_WEIGHT;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 16;

fn oid(conn: u64, i: u64) -> ObjectId {
    let k = conn * 100 + i;
    ObjectId::new(GroupId((k % PGS as u64) as u32), k)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

struct Conn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for Conn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < 256 {
            Some(WorkItem::Write {
                oid: oid(self.conn, i % 8),
                offset: ((i / 8) % 16) * 4096,
                len: 4096,
                fill: ((self.conn * 97 + i) % 251) as u8,
            })
        } else if i < 320 {
            let j = i - 256;
            Some(WorkItem::Read {
                oid: oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

fn build(seed: u64) -> ClusterSim {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 4;
    cfg.osds_per_node = 2;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        // A deliberately tight backfill throttle so the rebalance queues.
        max_backfill_inflight: 2,
        backfill_bytes_per_tick: 1 << 20,
        ..OsdConfig::default()
    };
    // OSD ids are node-major (node*2, node*2+1): boot on the even OSD of
    // each node, keep the odd ones provisioned but weighted out…
    cfg.initially_out = (0..8).filter(|o| o % 2 == 1).collect();
    // …then an admin weaves them in at unit weight, 100 µs apart, at 8 ms.
    cfg.churn = (0..8)
        .filter(|o| o % 2 == 1)
        .map(|o| ChurnOp {
            at: ms(8) + SimDuration::micros(100) * o as u64,
            osd: o,
            weight: DEFAULT_OSD_WEIGHT,
        })
        .collect();
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    let conns = (0..2)
        .map(|c| Box::new(Conn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    ClusterSim::new(cfg, conns)
}

#[allow(clippy::type_complexity)]
fn run(seed: u64) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, Vec<u64>) {
    let mut sim = build(seed);
    let objects: Vec<_> = (0..2u64)
        .flat_map(|c| (0..8u64).map(move |i| (oid(c, i), 256 << 10)))
        .collect();
    sim.prefill(&objects);
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(2));
    let checker = sim.checker().expect("history checking enabled");
    (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        checker.writes_acked(),
        checker.reads_checked(),
        report.recovery_pushes,
        report.backfill_bytes,
        report.backfill_queued,
        sim.capacity_imbalance().to_bits(),
        sim.osd_fill_bytes().into_iter().map(|(_, b)| b).collect(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(42, |s| s.parse().expect("seed: u64"));
    println!("elastic grow demo: seed={seed}");
    println!("4 nodes x 2 OSDs; boots on 4 OSDs, the other 4 weave in at 8 ms under load");

    let first = run(seed);
    let (w, r, e, acked, checked, pushes, bf_bytes, bf_queued, imb, ref fills) = first;
    println!("writes_done={w} reads_done={r} client_errors={e} writes_acked={acked} reads_checked={checked}");
    println!("recovery_pushes={pushes} backfill_bytes={bf_bytes} backfill_queued={bf_queued}");
    let filled = fills.iter().filter(|&&b| b > 0).count();
    println!(
        "capacity: {} of {} OSDs hold data, max/mean fill imbalance {:.2}",
        filled,
        fills.len(),
        f64::from_bits(imb)
    );
    assert!(w + r + e >= 2 * 320, "all ops resolved");
    assert!(checked >= r, "every read vetted against acked writes");
    assert!(pushes >= 1, "the expansion must move data");
    assert!(filled >= 6, "joiners must take a share of the data");

    let second = run(seed);
    assert_eq!(first, second, "same seed must replay the identical history");
    println!("determinism: second run identical — rebalance lost no acknowledged write.");
}
