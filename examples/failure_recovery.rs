//! Walkthrough of the paper's failure-recovery protocol (§IV-A-4).
//!
//! Drives the sans-io OSD state machines directly through the seven steps
//! the paper describes: replicated NVM logging, a node failure, the
//! survivors' flush-but-keep, the map update, and the replacement node
//! synchronizing the operation log — ending with a strongly consistent
//! read served by the new member.
//!
//! ```sh
//! cargo run --example failure_recovery
//! ```

use rablock_cluster::msg::MonMsg;
use rablock_cluster::msg::{ClientId, ClientReply, ClientReq, OpId};
use rablock_cluster::osd::{Osd, OsdConfig, OsdEffect, OsdInput, PipelineMode};
use rablock_cluster::placement::{Monitor, OsdId, OsdMap};
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;
use rablock_storage::{GroupId, ObjectId};

/// Routes effects between OSDs synchronously (a miniature bus).
fn pump(osds: &mut [Osd], from: usize, effects: Vec<OsdEffect>) -> Vec<ClientReply> {
    let mut replies = Vec::new();
    let mut queue: Vec<(usize, Vec<OsdEffect>)> = vec![(from, effects)];
    while let Some((at, fx)) = queue.pop() {
        for effect in fx {
            match effect {
                OsdEffect::SendPeer { to, msg } => {
                    let sender = osds[at].id;
                    let out = osds[to.0 as usize].handle(OsdInput::Peer { from: sender, msg });
                    queue.push((to.0 as usize, out));
                }
                OsdEffect::Reply { msg, .. } => replies.push(msg),
                OsdEffect::StoreIo {
                    token, wait: true, ..
                } => {
                    let out = osds[at].handle(OsdInput::StoreDurable { token });
                    queue.push((at, out));
                }
                OsdEffect::WakeFlush { group } => {
                    let out = osds[at].handle(OsdInput::FlushGroup { group });
                    queue.push((at, out));
                }
                OsdEffect::WakeRead { token } => {
                    let out = osds[at].handle(OsdInput::ReadFromStore { token });
                    queue.push((at, out));
                }
                OsdEffect::WakeSubmit { token } => {
                    let out = osds[at].handle(OsdInput::SubmitDeferred { token });
                    queue.push((at, out));
                }
                _ => {}
            }
        }
    }
    replies
}

fn main() {
    let map = OsdMap::new(3, 1, 8, 2);
    let cfg = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 48 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 16,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    let mut osds: Vec<Osd> = (0..3)
        .map(|i| Osd::new(OsdId(i), cfg.clone(), map.clone()))
        .collect();
    let mut monitor = Monitor::new(map.clone());

    let group = GroupId(0);
    let set = map.acting_set(group);
    let (primary, secondary) = (set[0], set[1]);
    let spare = (0..3)
        .map(OsdId)
        .find(|o| !set.contains(o))
        .expect("one spare node");
    println!("pg0 acting set: primary={primary}, secondary={secondary}; spare={spare}\n");

    // ① Writes are replicated to the replicas' operation logs in NVM.
    println!("① client writes three 4 KiB blocks (logged in NVM on both replicas)…");
    let oid = ObjectId::new(group, 7);
    for i in 0..3u64 {
        let p = primary.0 as usize;
        let fx = osds[p].handle(OsdInput::Client {
            from: ClientId(1),
            req: ClientReq::Write {
                op: OpId(i),
                oid,
                offset: i * 4096,
                data: vec![i as u8 + 1; 4096].into(),
            },
        });
        let replies = pump(&mut osds, p, fx);
        assert!(matches!(replies[..], [ClientReply::Done { .. }]));
    }
    println!(
        "   primary log: {} pending entries",
        osds[primary.0 as usize].log_pending(group)
    );
    println!(
        "   secondary log: {} pending entries\n",
        osds[secondary.0 as usize].log_pending(group)
    );

    // ② One of the storage nodes crashes. ③ The failure is reported.
    println!("② {secondary} crashes; ③ failure reported to the monitor…");
    let update = monitor
        .handle(MonMsg::ReportFailure { osd: secondary })
        .expect("monitor publishes a new map");
    let MonMsg::MapUpdate { map: new_map } = update else {
        unreachable!()
    };
    println!("   new map epoch {} (was {})", new_map.epoch, map.epoch);
    let new_set = new_map.acting_set(group);
    println!("   pg0 acting set is now {:?}\n", new_set);
    assert!(new_set.contains(&spare));

    // ④ Survivors flush to persist the latest data WITHOUT dropping log
    //    entries. ⑤ The map update reaches every node.
    println!("④+⑤ survivors flush-but-keep their logs; map update distributed…");
    for i in [primary.0 as usize, spare.0 as usize] {
        let fx = osds[i].handle(OsdInput::MapUpdate(new_map.clone()));
        pump(&mut osds, i, fx);
    }
    assert_eq!(
        osds[primary.0 as usize].log_pending(group),
        3,
        "survivor kept its log for peer sync"
    );
    println!(
        "   primary still holds {} log entries for synchronization\n",
        osds[primary.0 as usize].log_pending(group)
    );

    // ⑥ The replacement node was assigned; ⑦ it synchronized the log
    //    (the MapUpdate handler emitted the PullLog; pump routed the
    //    records back).
    println!("⑥+⑦ {spare} pulled the operation log from {primary}…");
    assert_eq!(
        osds[spare.0 as usize].log_pending(group),
        3,
        "log replicated to the spare"
    );
    println!(
        "   spare log: {} pending entries\n",
        osds[spare.0 as usize].log_pending(group)
    );

    // Strong consistency survives: the new member serves the latest data.
    println!("reading all three blocks from the new acting set…");
    let reader = new_set[0].0 as usize;
    for i in 0..3u64 {
        let fx = osds[reader].handle(OsdInput::Client {
            from: ClientId(2),
            req: ClientReq::Read {
                op: OpId(100 + i),
                oid,
                offset: i * 4096,
                len: 4096,
            },
        });
        let replies = pump(&mut osds, reader, fx);
        match &replies[..] {
            [ClientReply::Data { data, .. }] => {
                assert_eq!(
                    data,
                    &vec![i as u8 + 1; 4096],
                    "block {i} is the latest write"
                );
                println!(
                    "   block {i}: OK ({} bytes, fill 0x{:02X})",
                    data.len(),
                    i + 1
                );
            }
            other => panic!("unexpected replies: {other:?}"),
        }
    }
    println!("\nrecovery complete — no acknowledged write was lost.");
}
