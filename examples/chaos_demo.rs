//! Drives the fault-injection layer end to end through the public API:
//! lossy links, a partition, a gray device, and an OSD crash/restart with a
//! torn NVM tail — while heartbeat detection, client retries, and the
//! history checker keep the cluster honest.
//!
//! Usage: `cargo run --release --example chaos_demo [seed] [drop_p]`

use rablock::sim::{
    ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan, GrayWindow, LinkFault,
    Partition, RetryPolicy, SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

struct Conn {
    cursor: u64,
}

impl ConnWorkload for Conn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < 192 {
            Some(WorkItem::Write {
                oid: oid(i % 8),
                offset: ((i / 8) % 16) * 4096,
                len: 4096,
                fill: (i % 251) as u8,
            })
        } else if i < 240 {
            let j = i - 192;
            Some(WorkItem::Read {
                oid: oid(j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

fn build(seed: u64, drop_p: f64) -> ClusterSim {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg.faults = FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p,
            dup_p: drop_p / 2.0,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_partition(Partition {
            a: 0,
            b: 1,
            from: ms(6),
            until: ms(14),
        })
        .with_gray_window(GrayWindow {
            device: 1,
            from: ms(2),
            until: ms(25),
            multiplier: 8.0,
        })
        .with_crash(CrashSchedule {
            process: 2,
            at: ms(5),
            restart_at: Some(ms(35)),
            torn_tail: true,
        });
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    ClusterSim::new(
        cfg,
        vec![Box::new(Conn { cursor: 0 }) as Box<dyn ConnWorkload>],
    )
}

fn run(seed: u64, drop_p: f64) -> (u64, u64, u64, u64, u64, u64, u64) {
    let mut sim = build(seed, drop_p);
    sim.prefill(&(0..8u64).map(|i| (oid(i), 1 << 20)).collect::<Vec<_>>());
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    let checker = sim.checker().expect("history checking enabled");
    (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        checker.writes_acked(),
        checker.reads_checked(),
        report.context_switches,
        report.nvm_bytes,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(7, |s| s.parse().expect("seed: u64"));
    let drop_p: f64 = args
        .next()
        .map_or(0.01, |s| s.parse().expect("drop_p: f64"));
    println!("chaos demo: seed={seed} drop_p={drop_p}");
    println!("faults: lossy links + partition(0,1)@6-14ms + gray(dev1,x8)@2-25ms + crash(osd2)@5ms restart@35ms torn-tail");

    let first = run(seed, drop_p);
    let (w, r, e, acked, checked, cs, nvm) = first;
    println!("writes_done={w} reads_done={r} client_errors={e} writes_acked={acked} reads_checked={checked}");
    println!("context_switches={cs} nvm_bytes={nvm}");
    assert!(w + r + e >= 240, "all ops resolved");
    assert!(checked >= r, "every read vetted against acked writes");

    let second = run(seed, drop_p);
    assert_eq!(first, second, "same seed must replay the identical history");
    println!("determinism: second run identical — no acknowledged write was lost.");
}
