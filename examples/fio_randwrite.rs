//! A fio-style random-write benchmark against a live (real threads) cluster.
//!
//! Compares the stock architecture (`Original`) to the proposed system
//! (`Dop`) functionally: same workload, real concurrency, throughput from
//! wall-clock time. (The paper's *performance* figures come from the
//! deterministic simulation in `rablock-bench`, where CPU and devices are
//! modeled; this example shows the systems really run.)
//!
//! ```sh
//! cargo run --release --example fio_randwrite
//! ```

use std::time::Instant;

use rand::SeedableRng;

use rablock::{BlockImage, ClusterBuilder, ImageSpec, PipelineMode, StoreError};
use rablock_workload::{AccessPattern, FioJob, LogHistogram, WlKind};

const WORKERS: usize = 4;
const OPS_PER_WORKER: u64 = 2_000;
const IMAGE_BYTES: u64 = 16 << 20;

fn run(mode: PipelineMode) -> Result<(), StoreError> {
    println!("--- {mode:?} ---");
    let cluster = ClusterBuilder::new(mode)
        .nodes(2)
        .osds_per_node(2)
        .pg_count(32)
        .device_bytes(128 << 20)
        .start_live();

    let mut handles = Vec::new();
    let start = Instant::now();
    for w in 0..WORKERS {
        let image = BlockImage::create(
            &cluster,
            ImageSpec::with_object_size(w as u8 + 1, IMAGE_BYTES, 32, 1 << 20),
        )?;
        handles.push(std::thread::spawn(
            move || -> Result<LogHistogram, StoreError> {
                let mut hist = LogHistogram::new();
                let mut job = FioJob::new(AccessPattern::RandWrite, 4096, IMAGE_BYTES);
                let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF10 + w as u64);
                for i in 0..OPS_PER_WORKER {
                    let op = job.next_op(&mut rng);
                    assert_eq!(op.kind, WlKind::Write);
                    let t0 = Instant::now();
                    image.write(op.offset, &vec![(i % 251) as u8; op.len as usize])?;
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
                Ok(hist)
            },
        ));
    }
    let mut hist = LogHistogram::new();
    for h in handles {
        hist.merge(&h.join().expect("worker thread")?);
    }
    let elapsed = start.elapsed();
    let total = WORKERS as u64 * OPS_PER_WORKER;
    println!(
        "  {total} x 4KiB random writes in {:.2?}: {:.0} IOPS (wall clock)",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  latency: mean={} p50={} p95={} p99={}",
        rablock_workload::fmt_latency(hist.mean()),
        rablock_workload::fmt_latency(hist.percentile(0.50)),
        rablock_workload::fmt_latency(hist.percentile(0.95)),
        rablock_workload::fmt_latency(hist.percentile(0.99)),
    );
    cluster.shutdown();
    Ok(())
}

fn main() -> Result<(), StoreError> {
    println!(
        "fio-style: {WORKERS} workers x {OPS_PER_WORKER} x 4KiB random writes, replication 2\n"
    );
    run(PipelineMode::Original)?;
    run(PipelineMode::Dop)?;
    println!("\n(for the paper's figures, run `cargo bench -p rablock-bench`)");
    Ok(())
}
