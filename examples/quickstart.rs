//! Quickstart: bring up a cluster, create a block image, do I/O.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rablock::{BlockImage, ClusterBuilder, ImageSpec, PipelineMode, StoreError};

fn main() -> Result<(), StoreError> {
    // A 4-node cluster running the full proposed system (decoupled
    // operation processing + prioritized thread control + the CPU-efficient
    // object store), replication factor 2.
    println!("starting a 4-node rablock cluster (mode: DOP/proposed)…");
    let cluster = ClusterBuilder::new(PipelineMode::Dop)
        .nodes(4)
        .osds_per_node(2)
        .pg_count(32)
        .device_bytes(128 << 20)
        .start_live();

    // Provision a 32 MiB virtual block device, striped over 4 MiB objects.
    // Creation pre-allocates every object — the backend's fast path.
    println!("provisioning a 32 MiB block image…");
    let image = BlockImage::create(&cluster, ImageSpec::new(1, 32 << 20, 32))?;

    // Writes are replicated to two nodes and durable (in the NVM operation
    // log) before returning.
    println!("writing…");
    image.write(0, b"rablock: hello block storage")?;
    image.write(10 << 20, &vec![0xAB; 1 << 20])?;

    // Reads are strongly consistent: they see the latest acknowledged
    // write whether it still lives in the NVM log or already hit the store.
    println!("reading back…");
    assert_eq!(image.read(0, 28)?, b"rablock: hello block storage");
    assert_eq!(image.read(10 << 20, 1 << 20)?, vec![0xAB; 1 << 20]);
    println!("strongly consistent read-back OK");

    // Unaligned I/O spanning object boundaries works too.
    let boundary = (4 << 20) - 13;
    image.write(boundary, b"spans two objects")?;
    assert_eq!(image.read(boundary, 17)?, b"spans two objects");
    println!("cross-object unaligned I/O OK");

    cluster.shutdown();
    println!("done.");
    Ok(())
}
