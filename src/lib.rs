//! Umbrella package hosting the workspace-level examples and integration tests.
//!
//! See the individual `rablock-*` crates for the system itself.
pub use rablock;
