//! Property tests for the simulation kernel's scheduling invariants.

use proptest::prelude::*;
use rablock_sim::{Ctx, Priority, SimDuration, SimTime, Simulation, ThreadCfg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every delivered message is processed exactly once, regardless of
    /// thread/core topology and arrival pattern.
    #[test]
    fn no_message_is_lost_or_duplicated(
        cores in 1usize..5,
        threads in 1usize..7,
        msgs in proptest::collection::vec((0u64..1000, 0u64..5000), 1..80),
    ) {
        let mut sim: Simulation<u64> = Simulation::new(1);
        let core_ids: Vec<_> = sim.add_cores(cores).collect();
        let tids: Vec<_> = (0..threads)
            .map(|i| {
                let prio = match i % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                // Mixed affinities: some pinned, some pooled.
                let aff = if i % 2 == 0 {
                    vec![core_ids[i % cores]]
                } else {
                    core_ids.clone()
                };
                sim.add_thread(ThreadCfg::new(format!("t{i}"), aff, prio))
            })
            .collect();
        let mut expected = std::collections::HashMap::new();
        for (i, (at, jitter)) in msgs.iter().enumerate() {
            let t = tids[i % tids.len()];
            let id = i as u64;
            sim.schedule(SimTime::from_nanos(at * 100 + jitter), t, id);
            expected.insert(id, 1i64);
        }
        let mut seen = std::collections::HashMap::new();
        sim.run_to_completion(&mut |_t: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
            ctx.spend("w", SimDuration::nanos(500 + m % 700));
            *seen.entry(m).or_insert(0i64) += 1;
        });
        prop_assert_eq!(seen, expected);
    }

    /// Per-thread FIFO: messages delivered to one thread at strictly
    /// increasing times are processed in order.
    #[test]
    fn per_thread_order_is_fifo(n in 2u64..60) {
        let mut sim: Simulation<u64> = Simulation::new(2);
        let cores: Vec<_> = sim.add_cores(2).collect();
        let t = sim.add_thread(ThreadCfg::new("t", cores, Priority::Normal));
        for i in 0..n {
            sim.schedule(SimTime::from_nanos(i * 10), t, i);
        }
        let mut order = Vec::new();
        sim.run_to_completion(&mut |_t: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
            ctx.spend("w", SimDuration::micros(3));
            order.push(m);
        });
        let want: Vec<u64> = (0..n).collect();
        prop_assert_eq!(order, want);
    }

    /// Busy time never exceeds cores × wall time (no phantom CPU).
    #[test]
    fn cpu_accounting_is_conservative(
        cores in 1usize..4,
        work in proptest::collection::vec(1u64..50, 1..60),
    ) {
        let mut sim: Simulation<u64> = Simulation::new(3);
        let core_ids: Vec<_> = sim.add_cores(cores).collect();
        let t0 = sim.add_thread(ThreadCfg::new("a", core_ids.clone(), Priority::Normal));
        let t1 = sim.add_thread(ThreadCfg::new("b", core_ids, Priority::Normal));
        for (i, w) in work.iter().enumerate() {
            sim.schedule(SimTime::ZERO, if i % 2 == 0 { t0 } else { t1 }, *w);
        }
        let end = sim.run_to_completion(&mut |_t: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
            ctx.spend("w", SimDuration::micros(m));
        });
        let busy: u64 = (0..cores).map(|c| sim.metrics().core_busy(c)).sum();
        prop_assert!(busy <= end.nanos() * cores as u64 + 1);
        // And all charged work is accounted.
        let charged: u64 = work.iter().map(|w| w * 1000).sum();
        prop_assert!(busy >= charged, "busy {} < charged {}", busy, charged);
    }
}
