//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulation clock is a plain `u64` nanosecond counter starting at zero.
//! [`SimTime`] is an instant on that clock and [`SimDuration`] a span between
//! two instants. Both are `Copy` newtypes so arithmetic mistakes (adding two
//! instants, subtracting a later instant from an earlier one) are caught at
//! compile time or loudly at run time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// ```
/// use rablock_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::micros(3);
/// assert_eq!(t.nanos(), 3_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use rablock_sim::SimDuration;
/// assert_eq!(SimDuration::millis(2) + SimDuration::micros(500), SimDuration::micros(2_500));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates an
    /// event-ordering bug in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: `earlier` is later than `self`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(
            rhs.is_finite() && rhs >= 0.0,
            "scale must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::micros(7);
        assert_eq!(t1 - t0, SimDuration::nanos(7_000));
        assert_eq!(t1.nanos(), 7_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::micros(1), SimDuration::nanos(1_000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::millis(500));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn duration_since_panics_on_inverted_order() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_nanos(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scaling_and_division() {
        assert_eq!(SimDuration::micros(10) * 3, SimDuration::micros(30));
        assert_eq!(SimDuration::micros(10) * 0.5, SimDuration::micros(5));
        assert_eq!(SimDuration::micros(10) / 2, SimDuration::micros(5));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::secs(2).to_string(), "2.000s");
    }
}
