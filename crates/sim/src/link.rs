//! Network link timing model.
//!
//! The paper's cluster uses 100 GbE, which is never the bandwidth bottleneck
//! for 4 KiB random I/O; what matters is the propagation/stack latency and,
//! for large sequential I/O, the serialization time. [`Link`] models one
//! direction of a NIC port: messages serialize one after another at the link
//! bandwidth and arrive after an additional fixed latency.

use crate::time::{SimDuration, SimTime};

/// One direction of a network link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One-way base latency (propagation + kernel network stack).
    pub latency: SimDuration,
    /// Serialization bandwidth in bytes/second.
    pub bandwidth: f64,
    busy_until: SimTime,
    bytes_sent: u64,
    messages_sent: u64,
}

impl Link {
    /// A 100 GbE-like link: 12.5 GB/s, 20 µs one-way latency (kernel TCP
    /// stack dominated; the paper's RTC-v3 floor of 0.8 ms total implies
    /// tens of µs per hop).
    pub fn gbe_100() -> Self {
        Link::new(SimDuration::micros(20), 12.5e9)
    }

    /// Creates a link with the given one-way latency and bandwidth.
    pub fn new(latency: SimDuration, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Link {
            latency,
            bandwidth,
            busy_until: SimTime::ZERO,
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// Enqueues a `bytes`-long message at `now`; returns its arrival time at
    /// the far end. Serialization is FIFO behind earlier messages.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let serialize = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth);
        self.busy_until = start + serialize;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.busy_until + self.latency
    }

    /// The conservative-parallel lookahead bound this link provides: any
    /// message crossing it arrives no earlier than `lookahead()` after it
    /// was sent (serialization only adds to that). The sharded engine uses
    /// the minimum lookahead over all cross-shard links as its LBTS window
    /// (see `Simulation::set_lookahead`).
    pub fn lookahead(&self) -> SimDuration {
        self.latency
    }

    /// Total bytes pushed through this direction.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages pushed through this direction.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_arrives_after_latency() {
        let mut l = Link::gbe_100();
        let arrive = l.transfer(SimTime::ZERO, 1024);
        // 1 KiB at 12.5 GB/s is 82 ns; latency dominates.
        assert!(arrive >= SimTime::ZERO + l.latency);
        assert!(arrive < SimTime::ZERO + l.latency + SimDuration::micros(1));
    }

    #[test]
    fn serialization_queues_fifo() {
        let mut l = Link::new(SimDuration::ZERO, 1e9); // 1 GB/s, no latency
        let a = l.transfer(SimTime::ZERO, 1_000_000); // 1 ms serialize
        let b = l.transfer(SimTime::ZERO, 1_000_000); // queues behind a
        assert_eq!(a, SimTime::from_nanos(1_000_000));
        assert_eq!(b, SimTime::from_nanos(2_000_000));
        assert_eq!(l.bytes_sent(), 2_000_000);
        assert_eq!(l.messages_sent(), 2);
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut l = Link::new(SimDuration::micros(5), 1e9);
        let _ = l.transfer(SimTime::ZERO, 1000);
        // Much later, no residual queueing.
        let t = SimTime::from_nanos(10_000_000);
        let arrive = l.transfer(t, 1000);
        assert_eq!(
            arrive,
            t + SimDuration::nanos(1_000) + SimDuration::micros(5)
        );
    }
}
