//! Deterministic random-number generation for simulations.
//!
//! Every source of randomness in a simulation must flow from a single seed so
//! that runs are reproducible bit-for-bit. [`SimRng`] wraps a small, fast PRNG
//! and offers `derive` to split independent deterministic streams (one per
//! client, per device, …) without the streams interfering with each other.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable PRNG used by the simulation kernel and workloads.
///
/// ```
/// use rablock_sim::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.below(1_000_000), b.below(1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed),
            ),
        }
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// Two streams derived with different ids from the same parent never
    /// observe each other's draws, so adding a consumer does not perturb
    /// existing ones.
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix the parent's current state fingerprint with the stream id.
        let mut probe = self.inner.clone();
        let fingerprint = probe.next_u64();
        SimRng::seed(fingerprint ^ stream.wrapping_mul(0xD134_2543_DE82_EF95))
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// An exponentially distributed value with the given mean (for Poisson
    /// arrival processes).
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn derived_streams_are_independent_of_order() {
        let parent = SimRng::seed(99);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let x1 = c1.next_u64();
        // Deriving again from the untouched parent yields the same streams.
        let mut c1b = parent.derive(1);
        assert_eq!(x1, c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = SimRng::seed(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp_f64(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean} too far from 5.0");
    }
}
