//! Event queues for the engine: a calendar queue (hierarchical timing wheel)
//! and the original binary-heap oracle.
//!
//! The simulation pops every event in strict `(time, seq)` order; the queue
//! implementation is the hottest data structure in the workspace. The
//! [`BinaryHeap`] pays O(log n) per push/pop with poor locality. The calendar
//! queue buckets events by time into a power-of-two wheel of slots (1024 ns
//! per slot): push is an append into the target slot's vector, pop drains the
//! current slot after one deferred sort, so both are amortized O(1). Events
//! beyond the wheel's window (far-future timers: heartbeats, retry backoff)
//! land in an *overflow tier* — a small binary heap — and cascade into the
//! wheel when the window rotates past them.
//!
//! Both implementations are always compiled; [`SchedulerKind::default`] picks
//! the wheel unless the crate is built with the `heap-sched` feature, which
//! restores the heap as an oracle for differential testing. Tie-break is the
//! same `(time, seq)` order in both, so event order — and therefore every
//! simulation fingerprint — is bit-identical between them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the wheel slot width in nanoseconds (1024 ns ≈ 1 µs — the scale
/// of one work item, so steady-state slots hold a handful of events).
const SLOT_SHIFT: u32 = 10;
/// Wheel size bounds (slots). The window spans `slots << SLOT_SHIFT` ns.
const MIN_SLOTS: usize = 1024;
const MAX_SLOTS: usize = 16_384;

/// Which event-queue implementation a [`Simulation`](crate::Simulation) uses.
///
/// Both are always compiled; this selects at construction time. The default
/// is [`SchedulerKind::Wheel`] unless the `heap-sched` feature is enabled,
/// which flips the default to the [`SchedulerKind::Heap`] oracle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Calendar queue: timing wheel with an overflow tier. Amortized O(1).
    Wheel,
    /// The original `BinaryHeap` implementation. O(log n), kept as an oracle.
    Heap,
}

impl Default for SchedulerKind {
    #[cfg(not(feature = "heap-sched"))]
    fn default() -> Self {
        SchedulerKind::Wheel
    }
    #[cfg(feature = "heap-sched")]
    fn default() -> Self {
        SchedulerKind::Heap
    }
}

/// One queued event. Heap ordering is reversed on `(time, seq)` so the
/// `BinaryHeap` max-heap yields the earliest event first.
struct HeapEntry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar queue: `slots` time buckets of `1 << SLOT_SHIFT` ns each, plus a
/// binary-heap overflow tier for events past the current window.
struct Wheel<T> {
    /// Power-of-two slot count; `mask = slots - 1`.
    mask: u64,
    /// Slot vectors, indexed by `absolute_slot & mask`. Only slots in
    /// `[cursor, window_end)` may be non-empty; capacity is retained across
    /// drains so steady state allocates nothing.
    buckets: Vec<Vec<(SimTime, u64, T)>>,
    /// Absolute slot index currently being drained. Every event in a slot
    /// `< cursor` has already been popped.
    cursor: u64,
    /// Absolute slot index one past the window; events at `>= window_end`
    /// go to the overflow tier.
    window_end: u64,
    /// Whether `buckets[cursor & mask]` is sorted (descending, so `pop()`
    /// from the tail yields ascending `(time, seq)`).
    cur_sorted: bool,
    /// Events currently stored in wheel slots (excludes overflow).
    in_wheel: usize,
    /// Far-future events, min-first by `(time, seq)`.
    overflow: BinaryHeap<HeapEntry<T>>,
}

impl<T> Wheel<T> {
    fn new(hint: usize) -> Self {
        let slots = hint.next_power_of_two().clamp(MIN_SLOTS, MAX_SLOTS);
        let mut buckets = Vec::with_capacity(slots);
        buckets.resize_with(slots, Vec::new);
        Wheel {
            mask: slots as u64 - 1,
            buckets,
            cursor: 0,
            window_end: slots as u64,
            cur_sorted: false,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    fn push(&mut self, time: SimTime, seq: u64, payload: T) {
        let slot = time.nanos() >> SLOT_SHIFT;
        debug_assert!(slot >= self.cursor, "event time regressed behind cursor");
        if slot >= self.window_end {
            self.overflow.push(HeapEntry { time, seq, payload });
            return;
        }
        let bucket = &mut self.buckets[(slot & self.mask) as usize];
        if slot == self.cursor && self.cur_sorted {
            // The slot is mid-drain: keep it sorted (descending) so the next
            // pop still takes the minimum. New events always have a larger
            // seq than anything already popped, so order stays exact.
            let key = (time, seq);
            let at = bucket.partition_point(|e| (e.0, e.1) > key);
            bucket.insert(at, (time, seq, payload));
        } else {
            bucket.push((time, seq, payload));
        }
        self.in_wheel += 1;
    }

    /// Advances `cursor` to the next non-empty slot (rotating the window
    /// forward over the overflow tier when the wheel is drained), sorts it if
    /// needed, and returns its bucket index. `None` when the queue is empty.
    fn advance(&mut self) -> Option<usize> {
        if self.in_wheel == 0 {
            // Window exhausted: jump straight to the earliest overflow event
            // and cascade everything that now fits into the wheel.
            self.overflow.peek()?;
            let first = self.overflow.peek().expect("peeked above");
            let start = first.time.nanos() >> SLOT_SHIFT;
            self.cursor = start;
            self.window_end = start + self.mask + 1;
            self.cur_sorted = false;
            while let Some(e) = self.overflow.peek() {
                if e.time.nanos() >> SLOT_SHIFT >= self.window_end {
                    break;
                }
                let e = self.overflow.pop().expect("peeked above");
                let slot = e.time.nanos() >> SLOT_SHIFT;
                self.buckets[(slot & self.mask) as usize].push((e.time, e.seq, e.payload));
                self.in_wheel += 1;
            }
        }
        loop {
            let idx = (self.cursor & self.mask) as usize;
            if !self.buckets[idx].is_empty() {
                if !self.cur_sorted {
                    self.buckets[idx].sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                    self.cur_sorted = true;
                }
                return Some(idx);
            }
            self.cursor += 1;
            self.cur_sorted = false;
        }
    }

    /// Earliest pending event time *without* moving the cursor. The sharded
    /// engine peeks every domain each LBTS round and only pops events inside
    /// the horizon; events merged from other shards may still arrive between
    /// the cursor and the slot scanned here, so committing the cursor on a
    /// peek (as `advance` does) would strand them behind it. The cursor only
    /// moves in `pop`, i.e. only up to slots whose events actually executed.
    fn peek_time(&self) -> Option<SimTime> {
        if self.in_wheel == 0 {
            // Overflow events are all >= window_end, so when the wheel tier
            // is empty the overflow head is the global minimum.
            return self.overflow.peek().map(|e| e.time);
        }
        let mut c = self.cursor;
        loop {
            let idx = (c & self.mask) as usize;
            let bucket = &self.buckets[idx];
            if !bucket.is_empty() {
                if c == self.cursor && self.cur_sorted {
                    // Mid-drain slot: sorted descending, minimum at the tail.
                    return bucket.last().map(|e| e.0);
                }
                return bucket.iter().map(|e| e.0).min();
            }
            c += 1;
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let idx = self.advance()?;
        let e = self.buckets[idx].pop().expect("advance returned non-empty");
        self.in_wheel -= 1;
        Some(e)
    }
}

enum Imp<T> {
    Wheel(Wheel<T>),
    Heap(BinaryHeap<HeapEntry<T>>),
}

/// The engine's pending-event queue. Pops in strict ascending `(time, seq)`
/// order regardless of the backing implementation.
pub(crate) struct EventQueue<T> {
    imp: Imp<T>,
    high_water: usize,
}

impl<T> EventQueue<T> {
    /// `hint` sizes the structure for the expected steady-state population
    /// (wheel slot count / heap capacity); it is a performance knob only.
    pub fn new(kind: SchedulerKind, hint: usize) -> Self {
        let imp = match kind {
            SchedulerKind::Wheel => Imp::Wheel(Wheel::new(hint)),
            SchedulerKind::Heap => Imp::Heap(BinaryHeap::with_capacity(hint.max(16))),
        };
        EventQueue { imp, high_water: 0 }
    }

    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Wheel(w) => w.len(),
            Imp::Heap(h) => h.len(),
        }
    }

    /// Largest population the queue ever reached (cold-start sizing signal).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    pub fn push(&mut self, time: SimTime, seq: u64, payload: T) {
        match &mut self.imp {
            Imp::Wheel(w) => w.push(time, seq, payload),
            Imp::Heap(h) => h.push(HeapEntry { time, seq, payload }),
        }
        let len = self.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    /// Time of the earliest pending event. Mutates (the wheel may rotate and
    /// sort the head slot) but never changes the queue's contents.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            Imp::Wheel(w) => w.peek_time(),
            Imp::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        match &mut self.imp {
            Imp::Wheel(w) => w.pop(),
            Imp::Heap(h) => h.pop().map(|e| (e.time, e.seq, e.payload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use proptest::proptest;

    fn drain_order(q: &mut EventQueue<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, p)) = q.pop() {
            out.push((t.nanos(), s, p));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q: EventQueue<u32> = EventQueue::new(kind, 64);
            q.push(SimTime::from_nanos(500), 0, 0);
            q.push(SimTime::from_nanos(100), 1, 1);
            q.push(SimTime::from_nanos(100), 2, 2);
            q.push(SimTime::from_nanos(2_000_000), 3, 3); // beyond a 1k wheel
            q.push(SimTime::ZERO, 4, 4);
            let order: Vec<u32> = drain_order(&mut q).iter().map(|e| e.2).collect();
            assert_eq!(order, vec![4, 1, 2, 0, 3], "{kind:?}");
        }
    }

    #[test]
    fn far_future_timers_land_in_overflow_and_rollover_preserves_order() {
        // Heartbeat/backoff-style horizon: a 1024-slot wheel spans ~1 ms, so
        // timers at +10 ms / +50 ms / +1 s must take the overflow tier and
        // cascade back in exact order as the window rotates past them.
        let mut q: EventQueue<u32> = EventQueue::new(SchedulerKind::Wheel, MIN_SLOTS);
        let horizon_ns = (MIN_SLOTS as u64) << SLOT_SHIFT;
        let mut expect = Vec::new();
        for (i, t) in [
            1_000_000_000u64, // 1 s
            10_000_000,       // 10 ms
            horizon_ns - 1,   // last in-window slot
            50_000_000,       // 50 ms
            10_000_000,       // tie on time, later seq
            500,              // immediate
        ]
        .iter()
        .enumerate()
        {
            q.push(SimTime::from_nanos(*t), i as u64, i as u32);
            expect.push((*t, i as u64));
        }
        assert!(q.len() == 6);
        expect.sort();
        let got: Vec<(u64, u64)> = drain_order(&mut q).iter().map(|e| (e.0, e.1)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn push_into_slot_being_drained_keeps_order() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedulerKind::Wheel, MIN_SLOTS);
        // Three events in one slot; pop one (sorting the slot), then push two
        // more into the same slot — one earlier, one later than the remainder.
        for (seq, (t, p)) in [(100u64, 0u32), (900, 1), (500, 2)].into_iter().enumerate() {
            q.push(SimTime::from_nanos(t), seq as u64, p);
        }
        assert_eq!(q.pop().map(|e| e.2), Some(0));
        q.push(SimTime::from_nanos(200), 3, 3);
        q.push(SimTime::from_nanos(1000), 4, 4);
        let rest: Vec<u32> = drain_order(&mut q).iter().map(|e| e.2).collect();
        assert_eq!(rest, vec![3, 2, 1, 4]);
    }

    proptest! {
        /// Differential oracle: random pushes (with ties, far-future bursts,
        /// and interleaved pops) drain in the exact same order from the wheel
        /// and the heap.
        #[test]
        fn wheel_matches_heap_on_random_streams(seed in 0u64..1_000_000) {
            let mut rng = SimRng::seed(seed);
            let mut wheel: EventQueue<u32> = EventQueue::new(SchedulerKind::Wheel, 256);
            let mut heap: EventQueue<u32> = EventQueue::new(SchedulerKind::Heap, 256);
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = Vec::new();
            for i in 0..600u32 {
                if rng.chance(0.35) {
                    let a = wheel.pop();
                    let b = heap.pop();
                    match (a, b) {
                        (Some(x), Some(y)) => {
                            assert_eq!((x.0, x.1, x.2), (y.0, y.1, y.2));
                            now = x.0.nanos();
                            popped.push((x.0.nanos(), x.1));
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "divergent emptiness: wheel={:?} heap={:?}",
                            a.map(|e| e.1),
                            b.map(|e| e.1)
                        ),
                    }
                } else {
                    // Mix near-term, tie-heavy, and far-future (overflow) times.
                    let t = now + match rng.below(10) {
                        0..=5 => rng.below(4_000),
                        6 | 7 => rng.below(100) * 1_000, // dense ties per slot
                        8 => rng.below(50_000_000),      // past the window
                        _ => 0,                          // exact tie with `now`
                    };
                    wheel.push(SimTime::from_nanos(t), seq, i);
                    heap.push(SimTime::from_nanos(t), seq, i);
                    seq += 1;
                }
            }
            let rest_w = drain_order(&mut wheel);
            let rest_h = drain_order(&mut heap);
            assert_eq!(rest_w, rest_h);
            // And the merged pop stream really is sorted by (time, seq).
            popped.extend(rest_w.iter().map(|e| (e.0, e.1)));
            let mut sorted = popped.clone();
            sorted.sort();
            assert_eq!(popped, sorted);
        }
    }

    #[test]
    fn high_water_tracks_peak_population() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedulerKind::Wheel, 64);
        for i in 0..10u64 {
            q.push(SimTime::from_nanos(i * 100), i, i as u32);
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(SimTime::from_nanos(10_000), 11, 99);
        assert_eq!(q.high_water(), 10);
        assert_eq!(q.len(), 6);
    }
}
