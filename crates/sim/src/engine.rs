//! The discrete-event execution engine: cores, threads, scheduler.
//!
//! # Model
//!
//! A simulation hosts *cores* and *threads*. A thread has a FIFO queue of
//! messages, an affinity set of cores it may run on, and a [`Priority`].
//! Delivering a message to a thread makes it runnable; a free core in its
//! affinity set picks it up and runs one *work item*: the [`Handler`] for the
//! message executes logically instantaneously, declaring how much CPU it
//! consumed via [`Ctx::spend`] and emitting *effects* (messages to other
//! threads, device I/O). The core is then busy for the declared CPU time and
//! the effects materialize when the item completes (run-to-completion
//! approximation; items are microsecond-scale so non-preemption is accurate).
//!
//! When a core picks up a work item from a different thread than the one it
//! last ran, a configurable *context-switch cost* is charged — this is the
//! mechanism behind the paper's thread-pool vs run-to-completion comparisons
//! (§III-B "Inefficient Threading Architecture").
//!
//! Cores select among runnable threads by priority tier, round-robin within a
//! tier. Pinning a thread to a dedicated core (and giving no other thread
//! affinity to that core) reproduces the paper's *priority threads*;
//! a shared pool of cores with many `Normal` threads reproduces its
//! *non-priority threads*; `Low` models background maintenance (compaction)
//! threads that only soak up otherwise-idle cores.

use std::collections::VecDeque;

use crate::device::{Device, IoRequest};
use crate::metrics::{Metrics, StageTag};
use crate::rng::SimRng;
use crate::sched::{EventQueue, SchedulerKind};
use crate::time::{SimDuration, SimTime};

/// Index of a simulated thread.
pub type ThreadId = usize;
/// Index of a simulated core.
pub type CoreId = usize;
/// Index of a simulated device.
pub type DeviceId = usize;

/// Scheduling priority of a thread. Lower tiers run first on a contended core.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Priority {
    /// Latency-critical (the paper's priority threads).
    High,
    /// Regular work (PG threads, non-priority threads).
    Normal,
    /// Background maintenance (compaction/sync threads).
    Low,
}

/// Static configuration of a simulated thread.
#[derive(Debug, Clone)]
pub struct ThreadCfg {
    /// Human-readable name, used in panics and reports.
    pub name: String,
    /// Cores the thread may run on. Must be non-empty.
    pub affinity: Vec<CoreId>,
    /// Scheduling priority.
    pub priority: Priority,
}

impl ThreadCfg {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, affinity: Vec<CoreId>, priority: Priority) -> Self {
        ThreadCfg {
            name: name.into(),
            affinity,
            priority,
        }
    }
}

/// Logic driven by the simulation: one callback per delivered message.
///
/// Implemented by the "world" struct owning all protocol state; also
/// implemented for plain closures, which is convenient in tests.
pub trait Handler<M> {
    /// Handles `msg` delivered to `thread`. CPU consumption and outputs are
    /// declared through `ctx`.
    fn handle(&mut self, thread: ThreadId, msg: M, ctx: &mut Ctx<'_, M>);
}

impl<M, F: FnMut(ThreadId, M, &mut Ctx<'_, M>)> Handler<M> for F {
    fn handle(&mut self, thread: ThreadId, msg: M, ctx: &mut Ctx<'_, M>) {
        self(thread, msg, ctx)
    }
}

enum Effect<M> {
    Send {
        to: ThreadId,
        msg: M,
        delay: SimDuration,
    },
    Io {
        dev: DeviceId,
        req: IoRequest,
        notify: ThreadId,
        msg: M,
    },
    DeviceMultiplier {
        dev: DeviceId,
        multiplier: f64,
    },
}

/// Execution context handed to [`Handler::handle`] for one work item.
pub struct Ctx<'a, M> {
    now: SimTime,
    queued: SimDuration,
    spent: SimDuration,
    charges: Vec<(StageTag, SimDuration)>,
    effects: Vec<Effect<M>>,
    rng: &'a mut SimRng,
    stop: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The simulated instant at which this work item was dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// How long the message sat in its thread's queue before this item was
    /// dispatched (core contention + thread backlog). Purely observational —
    /// reading it never perturbs scheduling.
    pub fn queued_for(&self) -> SimDuration {
        self.queued
    }

    /// Charges `d` of CPU time to this item, attributed to `tag`.
    pub fn spend(&mut self, tag: StageTag, d: SimDuration) {
        self.spent += d;
        self.charges.push((tag, d));
    }

    /// CPU time charged so far in this item.
    pub fn spent_so_far(&self) -> SimDuration {
        self.spent
    }

    /// Sends `msg` to `to`, arriving when this item completes.
    pub fn send(&mut self, to: ThreadId, msg: M) {
        self.send_after(to, msg, SimDuration::ZERO);
    }

    /// Sends `msg` to `to`, arriving `delay` after this item completes
    /// (network latency, timers).
    pub fn send_after(&mut self, to: ThreadId, msg: M, delay: SimDuration) {
        self.effects.push(Effect::Send { to, msg, delay });
    }

    /// Submits `req` to device `dev` when this item completes; `msg` is
    /// delivered to `notify` at I/O completion.
    pub fn submit_io(&mut self, dev: DeviceId, req: IoRequest, notify: ThreadId, msg: M) {
        self.effects.push(Effect::Io {
            dev,
            req,
            notify,
            msg,
        });
    }

    /// Retunes device `dev`'s service-time multiplier when this item
    /// completes (fault injection: gray failures slow a device without
    /// killing it; `1.0` restores healthy timing).
    ///
    /// Handlers cannot touch [`Device`](crate::Device) state directly —
    /// devices are owned by the simulation — so the change is applied as an
    /// effect at item end, like sends and I/O submissions.
    pub fn set_device_service_multiplier(&mut self, dev: DeviceId, multiplier: f64) {
        self.effects
            .push(Effect::DeviceMultiplier { dev, multiplier });
    }

    /// Requests the simulation to halt after this item.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

struct ThreadState<M> {
    cfg: ThreadCfg,
    /// Pending messages, each stamped with its enqueue time so queue-wait
    /// can be attributed exactly (the stamp is never read by the scheduler).
    queue: VecDeque<(SimTime, M)>,
    running: bool,
}

struct CoreState {
    running: Option<ThreadId>,
    last: Option<ThreadId>,
    /// Threads whose affinity includes this core, sorted by (priority, id).
    candidates: Vec<ThreadId>,
    rr_cursor: usize,
}

enum EventKind<M> {
    Deliver { thread: ThreadId, msg: M },
    CoreFree { core: CoreId },
}

/// A deterministic discrete-event simulation of cores, threads and devices.
///
/// ```
/// use rablock_sim::{Simulation, ThreadCfg, Priority, SimDuration, SimTime};
///
/// let mut sim: Simulation<u32> = Simulation::new(1);
/// let core = sim.add_core();
/// let t = sim.add_thread(ThreadCfg::new("worker", vec![core], Priority::Normal));
/// sim.schedule(SimTime::ZERO, t, 5);
/// let mut seen = Vec::new();
/// sim.run_until(
///     &mut |_thread: usize, msg: u32, ctx: &mut rablock_sim::Ctx<'_, u32>| {
///         ctx.spend("work", SimDuration::micros(10));
///         seen.push(msg);
///     },
///     SimTime::from_nanos(1_000_000),
/// );
/// assert_eq!(seen, vec![5]);
/// ```
pub struct Simulation<M> {
    now: SimTime,
    seq: u64,
    events: EventQueue<EventKind<M>>,
    threads: Vec<ThreadState<M>>,
    cores: Vec<CoreState>,
    devices: Vec<Device>,
    metrics: Metrics,
    rng: SimRng,
    ctx_switch_cost: SimDuration,
    stopped: bool,
    /// Scratch buffers lent to each work item's [`Ctx`] and reclaimed when
    /// the item completes, so the hot dispatch path allocates nothing.
    scratch_charges: Vec<(StageTag, SimDuration)>,
    scratch_effects: Vec<Effect<M>>,
}

impl<M> Simulation<M> {
    /// Creates an empty simulation seeded with `seed`.
    ///
    /// The default context-switch cost is 1.2 µs — the commonly measured
    /// direct + indirect (cache pollution) cost on the paper's class of Xeon
    /// servers; override with [`Simulation::set_context_switch_cost`].
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::default(), 4096)
    }

    /// Creates an empty simulation with an explicit event-queue
    /// implementation and sizing hint.
    ///
    /// `queue_hint` is the expected steady-state event population (e.g.
    /// connections × replicas × pipeline depth); it sizes the timing wheel /
    /// heap up front so paper-scale scenarios don't regrow the queue mid-run.
    /// It affects performance only, never results.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind, queue_hint: usize) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            events: EventQueue::new(kind, queue_hint),
            threads: Vec::new(),
            cores: Vec::new(),
            devices: Vec::new(),
            metrics: Metrics::new(0, 0),
            rng: SimRng::seed(seed),
            ctx_switch_cost: SimDuration::nanos(1_200),
            stopped: false,
            scratch_charges: Vec::with_capacity(16),
            scratch_effects: Vec::with_capacity(16),
        }
    }

    /// Which event-queue implementation this simulation runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.events.kind()
    }

    /// Largest pending-event population reached so far (sizing signal for
    /// [`Simulation::with_scheduler`]'s `queue_hint`).
    pub fn queue_high_water(&self) -> u64 {
        self.events.high_water() as u64
    }

    /// Overrides the cost charged when a core switches between threads.
    pub fn set_context_switch_cost(&mut self, d: SimDuration) {
        self.ctx_switch_cost = d;
    }

    /// Adds one core; returns its id.
    pub fn add_core(&mut self) -> CoreId {
        let id = self.cores.len();
        self.cores.push(CoreState {
            running: None,
            last: None,
            candidates: Vec::new(),
            rr_cursor: 0,
        });
        self.metrics.grow(self.threads.len(), self.cores.len());
        id
    }

    /// Adds `n` cores; returns their contiguous id range.
    pub fn add_cores(&mut self, n: usize) -> std::ops::Range<CoreId> {
        let start = self.cores.len();
        for _ in 0..n {
            self.add_core();
        }
        start..self.cores.len()
    }

    /// Adds a thread; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the affinity set is empty or references unknown cores.
    pub fn add_thread(&mut self, cfg: ThreadCfg) -> ThreadId {
        assert!(
            !cfg.affinity.is_empty(),
            "thread {:?} has empty affinity",
            cfg.name
        );
        for &c in &cfg.affinity {
            assert!(
                c < self.cores.len(),
                "thread {:?} affinity references unknown core {c}",
                cfg.name
            );
        }
        let id = self.threads.len();
        for &c in &cfg.affinity {
            let cand = &mut self.cores[c].candidates;
            cand.push(id);
        }
        self.threads.push(ThreadState {
            cfg,
            queue: VecDeque::new(),
            running: false,
        });
        // Keep candidate lists sorted by (priority, id) so tier scans are cheap.
        for core in &mut self.cores {
            let threads = &self.threads;
            core.candidates
                .sort_by_key(|&t| (threads[t].cfg.priority, t));
        }
        self.metrics.grow(self.threads.len(), self.cores.len());
        id
    }

    /// Adds a device; returns its id.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Immutable access to a device (stats, profile).
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id]
    }

    /// Mutable access to a device (reset stats after warm-up).
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id]
    }

    /// Number of devices added so far.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (reset windows after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Name of a thread (for reports).
    pub fn thread_name(&self, t: ThreadId) -> &str {
        &self.threads[t].cfg.name
    }

    /// Number of messages currently waiting in `t`'s queue (telemetry probe;
    /// does not count the item being executed).
    pub fn thread_queue_len(&self, t: ThreadId) -> usize {
        self.threads[t].queue.len()
    }

    /// Injects a message for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule(&mut self, at: SimTime, thread: ThreadId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push_event(at, EventKind::Deliver { thread, msg });
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(time, seq, kind);
    }

    /// Runs until `deadline` (inclusive) or until a handler calls
    /// [`Ctx::stop`] or the event queue drains. The clock is advanced to
    /// `deadline` if the queue drained early, so measurement windows stay
    /// well-defined. Returns the instant the run stopped at.
    pub fn run_until<H: Handler<M>>(&mut self, handler: &mut H, deadline: SimTime) -> SimTime {
        self.run_events(handler, deadline);
        if !self.stopped && self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Runs until the event queue is empty or a handler stops the run.
    /// The clock stops at the last processed event.
    pub fn run_to_completion<H: Handler<M>>(&mut self, handler: &mut H) -> SimTime {
        self.run_events(handler, SimTime::from_nanos(u64::MAX));
        self.now
    }

    fn run_events<H: Handler<M>>(&mut self, handler: &mut H, deadline: SimTime) {
        while !self.stopped {
            match self.events.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let (time, _seq, kind) = self.events.pop().expect("peeked event exists");
            debug_assert!(time >= self.now, "event time regressed");
            self.now = time;
            match kind {
                EventKind::Deliver { thread, msg } => self.on_deliver(handler, thread, msg),
                EventKind::CoreFree { core } => self.on_core_free(handler, core),
            }
        }
    }

    /// True if a handler called [`Ctx::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    fn on_deliver<H: Handler<M>>(&mut self, handler: &mut H, thread: ThreadId, msg: M) {
        self.threads[thread].queue.push_back((self.now, msg));
        if self.threads[thread].running {
            return;
        }
        // Invariant: a runnable thread is only left waiting when all its
        // affinity cores are busy, so taking the first idle core is fair.
        let idle = self.threads[thread]
            .cfg
            .affinity
            .iter()
            .copied()
            .find(|&c| self.cores[c].running.is_none());
        if let Some(core) = idle {
            self.run_item(handler, core, thread);
        }
    }

    fn on_core_free<H: Handler<M>>(&mut self, handler: &mut H, core: CoreId) {
        let finished = self.cores[core]
            .running
            .take()
            .expect("CoreFree for an idle core");
        self.cores[core].last = Some(finished);
        self.threads[finished].running = false;
        if let Some(next) = self.pick_for_core(core) {
            self.run_item(handler, core, next);
        }
        // The finished thread may still have queued work and another idle
        // core elsewhere in its affinity set.
        if !self.threads[finished].running && !self.threads[finished].queue.is_empty() {
            let idle = self.threads[finished]
                .cfg
                .affinity
                .iter()
                .copied()
                .find(|&c| self.cores[c].running.is_none());
            if let Some(c) = idle {
                self.run_item(handler, c, finished);
            }
        }
    }

    /// Picks the next thread to run on `core`: highest-priority tier with a
    /// runnable member, round-robin within the tier.
    ///
    /// Two passes over the (priority-sorted) candidate list instead of
    /// collecting the runnable tier into a Vec: this runs once per work item,
    /// so keeping it allocation-free matters for wall-clock throughput.
    fn pick_for_core(&mut self, core: CoreId) -> Option<ThreadId> {
        let state = &self.cores[core];
        let mut tier: Option<Priority> = None;
        let mut count = 0usize;
        for &t in &state.candidates {
            let th = &self.threads[t];
            if th.running || th.queue.is_empty() {
                continue;
            }
            match tier {
                None => {
                    tier = Some(th.cfg.priority);
                    count = 1;
                }
                Some(p) if th.cfg.priority == p => count += 1,
                // Candidates are sorted by priority, so a worse tier means
                // we have seen the whole best tier already.
                Some(_) => break,
            }
        }
        let tier = tier?;
        let idx = self.cores[core].rr_cursor % count;
        let mut seen = 0usize;
        let mut pick = None;
        for &t in &self.cores[core].candidates {
            let th = &self.threads[t];
            if th.running || th.queue.is_empty() {
                continue;
            }
            if th.cfg.priority != tier {
                break;
            }
            if seen == idx {
                pick = Some(t);
                break;
            }
            seen += 1;
        }
        let state = &mut self.cores[core];
        state.rr_cursor = state.rr_cursor.wrapping_add(1);
        pick
    }

    fn run_item<H: Handler<M>>(&mut self, handler: &mut H, core: CoreId, thread: ThreadId) {
        debug_assert!(self.cores[core].running.is_none());
        debug_assert!(!self.threads[thread].running);
        let (enqueued_at, msg) = self.threads[thread]
            .queue
            .pop_front()
            .expect("run_item on thread with empty queue");

        let switching = self.cores[core].last != Some(thread);
        let cs = if switching {
            self.ctx_switch_cost
        } else {
            SimDuration::ZERO
        };

        let mut rng = std::mem::replace(&mut self.rng, SimRng::seed(0));
        let mut ctx = Ctx {
            now: self.now,
            queued: self.now.saturating_since(enqueued_at),
            spent: SimDuration::ZERO,
            charges: std::mem::take(&mut self.scratch_charges),
            effects: std::mem::take(&mut self.scratch_effects),
            rng: &mut rng,
            stop: false,
        };
        handler.handle(thread, msg, &mut ctx);
        let Ctx {
            spent,
            mut charges,
            mut effects,
            stop,
            ..
        } = ctx;
        self.rng = rng;

        let total = cs + spent;
        let end = self.now + total;

        if switching && !cs.is_zero() {
            self.metrics.context_switches += 1;
            self.metrics.context_switch_ns += cs.as_nanos();
        }
        self.metrics.charge_core(core, total);
        self.metrics.charge_thread(thread, total);
        for (tag, d) in charges.drain(..) {
            self.metrics.charge_tag(tag, d);
        }
        self.scratch_charges = charges;
        self.metrics.items_run += 1;

        self.cores[core].running = Some(thread);
        self.threads[thread].running = true;
        if stop {
            self.stopped = true;
        }

        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg, delay } => {
                    self.push_event(end + delay, EventKind::Deliver { thread: to, msg });
                }
                Effect::Io {
                    dev,
                    req,
                    notify,
                    msg,
                } => {
                    let done = self.devices[dev].submit(end, req);
                    self.push_event(
                        done,
                        EventKind::Deliver {
                            thread: notify,
                            msg,
                        },
                    );
                }
                Effect::DeviceMultiplier { dev, multiplier } => {
                    self.devices[dev].set_service_multiplier(multiplier);
                }
            }
        }
        self.scratch_effects = effects;
        self.push_event(end, EventKind::CoreFree { core });
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("cores", &self.cores.len())
            .field("devices", &self.devices.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceProfile, SsdState};

    fn one_core_one_thread() -> (Simulation<u32>, ThreadId) {
        let mut sim: Simulation<u32> = Simulation::new(42);
        let c = sim.add_core();
        let t = sim.add_thread(ThreadCfg::new("t0", vec![c], Priority::Normal));
        (sim, t)
    }

    #[test]
    fn messages_process_in_fifo_order() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..5 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let mut seen = Vec::new();
        sim.run_to_completion(&mut |_t: usize, m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(1));
            seen.push(m);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cpu_time_serializes_on_one_core() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..3 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(10));
        });
        // First item pays one context switch (core cold), rest are same-thread.
        assert_eq!(
            end,
            SimTime::ZERO + SimDuration::micros(30) + SimDuration::nanos(1_200)
        );
        assert_eq!(sim.metrics().context_switches, 1);
    }

    #[test]
    fn context_switches_charged_between_threads() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let c = sim.add_core();
        let a = sim.add_thread(ThreadCfg::new("a", vec![c], Priority::Normal));
        let b = sim.add_thread(ThreadCfg::new("b", vec![c], Priority::Normal));
        // Offered interleaved, but the scheduler batches per thread: the
        // core drains a's queue before switching to b (fewer switches is the
        // whole point of thread batching).
        sim.schedule(SimTime::ZERO, a, 0);
        sim.schedule(SimTime::from_nanos(1), b, 1);
        sim.schedule(SimTime::from_nanos(2), a, 2);
        sim.schedule(SimTime::from_nanos(3), b, 3);
        let mut order = Vec::new();
        sim.run_to_completion(&mut |_t: usize, m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(5));
            order.push(m);
        });
        assert_eq!(order, vec![0, 2, 1, 3]);
        // Cold start on a, then one switch a->b.
        assert_eq!(sim.metrics().context_switches, 2);
    }

    #[test]
    fn high_priority_thread_preferred_on_contended_core() {
        let mut sim: Simulation<&'static str> = Simulation::new(1);
        let c = sim.add_core();
        let lo = sim.add_thread(ThreadCfg::new("lo", vec![c], Priority::Low));
        let hi = sim.add_thread(ThreadCfg::new("hi", vec![c], Priority::High));
        let busy = sim.add_thread(ThreadCfg::new("busy", vec![c], Priority::Normal));
        // Occupy the core first, then make both waiters runnable while busy runs.
        sim.schedule(SimTime::ZERO, busy, "busy");
        sim.schedule(SimTime::from_nanos(10), lo, "lo");
        sim.schedule(SimTime::from_nanos(20), hi, "hi");
        let mut order = Vec::new();
        sim.run_to_completion(
            &mut |_t: usize, m: &'static str, ctx: &mut Ctx<'_, &'static str>| {
                ctx.spend("w", SimDuration::micros(100));
                order.push(m);
            },
        );
        assert_eq!(order, vec!["busy", "hi", "lo"]);
    }

    #[test]
    fn work_spreads_across_pool_cores() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let cores = sim.add_cores(4);
        let affinity: Vec<_> = cores.clone().collect();
        let mut threads = Vec::new();
        for i in 0..4 {
            threads.push(sim.add_thread(ThreadCfg::new(
                format!("w{i}"),
                affinity.clone(),
                Priority::Normal,
            )));
        }
        for (i, &t) in threads.iter().enumerate() {
            sim.schedule(SimTime::ZERO, t, i as u32);
        }
        let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(50));
        });
        // All four items run in parallel: wall time ~ one item, not four.
        assert!(end < SimTime::ZERO + SimDuration::micros(60), "end={end}");
    }

    #[test]
    fn device_io_completion_delivers_message() {
        let mut sim: Simulation<&'static str> = Simulation::new(1);
        let c = sim.add_core();
        let t = sim.add_thread(ThreadCfg::new("t", vec![c], Priority::Normal));
        let dev = sim.add_device(Device::new(
            "ssd",
            DeviceProfile::nvme_pm1725a(SsdState::Steady),
        ));
        sim.schedule(SimTime::ZERO, t, "submit");
        let mut completed_at = SimTime::ZERO;
        sim.run_to_completion(
            &mut |_t: usize, m: &'static str, ctx: &mut Ctx<'_, &'static str>| match m {
                "submit" => {
                    ctx.spend("OS", SimDuration::micros(2));
                    ctx.submit_io(dev, IoRequest::write(4096), 0, "done");
                }
                "done" => completed_at = ctx.now(),
                _ => unreachable!(),
            },
        );
        assert!(
            completed_at > SimTime::ZERO + SimDuration::micros(40),
            "at {completed_at}"
        );
        assert_eq!(sim.device(dev).stats().writes, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        fn run() -> (SimTime, u64) {
            let mut sim: Simulation<u32> = Simulation::new(7);
            let cores = sim.add_cores(2);
            let aff: Vec<_> = cores.collect();
            let t0 = sim.add_thread(ThreadCfg::new("a", aff.clone(), Priority::Normal));
            let t1 = sim.add_thread(ThreadCfg::new("b", aff, Priority::Normal));
            for i in 0..100 {
                sim.schedule(
                    SimTime::from_nanos(i * 10),
                    if i % 2 == 0 { t0 } else { t1 },
                    i as u32,
                );
            }
            let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
                let jitter = ctx.rng().below(500);
                ctx.spend("w", SimDuration::nanos(1_000 + jitter));
            });
            (end, sim.metrics().items_run)
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn stop_halts_the_run() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..10 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let mut n = 0;
        sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            n += 1;
            if n == 3 {
                ctx.stop();
            }
        });
        assert_eq!(n, 3);
        assert!(sim.is_stopped());
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..4 {
            sim.schedule(SimTime::from_nanos(i * 1_000_000), t, i as u32);
        }
        let seen = std::cell::Cell::new(0u32);
        let mut handler = |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(1));
            seen.set(seen.get() + 1);
        };
        sim.run_until(&mut handler, SimTime::from_nanos(1_500_000));
        assert_eq!(seen.get(), 2);
        sim.run_to_completion(&mut handler);
        assert_eq!(seen.get(), 4);
    }

    #[test]
    #[should_panic(expected = "empty affinity")]
    fn empty_affinity_rejected() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.add_thread(ThreadCfg::new("bad", vec![], Priority::Normal));
    }
}
