//! The discrete-event execution engine: cores, threads, scheduler.
//!
//! # Model
//!
//! A simulation hosts *cores* and *threads*. A thread has a FIFO queue of
//! messages, an affinity set of cores it may run on, and a [`Priority`].
//! Delivering a message to a thread makes it runnable; a free core in its
//! affinity set picks it up and runs one *work item*: the [`Handler`] for the
//! message executes logically instantaneously, declaring how much CPU it
//! consumed via [`Ctx::spend`] and emitting *effects* (messages to other
//! threads, device I/O). The core is then busy for the declared CPU time and
//! the effects materialize when the item completes (run-to-completion
//! approximation; items are microsecond-scale so non-preemption is accurate).
//!
//! When a core picks up a work item from a different thread than the one it
//! last ran, a configurable *context-switch cost* is charged — this is the
//! mechanism behind the paper's thread-pool vs run-to-completion comparisons
//! (§III-B "Inefficient Threading Architecture").
//!
//! Cores select among runnable threads by priority tier, round-robin within a
//! tier. Pinning a thread to a dedicated core (and giving no other thread
//! affinity to that core) reproduces the paper's *priority threads*;
//! a shared pool of cores with many `Normal` threads reproduces its
//! *non-priority threads*; `Low` models background maintenance (compaction)
//! threads that only soak up otherwise-idle cores.
//!
//! # Space-parallel execution (domains)
//!
//! The entity space can be partitioned into *domains* with
//! [`Simulation::set_domains`]: each domain owns a disjoint set of threads,
//! cores and devices, and runs its own event queue, clock, RNG stream and
//! metrics. Execution proceeds in *rounds* under a conservative LBTS-window
//! protocol: with `gmin` the globally earliest pending event and `L` the
//! configured [lookahead](Simulation::set_lookahead) (the minimum latency of
//! any cross-domain message), every domain may safely execute all events in
//! `[gmin, gmin + L)` without hearing from its peers, because any event a
//! peer could still send it lands at `gmin + L` or later. Cross-domain sends
//! are buffered in per-destination outboxes during a round, stamped with the
//! sender's `(time, domain, seq)` key, and merged between rounds; since both
//! queue implementations order strictly by the `(time, key)` *value*, merge
//! timing and worker interleaving cannot affect pop order.
//!
//! Rounds are independent of how domains are mapped onto worker threads
//! ([`Simulation::set_workers`]), which is what makes results byte-identical
//! for every worker count: the round sequence, each domain's event order, its
//! RNG stream (split per-domain from the root seed) and its metrics depend
//! only on the topology, never on the parallelism. `workers == 1` runs the
//! rounds in place with zero synchronization; a single-domain simulation
//! degenerates to exactly the original single-threaded loop.

use std::collections::VecDeque;

use crate::device::{Device, IoRequest};
use crate::metrics::{Metrics, StageTag};
use crate::rng::SimRng;
use crate::sched::{EventQueue, SchedulerKind};
use crate::time::{SimDuration, SimTime};

/// Index of a simulated thread.
pub type ThreadId = usize;
/// Index of a simulated core.
pub type CoreId = usize;
/// Index of a simulated device.
pub type DeviceId = usize;

/// Scheduling priority of a thread. Lower tiers run first on a contended core.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Priority {
    /// Latency-critical (the paper's priority threads).
    High,
    /// Regular work (PG threads, non-priority threads).
    Normal,
    /// Background maintenance (compaction/sync threads).
    Low,
}

/// Static configuration of a simulated thread.
#[derive(Debug, Clone)]
pub struct ThreadCfg {
    /// Human-readable name, used in panics and reports.
    pub name: String,
    /// Cores the thread may run on. Must be non-empty.
    pub affinity: Vec<CoreId>,
    /// Scheduling priority.
    pub priority: Priority,
}

impl ThreadCfg {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, affinity: Vec<CoreId>, priority: Priority) -> Self {
        ThreadCfg {
            name: name.into(),
            affinity,
            priority,
        }
    }
}

/// Logic driven by the simulation: one callback per delivered message.
///
/// Implemented by the "world" struct owning all protocol state; also
/// implemented for plain closures, which is convenient in tests.
pub trait Handler<M> {
    /// Handles `msg` delivered to `thread`. CPU consumption and outputs are
    /// declared through `ctx`.
    fn handle(&mut self, thread: ThreadId, msg: M, ctx: &mut Ctx<'_, M>);
}

impl<M, F: FnMut(ThreadId, M, &mut Ctx<'_, M>)> Handler<M> for F {
    fn handle(&mut self, thread: ThreadId, msg: M, ctx: &mut Ctx<'_, M>) {
        self(thread, msg, ctx)
    }
}

enum Effect<M> {
    Send {
        to: ThreadId,
        msg: M,
        delay: SimDuration,
    },
    Io {
        dev: DeviceId,
        req: IoRequest,
        notify: ThreadId,
        msg: M,
    },
    DeviceMultiplier {
        dev: DeviceId,
        multiplier: f64,
    },
}

/// Execution context handed to [`Handler::handle`] for one work item.
pub struct Ctx<'a, M> {
    now: SimTime,
    queued: SimDuration,
    spent: SimDuration,
    charges: Vec<(StageTag, SimDuration)>,
    effects: Vec<Effect<M>>,
    rng: &'a mut SimRng,
    stop: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The simulated instant at which this work item was dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// How long the message sat in its thread's queue before this item was
    /// dispatched (core contention + thread backlog). Purely observational —
    /// reading it never perturbs scheduling.
    pub fn queued_for(&self) -> SimDuration {
        self.queued
    }

    /// Charges `d` of CPU time to this item, attributed to `tag`.
    pub fn spend(&mut self, tag: StageTag, d: SimDuration) {
        self.spent += d;
        self.charges.push((tag, d));
    }

    /// CPU time charged so far in this item.
    pub fn spent_so_far(&self) -> SimDuration {
        self.spent
    }

    /// Sends `msg` to `to`, arriving when this item completes.
    ///
    /// Zero-delay sends must stay inside the sending entity's domain; a
    /// cross-domain send must carry at least the configured lookahead of
    /// delay (network latency guarantees that on every replication /
    /// heartbeat / monitor hop).
    pub fn send(&mut self, to: ThreadId, msg: M) {
        self.send_after(to, msg, SimDuration::ZERO);
    }

    /// Sends `msg` to `to`, arriving `delay` after this item completes
    /// (network latency, timers).
    pub fn send_after(&mut self, to: ThreadId, msg: M, delay: SimDuration) {
        self.effects.push(Effect::Send { to, msg, delay });
    }

    /// Submits `req` to device `dev` when this item completes; `msg` is
    /// delivered to `notify` at I/O completion. The device and the notified
    /// thread must belong to the submitting thread's domain.
    pub fn submit_io(&mut self, dev: DeviceId, req: IoRequest, notify: ThreadId, msg: M) {
        self.effects.push(Effect::Io {
            dev,
            req,
            notify,
            msg,
        });
    }

    /// Retunes device `dev`'s service-time multiplier when this item
    /// completes (fault injection: gray failures slow a device without
    /// killing it; `1.0` restores healthy timing).
    ///
    /// Handlers cannot touch [`Device`](crate::Device) state directly —
    /// devices are owned by the simulation — so the change is applied as an
    /// effect at item end, like sends and I/O submissions.
    pub fn set_device_service_multiplier(&mut self, dev: DeviceId, multiplier: f64) {
        self.effects
            .push(Effect::DeviceMultiplier { dev, multiplier });
    }

    /// Requests the simulation to halt after this item.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// Deterministic randomness (the executing domain's stream).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

struct ThreadState<M> {
    cfg: ThreadCfg,
    /// Pending messages, each stamped with its enqueue time so queue-wait
    /// can be attributed exactly (the stamp is never read by the scheduler).
    queue: VecDeque<(SimTime, M)>,
    running: bool,
}

struct CoreState {
    running: Option<ThreadId>,
    last: Option<ThreadId>,
    /// Threads whose affinity includes this core, sorted by (priority, id).
    candidates: Vec<ThreadId>,
    rr_cursor: usize,
}

enum EventKind<M> {
    Deliver { thread: ThreadId, msg: M },
    CoreFree { core: CoreId },
}

/// Number of low bits of an event key reserved for the per-domain sequence
/// counter; the domain id occupies the bits above. Keys stay totally ordered
/// and bit-stable for any merge timing because comparison is by value.
const KEY_SEQ_BITS: u32 = 48;

/// Splits a per-domain RNG seed from the root seed. Domain 0 keeps the root
/// seed verbatim so a single-domain simulation is bit-identical to the
/// pre-sharding engine; higher domains get splitmix64-scrambled streams.
fn domain_seed(root: u64, domain: u32) -> u64 {
    if domain == 0 {
        return root;
    }
    let mut z = root.wrapping_add((domain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard of the entity space: its own clock, event queue, RNG stream,
/// metrics and the (globally-indexed, sparsely populated) entities it owns.
///
/// Entity vectors are indexed by *global* ids with `None` holes for entities
/// owned by other domains, so no id translation exists anywhere and a
/// cross-domain access fails loudly instead of corrupting a neighbor.
struct DomainCore<M> {
    id: u32,
    now: SimTime,
    seq: u64,
    events: EventQueue<EventKind<M>>,
    threads: Vec<Option<ThreadState<M>>>,
    cores: Vec<Option<CoreState>>,
    devices: Vec<Option<Device>>,
    metrics: Metrics,
    rng: SimRng,
    ctx_switch_cost: SimDuration,
    stopped: bool,
    /// Scratch buffers lent to each work item's [`Ctx`] and reclaimed when
    /// the item completes, so the hot dispatch path allocates nothing.
    scratch_charges: Vec<(StageTag, SimDuration)>,
    scratch_effects: Vec<Effect<M>>,
    /// Cross-domain events produced during the current round, one buffer per
    /// destination domain, each entry stamped `(time, key, thread, msg)`.
    outbox: Vec<Vec<(SimTime, u64, ThreadId, M)>>,
}

impl<M> DomainCore<M> {
    fn new(
        id: u32,
        root_seed: u64,
        kind: SchedulerKind,
        queue_hint: usize,
        ctx_switch_cost: SimDuration,
        n_domains: usize,
    ) -> Self {
        DomainCore {
            id,
            now: SimTime::ZERO,
            seq: 0,
            events: EventQueue::new(kind, queue_hint),
            threads: Vec::new(),
            cores: Vec::new(),
            devices: Vec::new(),
            metrics: Metrics::new(0, 0),
            rng: SimRng::seed(domain_seed(root_seed, id)),
            ctx_switch_cost,
            stopped: false,
            scratch_charges: Vec::with_capacity(16),
            scratch_effects: Vec::with_capacity(16),
            outbox: (0..n_domains).map(|_| Vec::new()).collect(),
        }
    }

    /// The next event key: `(domain << 48) | seq`. For domain 0 this equals
    /// the raw sequence number, so single-domain runs reproduce the
    /// pre-sharding event order bit-for-bit.
    fn next_key(&mut self) -> u64 {
        let key = ((self.id as u64) << KEY_SEQ_BITS) | self.seq;
        debug_assert!(self.seq < 1 << KEY_SEQ_BITS, "domain seq overflow");
        self.seq += 1;
        key
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let key = self.next_key();
        self.events.push(time, key, kind);
    }

    /// Accepts an event merged from another domain, keeping the sender's
    /// key so the total order is independent of merge timing.
    fn deliver_foreign(&mut self, time: SimTime, key: u64, thread: ThreadId, msg: M) {
        debug_assert!(
            time > self.now,
            "cross-domain event not beyond the local clock — lookahead violated"
        );
        self.events
            .push(time, key, EventKind::Deliver { thread, msg });
    }

    fn peek_nanos(&mut self) -> Option<u64> {
        self.events.peek_time().map(|t| t.nanos())
    }

    fn thread(&self, t: ThreadId) -> &ThreadState<M> {
        self.threads
            .get(t)
            .and_then(|s| s.as_ref())
            .unwrap_or_else(|| panic!("thread {t} is not owned by this domain"))
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState<M> {
        self.threads
            .get_mut(t)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("thread {t} is not owned by this domain"))
    }

    fn add_core(&mut self, global_id: CoreId) {
        if self.cores.len() <= global_id {
            self.cores.resize_with(global_id + 1, || None);
        }
        self.cores[global_id] = Some(CoreState {
            running: None,
            last: None,
            candidates: Vec::new(),
            rr_cursor: 0,
        });
    }

    fn add_thread(&mut self, global_id: ThreadId, cfg: ThreadCfg) {
        for &c in &cfg.affinity {
            self.cores
                .get_mut(c)
                .and_then(|s| s.as_mut())
                .expect("affinity core owned by this domain")
                .candidates
                .push(global_id);
        }
        if self.threads.len() <= global_id {
            self.threads.resize_with(global_id + 1, || None);
        }
        self.threads[global_id] = Some(ThreadState {
            cfg,
            queue: VecDeque::new(),
            running: false,
        });
        // Keep candidate lists sorted by (priority, id) so tier scans are cheap.
        let threads = &self.threads;
        for core in self.cores.iter_mut().flatten() {
            core.candidates.sort_by_key(|&t| {
                (
                    threads[t].as_ref().expect("candidate owned").cfg.priority,
                    t,
                )
            });
        }
    }

    /// Executes every pending event with `time <= h_incl` (the inclusive
    /// LBTS horizon of the current round). Cross-domain sends land in
    /// [`DomainCore::outbox`]; everything else is identical to the original
    /// single-threaded loop.
    fn run_round<H: Handler<M>>(
        &mut self,
        handler: &mut H,
        h_incl: SimTime,
        registry: &[u32],
        lookahead: SimDuration,
    ) {
        while !self.stopped {
            match self.events.peek_time() {
                Some(t) if t <= h_incl => {}
                _ => break,
            }
            let (time, _key, kind) = self.events.pop().expect("peeked event exists");
            debug_assert!(time >= self.now, "event time regressed");
            self.now = time;
            match kind {
                EventKind::Deliver { thread, msg } => {
                    self.on_deliver(handler, thread, msg, registry, lookahead)
                }
                EventKind::CoreFree { core } => {
                    self.on_core_free(handler, core, registry, lookahead)
                }
            }
        }
    }

    fn on_deliver<H: Handler<M>>(
        &mut self,
        handler: &mut H,
        thread: ThreadId,
        msg: M,
        registry: &[u32],
        lookahead: SimDuration,
    ) {
        let now = self.now;
        let th = self.thread_mut(thread);
        th.queue.push_back((now, msg));
        if th.running {
            return;
        }
        // Invariant: a runnable thread is only left waiting when all its
        // affinity cores are busy, so taking the first idle core is fair.
        let idle = self.thread(thread).cfg.affinity.iter().copied().find(|&c| {
            self.cores[c]
                .as_ref()
                .expect("affinity core owned")
                .running
                .is_none()
        });
        if let Some(core) = idle {
            self.run_item(handler, core, thread, registry, lookahead);
        }
    }

    fn on_core_free<H: Handler<M>>(
        &mut self,
        handler: &mut H,
        core: CoreId,
        registry: &[u32],
        lookahead: SimDuration,
    ) {
        let state = self.cores[core].as_mut().expect("core owned");
        let finished = state.running.take().expect("CoreFree for an idle core");
        state.last = Some(finished);
        self.thread_mut(finished).running = false;
        if let Some(next) = self.pick_for_core(core) {
            self.run_item(handler, core, next, registry, lookahead);
        }
        // The finished thread may still have queued work and another idle
        // core elsewhere in its affinity set.
        let fin = self.thread(finished);
        if !fin.running && !fin.queue.is_empty() {
            let idle = fin.cfg.affinity.iter().copied().find(|&c| {
                self.cores[c]
                    .as_ref()
                    .expect("affinity core owned")
                    .running
                    .is_none()
            });
            if let Some(c) = idle {
                self.run_item(handler, c, finished, registry, lookahead);
            }
        }
    }

    /// Picks the next thread to run on `core`: highest-priority tier with a
    /// runnable member, round-robin within the tier.
    ///
    /// Two passes over the (priority-sorted) candidate list instead of
    /// collecting the runnable tier into a Vec: this runs once per work item,
    /// so keeping it allocation-free matters for wall-clock throughput.
    fn pick_for_core(&mut self, core: CoreId) -> Option<ThreadId> {
        let state = self.cores[core].as_ref().expect("core owned");
        let mut tier: Option<Priority> = None;
        let mut count = 0usize;
        for &t in &state.candidates {
            let th = self.threads[t].as_ref().expect("candidate owned");
            if th.running || th.queue.is_empty() {
                continue;
            }
            match tier {
                None => {
                    tier = Some(th.cfg.priority);
                    count = 1;
                }
                Some(p) if th.cfg.priority == p => count += 1,
                // Candidates are sorted by priority, so a worse tier means
                // we have seen the whole best tier already.
                Some(_) => break,
            }
        }
        let tier = tier?;
        let state = self.cores[core].as_ref().expect("core owned");
        let idx = state.rr_cursor % count;
        let mut seen = 0usize;
        let mut pick = None;
        for &t in &state.candidates {
            let th = self.threads[t].as_ref().expect("candidate owned");
            if th.running || th.queue.is_empty() {
                continue;
            }
            if th.cfg.priority != tier {
                break;
            }
            if seen == idx {
                pick = Some(t);
                break;
            }
            seen += 1;
        }
        let state = self.cores[core].as_mut().expect("core owned");
        state.rr_cursor = state.rr_cursor.wrapping_add(1);
        pick
    }

    fn run_item<H: Handler<M>>(
        &mut self,
        handler: &mut H,
        core: CoreId,
        thread: ThreadId,
        registry: &[u32],
        lookahead: SimDuration,
    ) {
        debug_assert!(self.cores[core]
            .as_ref()
            .expect("core owned")
            .running
            .is_none());
        debug_assert!(!self.thread(thread).running);
        let (enqueued_at, msg) = self
            .thread_mut(thread)
            .queue
            .pop_front()
            .expect("run_item on thread with empty queue");

        let switching = self.cores[core].as_ref().expect("core owned").last != Some(thread);
        let cs = if switching {
            self.ctx_switch_cost
        } else {
            SimDuration::ZERO
        };

        let mut rng = std::mem::replace(&mut self.rng, SimRng::seed(0));
        let mut ctx = Ctx {
            now: self.now,
            queued: self.now.saturating_since(enqueued_at),
            spent: SimDuration::ZERO,
            charges: std::mem::take(&mut self.scratch_charges),
            effects: std::mem::take(&mut self.scratch_effects),
            rng: &mut rng,
            stop: false,
        };
        handler.handle(thread, msg, &mut ctx);
        let Ctx {
            spent,
            mut charges,
            mut effects,
            stop,
            ..
        } = ctx;
        self.rng = rng;

        let total = cs + spent;
        let end = self.now + total;

        if switching && !cs.is_zero() {
            self.metrics.context_switches += 1;
            self.metrics.context_switch_ns += cs.as_nanos();
        }
        self.metrics.charge_core(core, total);
        self.metrics.charge_thread(thread, total);
        for (tag, d) in charges.drain(..) {
            self.metrics.charge_tag(tag, d);
        }
        self.scratch_charges = charges;
        self.metrics.items_run += 1;

        self.cores[core].as_mut().expect("core owned").running = Some(thread);
        self.thread_mut(thread).running = true;
        if stop {
            self.stopped = true;
        }

        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg, delay } => {
                    let dst = registry[to];
                    if dst == self.id {
                        self.push_event(end + delay, EventKind::Deliver { thread: to, msg });
                    } else {
                        debug_assert!(
                            delay >= lookahead,
                            "cross-domain send with delay {delay} below lookahead {lookahead}"
                        );
                        let key = self.next_key();
                        self.outbox[dst as usize].push((end + delay, key, to, msg));
                    }
                }
                Effect::Io {
                    dev,
                    req,
                    notify,
                    msg,
                } => {
                    debug_assert!(
                        registry[notify] == self.id,
                        "I/O completion must notify a thread in the submitting domain"
                    );
                    let done = self.devices[dev]
                        .as_mut()
                        .expect("device owned by the submitting domain")
                        .submit(end, req);
                    self.push_event(
                        done,
                        EventKind::Deliver {
                            thread: notify,
                            msg,
                        },
                    );
                }
                Effect::DeviceMultiplier { dev, multiplier } => {
                    self.devices[dev]
                        .as_mut()
                        .expect("device owned by the tuning domain")
                        .set_service_multiplier(multiplier);
                }
            }
        }
        self.scratch_effects = effects;
        self.push_event(end, EventKind::CoreFree { core });
    }
}

/// A deterministic discrete-event simulation of cores, threads and devices.
///
/// ```
/// use rablock_sim::{Simulation, ThreadCfg, Priority, SimDuration, SimTime};
///
/// let mut sim: Simulation<u32> = Simulation::new(1);
/// let core = sim.add_core();
/// let t = sim.add_thread(ThreadCfg::new("worker", vec![core], Priority::Normal));
/// sim.schedule(SimTime::ZERO, t, 5);
/// let mut seen = Vec::new();
/// sim.run_until(
///     &mut |_thread: usize, msg: u32, ctx: &mut rablock_sim::Ctx<'_, u32>| {
///         ctx.spend("work", SimDuration::micros(10));
///         seen.push(msg);
///     },
///     SimTime::from_nanos(1_000_000),
/// );
/// assert_eq!(seen, vec![5]);
/// ```
pub struct Simulation<M> {
    domains: Vec<DomainCore<M>>,
    /// Owning domain of each global thread id.
    thread_domain: Vec<u32>,
    /// Owning domain of each global core id.
    core_domain: Vec<u32>,
    /// Owning domain of each global device id.
    dev_domain: Vec<u32>,
    now: SimTime,
    stopped: bool,
    seed: u64,
    kind: SchedulerKind,
    queue_hint: usize,
    ctx_switch_cost: SimDuration,
    lookahead: SimDuration,
    workers: usize,
}

impl<M> Simulation<M> {
    /// Creates an empty single-domain simulation seeded with `seed`.
    ///
    /// The default context-switch cost is 1.2 µs — the commonly measured
    /// direct + indirect (cache pollution) cost on the paper's class of Xeon
    /// servers; override with [`Simulation::set_context_switch_cost`].
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::default(), 4096)
    }

    /// Creates an empty simulation with an explicit event-queue
    /// implementation and sizing hint.
    ///
    /// `queue_hint` is the expected steady-state event population (e.g.
    /// connections × replicas × pipeline depth); it sizes the timing wheel /
    /// heap up front so paper-scale scenarios don't regrow the queue mid-run.
    /// It affects performance only, never results.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind, queue_hint: usize) -> Self {
        let ctx_switch_cost = SimDuration::nanos(1_200);
        Simulation {
            domains: vec![DomainCore::new(
                0,
                seed,
                kind,
                queue_hint,
                ctx_switch_cost,
                1,
            )],
            thread_domain: Vec::new(),
            core_domain: Vec::new(),
            dev_domain: Vec::new(),
            now: SimTime::ZERO,
            stopped: false,
            seed,
            kind,
            queue_hint,
            ctx_switch_cost,
            lookahead: SimDuration::ZERO,
            workers: 1,
        }
    }

    /// Repartitions the (still empty) simulation into `n` domains.
    ///
    /// Must be called before any entity is added: the partition is part of
    /// the topology, so results depend on `n` (domain RNG streams, event
    /// keys) but never on [`Simulation::set_workers`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or if entities were already added.
    pub fn set_domains(&mut self, n: usize) {
        assert!(n >= 1, "at least one domain required");
        assert!(
            self.thread_domain.is_empty()
                && self.core_domain.is_empty()
                && self.dev_domain.is_empty(),
            "set_domains must run before any entity is added"
        );
        self.domains = (0..n)
            .map(|d| {
                DomainCore::new(
                    d as u32,
                    self.seed,
                    self.kind,
                    self.queue_hint,
                    self.ctx_switch_cost,
                    n,
                )
            })
            .collect();
    }

    /// Number of domains the entity space is partitioned into.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The domain owning thread `t`.
    pub fn domain_of_thread(&self, t: ThreadId) -> usize {
        self.thread_domain[t] as usize
    }

    /// Sets the conservative lookahead: the minimum delay every cross-domain
    /// `send_after` is guaranteed to carry (in practice, the minimum
    /// cross-domain link latency). Rounds execute the window
    /// `[gmin, gmin + lookahead)`; larger lookahead means fewer
    /// synchronization rounds. Values below 1 ns are treated as 1 ns.
    pub fn set_lookahead(&mut self, lookahead: SimDuration) {
        self.lookahead = lookahead;
    }

    /// Configured lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Sets how many OS worker threads [`Simulation::run_until_parts`] may
    /// use (clamped to the domain count; default 1 = run rounds in place).
    /// Results are byte-identical for every value by construction.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Configured worker count (before clamping to the domain count).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Which event-queue implementation this simulation runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Sum over domains of the largest pending-event population reached so
    /// far (sizing signal for [`Simulation::with_scheduler`]'s `queue_hint`).
    pub fn queue_high_water(&self) -> u64 {
        self.domains
            .iter()
            .map(|d| d.events.high_water() as u64)
            .sum()
    }

    /// Overrides the cost charged when a core switches between threads.
    pub fn set_context_switch_cost(&mut self, d: SimDuration) {
        self.ctx_switch_cost = d;
        for dom in &mut self.domains {
            dom.ctx_switch_cost = d;
        }
    }

    /// Adds one core to domain 0; returns its id.
    pub fn add_core(&mut self) -> CoreId {
        self.add_core_in(0)
    }

    /// Adds one core to `domain`; returns its global id.
    pub fn add_core_in(&mut self, domain: usize) -> CoreId {
        let id = self.core_domain.len();
        self.core_domain.push(domain as u32);
        self.domains[domain].add_core(id);
        let (threads, cores) = (self.thread_domain.len(), self.core_domain.len());
        self.domains[domain].metrics.grow(threads, cores);
        id
    }

    /// Adds `n` cores to domain 0; returns their contiguous id range.
    pub fn add_cores(&mut self, n: usize) -> std::ops::Range<CoreId> {
        self.add_cores_in(0, n)
    }

    /// Adds `n` cores to `domain`; returns their contiguous global id range.
    pub fn add_cores_in(&mut self, domain: usize, n: usize) -> std::ops::Range<CoreId> {
        let start = self.core_domain.len();
        for _ in 0..n {
            self.add_core_in(domain);
        }
        start..self.core_domain.len()
    }

    /// Adds a thread to domain 0; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the affinity set is empty or references unknown cores.
    pub fn add_thread(&mut self, cfg: ThreadCfg) -> ThreadId {
        self.add_thread_in(0, cfg)
    }

    /// Adds a thread to `domain`; returns its global id.
    ///
    /// # Panics
    ///
    /// Panics if the affinity set is empty, references unknown cores, or
    /// references cores outside `domain` (threads may only run on their own
    /// domain's cores — that is what makes domains independently executable).
    pub fn add_thread_in(&mut self, domain: usize, cfg: ThreadCfg) -> ThreadId {
        assert!(
            !cfg.affinity.is_empty(),
            "thread {:?} has empty affinity",
            cfg.name
        );
        for &c in &cfg.affinity {
            assert!(
                c < self.core_domain.len(),
                "thread {:?} affinity references unknown core {c}",
                cfg.name
            );
            assert!(
                self.core_domain[c] as usize == domain,
                "thread {:?} affinity core {c} belongs to domain {}, not {domain}",
                cfg.name,
                self.core_domain[c]
            );
        }
        let id = self.thread_domain.len();
        self.thread_domain.push(domain as u32);
        self.domains[domain].add_thread(id, cfg);
        let (threads, cores) = (self.thread_domain.len(), self.core_domain.len());
        self.domains[domain].metrics.grow(threads, cores);
        id
    }

    /// Adds a device to domain 0; returns its id.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        self.add_device_in(0, device)
    }

    /// Adds a device to `domain`; returns its global id.
    pub fn add_device_in(&mut self, domain: usize, device: Device) -> DeviceId {
        let id = self.dev_domain.len();
        self.dev_domain.push(domain as u32);
        let dom = &mut self.domains[domain];
        if dom.devices.len() <= id {
            dom.devices.resize_with(id + 1, || None);
        }
        dom.devices[id] = Some(device);
        id
    }

    /// Immutable access to a device (stats, profile).
    pub fn device(&self, id: DeviceId) -> &Device {
        self.domains[self.dev_domain[id] as usize].devices[id]
            .as_ref()
            .expect("device owned by its domain")
    }

    /// Mutable access to a device (reset stats after warm-up).
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        self.domains[self.dev_domain[id] as usize].devices[id]
            .as_mut()
            .expect("device owned by its domain")
    }

    /// Number of devices added so far.
    pub fn device_count(&self) -> usize {
        self.dev_domain.len()
    }

    /// The current simulated instant (the maximum over domain clocks; equal
    /// to the last `run_until` deadline unless a handler stopped the run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics, merged over domains in domain-id order.
    ///
    /// Per-domain thread/core busy vectors are globally indexed with
    /// disjoint non-zero slots, so the merge is an order-independent
    /// elementwise sum — identical for any worker count. Bind the result
    /// once per report; the merge is O(entity count), not free.
    pub fn metrics(&self) -> Metrics {
        let mut merged = self.domains[0].metrics.clone();
        for dom in &self.domains[1..] {
            merged.merge(&dom.metrics);
        }
        merged
    }

    /// Discards accumulated metrics in every domain and restarts the
    /// measurement window at `now` (call after warm-up).
    pub fn reset_metrics_window(&mut self, now: SimTime) {
        for dom in &mut self.domains {
            dom.metrics.reset_window(now);
        }
    }

    /// Name of a thread (for reports).
    pub fn thread_name(&self, t: ThreadId) -> &str {
        &self.domains[self.thread_domain[t] as usize]
            .thread(t)
            .cfg
            .name
    }

    /// Number of messages currently waiting in `t`'s queue (telemetry probe;
    /// does not count the item being executed).
    pub fn thread_queue_len(&self, t: ThreadId) -> usize {
        self.domains[self.thread_domain[t] as usize]
            .thread(t)
            .queue
            .len()
    }

    /// Injects a message for delivery at absolute time `at`.
    ///
    /// Stamped with the *target* domain's key sequence, which is
    /// deterministic because setup runs before (or between) `run_*` calls,
    /// never concurrently with them.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule(&mut self, at: SimTime, thread: ThreadId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        let dom = self.thread_domain[thread] as usize;
        self.domains[dom].push_event(at, EventKind::Deliver { thread, msg });
    }

    /// Runs until `deadline` (inclusive) or until a handler calls
    /// [`Ctx::stop`] or the event queue drains. The clock is advanced to
    /// `deadline` if the queue drained early, so measurement windows stay
    /// well-defined. Returns the instant the run stopped at.
    ///
    /// One handler serves every domain; rounds execute sequentially (no
    /// `Send` bound), so this is the reference path — and, for a
    /// single-domain simulation, exactly the original engine loop.
    pub fn run_until<H: Handler<M>>(&mut self, handler: &mut H, deadline: SimTime) -> SimTime {
        self.seq_rounds(deadline, |_, dom, h, reg, la| {
            dom.run_round(handler, h, reg, la)
        });
        self.collect_run_state();
        if !self.stopped && self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Runs until the event queue is empty or a handler stops the run.
    /// The clock stops at the last processed event.
    pub fn run_to_completion<H: Handler<M>>(&mut self, handler: &mut H) -> SimTime {
        let deadline = SimTime::from_nanos(u64::MAX);
        self.seq_rounds(deadline, |_, dom, h, reg, la| {
            dom.run_round(handler, h, reg, la)
        });
        self.collect_run_state();
        self.now
    }

    /// True if a handler called [`Ctx::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Like [`Simulation::run_until`], but with one handler *part* per
    /// domain so domains can execute on separate worker threads
    /// ([`Simulation::set_workers`]). `parts[d]` handles exactly the events
    /// of domain `d`; results are byte-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `parts.len() != domain_count()`.
    pub fn run_until_parts<P>(&mut self, parts: &mut [P], deadline: SimTime) -> SimTime
    where
        P: Handler<M> + Send,
        M: Send,
    {
        assert_eq!(
            parts.len(),
            self.domains.len(),
            "one handler part per domain"
        );
        let workers = self.workers.min(self.domains.len()).max(1);
        if workers == 1 {
            self.seq_rounds(deadline, |i, dom, h, reg, la| {
                dom.run_round(&mut parts[i], h, reg, la)
            });
        } else {
            self.par_rounds(parts, deadline, workers);
        }
        self.collect_run_state();
        if !self.stopped && self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Inclusive round horizon for a global minimum `gmin`: everything in
    /// `[gmin, gmin + lookahead)` is safe because the earliest cross-domain
    /// message generated this round arrives at `>= gmin + lookahead`.
    fn horizon_nanos(&self, gmin: u64, deadline_n: u64) -> u64 {
        if self.domains.len() == 1 {
            // No cross-domain events exist: one round runs to the deadline.
            return deadline_n;
        }
        let la = self.lookahead.as_nanos().max(1);
        deadline_n.min(gmin.saturating_add(la).saturating_sub(1))
    }

    /// The sequential round loop (reference implementation): compute the
    /// LBTS window, let every domain run it, merge outboxes in ascending
    /// source-domain order, repeat. The parallel executor reproduces exactly
    /// this round sequence.
    fn seq_rounds<F>(&mut self, deadline: SimTime, mut run: F)
    where
        F: FnMut(usize, &mut DomainCore<M>, SimTime, &[u32], SimDuration),
    {
        let d_count = self.domains.len();
        let deadline_n = deadline.nanos();
        let lookahead = self.lookahead;
        loop {
            if self.domains.iter().any(|d| d.stopped) {
                break;
            }
            let gmin = self.domains.iter_mut().filter_map(|d| d.peek_nanos()).min();
            let Some(gmin) = gmin else { break };
            if gmin > deadline_n {
                break;
            }
            let h = SimTime::from_nanos(self.horizon_nanos(gmin, deadline_n));
            let registry = &self.thread_domain;
            for (i, dom) in self.domains.iter_mut().enumerate() {
                run(i, dom, h, registry, lookahead);
            }
            if d_count > 1 {
                for src in 0..d_count {
                    for dst in 0..d_count {
                        if src == dst {
                            continue;
                        }
                        let mut buf = std::mem::take(&mut self.domains[src].outbox[dst]);
                        for (t, key, th, msg) in buf.drain(..) {
                            self.domains[dst].deliver_foreign(t, key, th, msg);
                        }
                        self.domains[src].outbox[dst] = buf;
                    }
                }
            }
        }
    }

    /// The parallel executor: domains are statically assigned to `workers`
    /// scoped threads round-robin; each round is two barrier-separated
    /// phases (execute + publish outboxes, then drain inboxes + republish
    /// per-domain minima). Every mailbox slot has exactly one producer and
    /// one consumer per round, so locks never contend; `dirty` flags let
    /// consumers skip untouched slots. All workers derive identical round
    /// decisions from the post-barrier atomic snapshot, so the loop cannot
    /// split-brain, and the round sequence equals the sequential one — which
    /// is what makes results worker-count-invariant.
    fn par_rounds<P>(&mut self, parts: &mut [P], deadline: SimTime, workers: usize)
    where
        P: Handler<M> + Send,
        M: Send,
    {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
        use std::sync::{Barrier, Mutex};

        // One (src, dst) mailbox slot: the events domain `src` published
        // for domain `dst` this round.
        type MailboxSlot<M> = Mutex<Vec<(SimTime, u64, ThreadId, M)>>;

        let d_count = self.domains.len();
        let deadline_n = deadline.nanos();
        let lookahead = self.lookahead;
        let la = lookahead.as_nanos().max(1);

        let mins: Vec<AtomicU64> = self
            .domains
            .iter_mut()
            .map(|d| AtomicU64::new(d.peek_nanos().unwrap_or(u64::MAX)))
            .collect();
        let stop_flag = AtomicBool::new(self.domains.iter().any(|d| d.stopped));
        let barrier = Barrier::new(workers);
        let mailbox: Vec<MailboxSlot<M>> = (0..d_count * d_count)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let dirty: Vec<AtomicBool> = (0..d_count * d_count)
            .map(|_| AtomicBool::new(false))
            .collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let registry: &[u32] = &self.thread_domain;
        let mut buckets: Vec<Vec<(usize, &mut DomainCore<M>, &mut P)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, (dom, part)) in self.domains.iter_mut().zip(parts.iter_mut()).enumerate() {
            buckets[i % workers].push((i, dom, part));
        }

        std::thread::scope(|s| {
            for bucket in buckets {
                let (mins, stop_flag, barrier) = (&mins, &stop_flag, &barrier);
                let (mailbox, dirty, panic_slot) = (&mailbox, &dirty, &panic_slot);
                s.spawn(move || {
                    let mut bucket = bucket;
                    // A worker that panicked keeps honoring the barrier
                    // protocol (without touching sim state) until everyone
                    // agrees to break; the payload is rethrown at the end.
                    let mut poisoned = false;
                    loop {
                        // Post-barrier snapshot: identical on every worker.
                        let gmin = mins.iter().map(|a| a.load(SeqCst)).min().unwrap();
                        if stop_flag.load(SeqCst) || gmin == u64::MAX || gmin > deadline_n {
                            break;
                        }
                        let h = SimTime::from_nanos(
                            deadline_n.min(gmin.saturating_add(la).saturating_sub(1)),
                        );
                        if !poisoned {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                for (i, dom, part) in bucket.iter_mut() {
                                    dom.run_round(&mut **part, h, registry, lookahead);
                                    if dom.stopped {
                                        stop_flag.store(true, SeqCst);
                                    }
                                    for dst in 0..d_count {
                                        if dom.outbox[dst].is_empty() {
                                            continue;
                                        }
                                        let slot = *i * d_count + dst;
                                        let mut mb = mailbox[slot].lock().unwrap();
                                        std::mem::swap(&mut *mb, &mut dom.outbox[dst]);
                                        dirty[slot].store(true, SeqCst);
                                    }
                                }
                            }));
                            if let Err(p) = r {
                                panic_slot.lock().unwrap().get_or_insert(p);
                                stop_flag.store(true, SeqCst);
                                poisoned = true;
                            }
                        }
                        barrier.wait();
                        if !poisoned {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                for (i, dom, _) in bucket.iter_mut() {
                                    for src in 0..d_count {
                                        let slot = src * d_count + *i;
                                        if !dirty[slot].swap(false, SeqCst) {
                                            continue;
                                        }
                                        let mut buf =
                                            std::mem::take(&mut *mailbox[slot].lock().unwrap());
                                        for (t, key, th, msg) in buf.drain(..) {
                                            dom.deliver_foreign(t, key, th, msg);
                                        }
                                    }
                                    mins[*i].store(dom.peek_nanos().unwrap_or(u64::MAX), SeqCst);
                                }
                            }));
                            if let Err(p) = r {
                                panic_slot.lock().unwrap().get_or_insert(p);
                                stop_flag.store(true, SeqCst);
                                poisoned = true;
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        });

        if let Some(p) = panic_slot.into_inner().unwrap() {
            resume_unwind(p);
        }
    }

    fn collect_run_state(&mut self) {
        self.stopped = self.domains.iter().any(|d| d.stopped);
        for d in &self.domains {
            if d.now > self.now {
                self.now = d.now;
            }
        }
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("domains", &self.domains.len())
            .field("threads", &self.thread_domain.len())
            .field("cores", &self.core_domain.len())
            .field("devices", &self.dev_domain.len())
            .field(
                "pending_events",
                &self.domains.iter().map(|d| d.events.len()).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceProfile, SsdState};

    fn one_core_one_thread() -> (Simulation<u32>, ThreadId) {
        let mut sim: Simulation<u32> = Simulation::new(42);
        let c = sim.add_core();
        let t = sim.add_thread(ThreadCfg::new("t0", vec![c], Priority::Normal));
        (sim, t)
    }

    #[test]
    fn messages_process_in_fifo_order() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..5 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let mut seen = Vec::new();
        sim.run_to_completion(&mut |_t: usize, m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(1));
            seen.push(m);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cpu_time_serializes_on_one_core() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..3 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(10));
        });
        // First item pays one context switch (core cold), rest are same-thread.
        assert_eq!(
            end,
            SimTime::ZERO + SimDuration::micros(30) + SimDuration::nanos(1_200)
        );
        assert_eq!(sim.metrics().context_switches, 1);
    }

    #[test]
    fn context_switches_charged_between_threads() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let c = sim.add_core();
        let a = sim.add_thread(ThreadCfg::new("a", vec![c], Priority::Normal));
        let b = sim.add_thread(ThreadCfg::new("b", vec![c], Priority::Normal));
        // Offered interleaved, but the scheduler batches per thread: the
        // core drains a's queue before switching to b (fewer switches is the
        // whole point of thread batching).
        sim.schedule(SimTime::ZERO, a, 0);
        sim.schedule(SimTime::from_nanos(1), b, 1);
        sim.schedule(SimTime::from_nanos(2), a, 2);
        sim.schedule(SimTime::from_nanos(3), b, 3);
        let mut order = Vec::new();
        sim.run_to_completion(&mut |_t: usize, m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(5));
            order.push(m);
        });
        assert_eq!(order, vec![0, 2, 1, 3]);
        // Cold start on a, then one switch a->b.
        assert_eq!(sim.metrics().context_switches, 2);
    }

    #[test]
    fn high_priority_thread_preferred_on_contended_core() {
        let mut sim: Simulation<&'static str> = Simulation::new(1);
        let c = sim.add_core();
        let lo = sim.add_thread(ThreadCfg::new("lo", vec![c], Priority::Low));
        let hi = sim.add_thread(ThreadCfg::new("hi", vec![c], Priority::High));
        let busy = sim.add_thread(ThreadCfg::new("busy", vec![c], Priority::Normal));
        // Occupy the core first, then make both waiters runnable while busy runs.
        sim.schedule(SimTime::ZERO, busy, "busy");
        sim.schedule(SimTime::from_nanos(10), lo, "lo");
        sim.schedule(SimTime::from_nanos(20), hi, "hi");
        let mut order = Vec::new();
        sim.run_to_completion(
            &mut |_t: usize, m: &'static str, ctx: &mut Ctx<'_, &'static str>| {
                ctx.spend("w", SimDuration::micros(100));
                order.push(m);
            },
        );
        assert_eq!(order, vec!["busy", "hi", "lo"]);
    }

    #[test]
    fn work_spreads_across_pool_cores() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let cores = sim.add_cores(4);
        let affinity: Vec<_> = cores.clone().collect();
        let mut threads = Vec::new();
        for i in 0..4 {
            threads.push(sim.add_thread(ThreadCfg::new(
                format!("w{i}"),
                affinity.clone(),
                Priority::Normal,
            )));
        }
        for (i, &t) in threads.iter().enumerate() {
            sim.schedule(SimTime::ZERO, t, i as u32);
        }
        let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(50));
        });
        // All four items run in parallel: wall time ~ one item, not four.
        assert!(end < SimTime::ZERO + SimDuration::micros(60), "end={end}");
    }

    #[test]
    fn device_io_completion_delivers_message() {
        let mut sim: Simulation<&'static str> = Simulation::new(1);
        let c = sim.add_core();
        let t = sim.add_thread(ThreadCfg::new("t", vec![c], Priority::Normal));
        let dev = sim.add_device(Device::new(
            "ssd",
            DeviceProfile::nvme_pm1725a(SsdState::Steady),
        ));
        sim.schedule(SimTime::ZERO, t, "submit");
        let mut completed_at = SimTime::ZERO;
        sim.run_to_completion(
            &mut |_t: usize, m: &'static str, ctx: &mut Ctx<'_, &'static str>| match m {
                "submit" => {
                    ctx.spend("OS", SimDuration::micros(2));
                    ctx.submit_io(dev, IoRequest::write(4096), 0, "done");
                }
                "done" => completed_at = ctx.now(),
                _ => unreachable!(),
            },
        );
        assert!(
            completed_at > SimTime::ZERO + SimDuration::micros(40),
            "at {completed_at}"
        );
        assert_eq!(sim.device(dev).stats().writes, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        fn run() -> (SimTime, u64) {
            let mut sim: Simulation<u32> = Simulation::new(7);
            let cores = sim.add_cores(2);
            let aff: Vec<_> = cores.collect();
            let t0 = sim.add_thread(ThreadCfg::new("a", aff.clone(), Priority::Normal));
            let t1 = sim.add_thread(ThreadCfg::new("b", aff, Priority::Normal));
            for i in 0..100 {
                sim.schedule(
                    SimTime::from_nanos(i * 10),
                    if i % 2 == 0 { t0 } else { t1 },
                    i as u32,
                );
            }
            let end = sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
                let jitter = ctx.rng().below(500);
                ctx.spend("w", SimDuration::nanos(1_000 + jitter));
            });
            (end, sim.metrics().items_run)
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn stop_halts_the_run() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..10 {
            sim.schedule(SimTime::ZERO, t, i);
        }
        let mut n = 0;
        sim.run_to_completion(&mut |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            n += 1;
            if n == 3 {
                ctx.stop();
            }
        });
        assert_eq!(n, 3);
        assert!(sim.is_stopped());
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let (mut sim, t) = one_core_one_thread();
        for i in 0..4 {
            sim.schedule(SimTime::from_nanos(i * 1_000_000), t, i as u32);
        }
        let seen = std::cell::Cell::new(0u32);
        let mut handler = |_t: usize, _m: u32, ctx: &mut Ctx<'_, u32>| {
            ctx.spend("w", SimDuration::micros(1));
            seen.set(seen.get() + 1);
        };
        sim.run_until(&mut handler, SimTime::from_nanos(1_500_000));
        assert_eq!(seen.get(), 2);
        sim.run_to_completion(&mut handler);
        assert_eq!(seen.get(), 4);
    }

    #[test]
    #[should_panic(expected = "empty affinity")]
    fn empty_affinity_rejected() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.add_thread(ThreadCfg::new("bad", vec![], Priority::Normal));
    }

    // ----- space-parallel (domain) tests -----

    const LOOKAHEAD: SimDuration = SimDuration::micros(20);

    /// Per-domain handler used by the sharding tests: bounces messages
    /// between the two domains with `LOOKAHEAD` delay, does local chatter
    /// with RNG jitter, and logs every delivery it sees.
    struct PingPong {
        peer: ThreadId,
        local: ThreadId,
        log: Vec<(u64, ThreadId, u32)>,
    }

    impl Handler<u32> for PingPong {
        fn handle(&mut self, thread: ThreadId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().nanos(), thread, msg));
            let jitter = ctx.rng().below(700);
            ctx.spend("w", SimDuration::nanos(300 + jitter));
            if msg > 0 {
                if msg.is_multiple_of(3) {
                    // Local zero-delay hop before bouncing onward.
                    ctx.send(self.local, msg - 1);
                } else {
                    ctx.send_after(self.peer, msg - 1, LOOKAHEAD);
                }
            }
        }
    }

    /// Two domains, one core + two threads each; returns the sim and the
    /// per-domain handler parts.
    fn two_domain_setup(workers: usize) -> (Simulation<u32>, Vec<PingPong>) {
        let mut sim: Simulation<u32> = Simulation::new(99);
        sim.set_domains(2);
        sim.set_lookahead(LOOKAHEAD);
        sim.set_workers(workers);
        let c0 = sim.add_core_in(0);
        let c1 = sim.add_core_in(1);
        let a0 = sim.add_thread_in(0, ThreadCfg::new("a0", vec![c0], Priority::Normal));
        let a1 = sim.add_thread_in(0, ThreadCfg::new("a1", vec![c0], Priority::Normal));
        let b0 = sim.add_thread_in(1, ThreadCfg::new("b0", vec![c1], Priority::Normal));
        let b1 = sim.add_thread_in(1, ThreadCfg::new("b1", vec![c1], Priority::Normal));
        // Seed traffic in both domains at staggered times.
        for i in 0..8u64 {
            sim.schedule(SimTime::from_nanos(i * 5_000), a0, 30 + i as u32);
            sim.schedule(SimTime::from_nanos(i * 7_000 + 1), b1, 29 + i as u32);
        }
        let parts = vec![
            PingPong {
                peer: b0,
                local: a1,
                log: Vec::new(),
            },
            PingPong {
                peer: a1,
                local: b0,
                log: Vec::new(),
            },
        ];
        (sim, parts)
    }

    #[test]
    fn cross_domain_send_pays_lookahead() {
        let (mut sim, mut parts) = two_domain_setup(1);
        let deadline = SimTime::from_nanos(50_000_000);
        let end = sim.run_until_parts(&mut parts, deadline);
        assert_eq!(end, deadline);
        // Both domains saw traffic, including bounced cross-domain messages.
        assert!(parts[0].log.len() > 20, "{}", parts[0].log.len());
        assert!(parts[1].log.len() > 20, "{}", parts[1].log.len());
        let items: u64 = sim.metrics().items_run;
        assert_eq!(items as usize, parts[0].log.len() + parts[1].log.len());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| {
            let (mut sim, mut parts) = two_domain_setup(workers);
            let end = sim.run_until_parts(&mut parts, SimTime::from_nanos(50_000_000));
            let m = sim.metrics();
            (
                end,
                parts[0].log.clone(),
                parts[1].log.clone(),
                m.items_run,
                m.context_switches,
                sim.queue_high_water(),
            )
        };
        let seq = run(1);
        let par = run(2);
        assert_eq!(seq, par);
        let par4 = run(4); // clamps to 2 workers, must still match
        assert_eq!(seq, par4);
    }

    #[test]
    fn tiny_lookahead_still_converges_and_matches() {
        // 1 ns lookahead forces a synchronization round per distinct
        // timestamp — the worst case for the LBTS window protocol.
        let run = |workers: usize| {
            let (mut sim, mut parts) = two_domain_setup(workers);
            sim.set_lookahead(SimDuration::nanos(1));
            let end = sim.run_until_parts(&mut parts, SimTime::from_nanos(5_000_000));
            (end, parts[0].log.clone(), parts[1].log.clone())
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn single_domain_parts_match_legacy_run_until() {
        // run_until_parts on a 1-domain sim must behave exactly like the
        // legacy loop (same events, same metrics).
        let legacy = {
            let (mut sim, t) = one_core_one_thread();
            for i in 0..6 {
                sim.schedule(SimTime::from_nanos(i * 1_000), t, i as u32);
            }
            let mut seen: Vec<u32> = Vec::new();
            sim.run_until(
                &mut |_t: usize, m: u32, ctx: &mut Ctx<'_, u32>| {
                    ctx.spend("w", SimDuration::micros(2));
                    seen.push(m);
                },
                SimTime::from_nanos(10_000_000),
            );
            (seen, sim.metrics().items_run, sim.queue_high_water())
        };
        let parts_run = {
            let (mut sim, t) = one_core_one_thread();
            for i in 0..6 {
                sim.schedule(SimTime::from_nanos(i * 1_000), t, i as u32);
            }
            struct Collect(Vec<u32>);
            impl Handler<u32> for Collect {
                fn handle(&mut self, _t: ThreadId, m: u32, ctx: &mut Ctx<'_, u32>) {
                    ctx.spend("w", SimDuration::micros(2));
                    self.0.push(m);
                }
            }
            let mut parts = vec![Collect(Vec::new())];
            sim.run_until_parts(&mut parts, SimTime::from_nanos(10_000_000));
            let seen = std::mem::take(&mut parts[0].0);
            (seen, sim.metrics().items_run, sim.queue_high_water())
        };
        assert_eq!(legacy, parts_run);
    }

    #[test]
    fn domain_rng_streams_differ_but_domain0_keeps_root_seed() {
        assert_eq!(domain_seed(1234, 0), 1234);
        assert_ne!(domain_seed(1234, 1), domain_seed(1234, 2));
        assert_ne!(domain_seed(1234, 1), 1234);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below lookahead")]
    fn cross_domain_send_below_lookahead_is_rejected() {
        let (mut sim, mut parts) = two_domain_setup(1);
        // Overriding the handler wiring: send with zero delay across
        // domains by abusing a raw closure part is awkward, so instead
        // raise the configured lookahead above what PingPong pays.
        sim.set_lookahead(SimDuration::micros(200));
        sim.run_until_parts(&mut parts, SimTime::from_nanos(50_000_000));
    }

    #[test]
    #[should_panic(expected = "not owned by this domain")]
    fn cross_domain_direct_access_fails_loudly() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.set_domains(2);
        let c1 = sim.add_core_in(1);
        let t1 = sim.add_thread_in(1, ThreadCfg::new("b", vec![c1], Priority::Normal));
        // Thread t1 lives in domain 1; asking domain 0's view for it in a
        // handler would panic, and so does a mis-routed queue probe if the
        // registry were bypassed. Simulate the bypass directly:
        let _ = sim.domains[0].thread(t1);
    }

    #[test]
    #[should_panic(expected = "before any entity is added")]
    fn set_domains_after_entities_rejected() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.add_core();
        sim.set_domains(2);
    }

    #[test]
    #[should_panic(expected = "belongs to domain")]
    fn thread_affinity_cannot_cross_domains() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.set_domains(2);
        let c0 = sim.add_core_in(0);
        sim.add_thread_in(1, ThreadCfg::new("x", vec![c0], Priority::Normal));
    }
}
