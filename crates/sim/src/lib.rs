//! # rablock-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under `rablock`'s benchmark harnesses: a discrete-event
//! simulation of CPU cores, schedulable threads, storage devices and network
//! links, with per-stage CPU accounting.
//!
//! The distributed block storage paper this workspace reproduces (ICDCS'21,
//! *Re-architecting Distributed Block Storage System…*) attributes its wins to
//! CPU-level phenomena — context-switch overhead, priority inversion between
//! latency-critical and batch work, and backend-store CPU burn. This kernel
//! models exactly those phenomena, deterministically, so the paper's figures
//! can be regenerated on a laptop:
//!
//! * [`Simulation`] — event loop over cores/threads/devices.
//! * [`ThreadCfg`]/[`Priority`] — thread-pool, run-to-completion and
//!   prioritized-thread-control scheduling policies are all expressible as
//!   affinity + priority configurations.
//! * [`Device`]/[`DeviceProfile`] — queued NVMe SSD and ramdisk-NVM timing
//!   models calibrated to the paper's hardware envelopes.
//! * [`Link`] — 100 GbE-like serialization + latency.
//! * [`Metrics`] — CPU% per stage tag (MP/RP/TP/OS/MT), context switches.
//!
//! ## Example
//!
//! ```
//! use rablock_sim::*;
//!
//! let mut sim: Simulation<&'static str> = Simulation::new(0xAB);
//! let core = sim.add_core();
//! let t = sim.add_thread(ThreadCfg::new("worker", vec![core], Priority::Normal));
//! let ssd = sim.add_device(Device::new("ssd0", DeviceProfile::nvme_pm1725a(SsdState::Steady)));
//!
//! sim.schedule(SimTime::ZERO, t, "write");
//! let mut done = false;
//! sim.run_to_completion(&mut |thread: usize, msg: &'static str, ctx: &mut Ctx<'_, &'static str>| {
//!     match msg {
//!         "write" => {
//!             ctx.spend("OS", SimDuration::micros(5));
//!             ctx.submit_io(ssd, IoRequest::write(4096), thread, "completed");
//!         }
//!         "completed" => done = true,
//!         _ => unreachable!(),
//!     }
//! });
//! assert!(done);
//! ```

#![warn(missing_docs)]

mod device;
mod engine;
mod faults;
mod link;
mod metrics;
mod rng;
mod sched;
mod time;
pub mod trace;

pub use device::{Device, DeviceProfile, DeviceStats, IoKind, IoRequest, SsdState};
pub use engine::{CoreId, Ctx, DeviceId, Handler, Priority, Simulation, ThreadCfg, ThreadId};
pub use faults::{
    BitRotSchedule, CrashSchedule, FaultEvent, FaultPlan, GrayWindow, LinkFault, MessageFate,
    Partition, RotMedia,
};
pub use link::Link;
pub use metrics::{Metrics, StageTag};
pub use rng::SimRng;
pub use sched::SchedulerKind;
pub use time::{SimDuration, SimTime};
pub use trace::{
    chrome_trace_json, AttributionReport, Component, LatSummary, Recorder, SlowOp, Span,
    TimeSeries, TraceId, Track,
};
