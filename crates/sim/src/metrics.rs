//! CPU and event accounting for simulation runs.
//!
//! The paper's analysis hinges on *where CPU time goes*: message processing
//! (MP), replication processing (RP), transaction processing (TP), object
//! store work (OS) and maintenance tasks (MT). Handlers tag every slice of
//! CPU they consume with a [`StageTag`]; [`Metrics`] aggregates those slices
//! per tag, per thread and per core, and converts them to the paper's
//! "logical cores × 100" CPU-usage convention.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// A label for a class of CPU work (e.g. `"MP"`, `"RP"`, `"TP"`, `"OS"`, `"MT"`).
///
/// Tags are interned `&'static str`s; drivers define their own vocabulary.
pub type StageTag = &'static str;

/// Aggregated counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// CPU nanoseconds per stage tag.
    tag_ns: BTreeMap<StageTag, u64>,
    /// CPU nanoseconds per thread (indexed by `ThreadId`).
    thread_busy_ns: Vec<u64>,
    /// CPU nanoseconds per core (indexed by `CoreId`).
    core_busy_ns: Vec<u64>,
    /// Number of context switches charged (a work item ran on a core whose
    /// previous work item belonged to a different thread).
    pub context_switches: u64,
    /// Nanoseconds spent purely on context-switch overhead.
    pub context_switch_ns: u64,
    /// Work items executed.
    pub items_run: u64,
    /// Instant from which rates/usages are computed (set by `reset_window`).
    window_start: SimTime,
}

impl Metrics {
    /// Creates empty metrics sized for `threads` threads and `cores` cores.
    pub fn new(threads: usize, cores: usize) -> Self {
        Metrics {
            thread_busy_ns: vec![0; threads],
            core_busy_ns: vec![0; cores],
            ..Metrics::default()
        }
    }

    pub(crate) fn grow(&mut self, threads: usize, cores: usize) {
        if self.thread_busy_ns.len() < threads {
            self.thread_busy_ns.resize(threads, 0);
        }
        if self.core_busy_ns.len() < cores {
            self.core_busy_ns.resize(cores, 0);
        }
    }

    pub(crate) fn charge_tag(&mut self, tag: StageTag, d: SimDuration) {
        *self.tag_ns.entry(tag).or_insert(0) += d.as_nanos();
    }

    pub(crate) fn charge_thread(&mut self, thread: usize, d: SimDuration) {
        self.thread_busy_ns[thread] += d.as_nanos();
    }

    pub(crate) fn charge_core(&mut self, core: usize, d: SimDuration) {
        self.core_busy_ns[core] += d.as_nanos();
    }

    /// Discards all accumulated counters and restarts the measurement window
    /// at `now`. Call after warm-up so steady-state numbers are unpolluted.
    pub fn reset_window(&mut self, now: SimTime) {
        let threads = self.thread_busy_ns.len();
        let cores = self.core_busy_ns.len();
        *self = Metrics::new(threads, cores);
        self.window_start = now;
    }

    /// Start of the current measurement window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// Folds `other`'s counters into `self` (elementwise sums).
    ///
    /// Used by the sharded engine: each shard accumulates into its own
    /// `Metrics` (thread/core vectors are globally indexed, so the busy
    /// slots of different shards are disjoint) and the per-shard instances
    /// are merged in shard-id order when a report is taken. Because every
    /// operation here is an order-independent sum, the merged result is
    /// identical for any shard count — the invariant the determinism suite
    /// pins.
    pub fn merge(&mut self, other: &Metrics) {
        for (tag, ns) in &other.tag_ns {
            *self.tag_ns.entry(tag).or_insert(0) += ns;
        }
        if self.thread_busy_ns.len() < other.thread_busy_ns.len() {
            self.thread_busy_ns.resize(other.thread_busy_ns.len(), 0);
        }
        for (i, ns) in other.thread_busy_ns.iter().enumerate() {
            self.thread_busy_ns[i] += ns;
        }
        if self.core_busy_ns.len() < other.core_busy_ns.len() {
            self.core_busy_ns.resize(other.core_busy_ns.len(), 0);
        }
        for (i, ns) in other.core_busy_ns.iter().enumerate() {
            self.core_busy_ns[i] += ns;
        }
        self.context_switches += other.context_switches;
        self.context_switch_ns += other.context_switch_ns;
        self.items_run += other.items_run;
        self.window_start = self.window_start.min(other.window_start);
    }

    /// CPU nanoseconds charged to `tag` in the current window.
    pub fn tag_nanos(&self, tag: StageTag) -> u64 {
        self.tag_ns.get(tag).copied().unwrap_or(0)
    }

    /// All tags with charges, sorted by tag name.
    pub fn tags(&self) -> impl Iterator<Item = (StageTag, u64)> + '_ {
        self.tag_ns.iter().map(|(t, ns)| (*t, *ns))
    }

    /// CPU usage of `tag` in the paper's convention (% of one logical core;
    /// 200 means two cores fully busy) over the window ending at `now`.
    pub fn tag_cpu_pct(&self, tag: StageTag, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start).as_nanos();
        if window == 0 {
            return 0.0;
        }
        self.tag_nanos(tag) as f64 / window as f64 * 100.0
    }

    /// Total CPU usage (% of one logical core) across all tags and
    /// context-switch overhead, over the window ending at `now`.
    pub fn total_cpu_pct(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start).as_nanos();
        if window == 0 {
            return 0.0;
        }
        let busy: u64 = self.core_busy_ns.iter().sum();
        busy as f64 / window as f64 * 100.0
    }

    /// Busy nanoseconds of one thread in the current window.
    pub fn thread_busy(&self, thread: usize) -> u64 {
        self.thread_busy_ns.get(thread).copied().unwrap_or(0)
    }

    /// Busy nanoseconds of one core in the current window.
    pub fn core_busy(&self, core: usize) -> u64 {
        self.core_busy_ns.get(core).copied().unwrap_or(0)
    }

    /// Sum of busy nanoseconds over a contiguous range of cores (e.g. the
    /// cores of one node).
    pub fn cores_busy(&self, cores: std::ops::Range<usize>) -> u64 {
        cores.filter_map(|c| self.core_busy_ns.get(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pct_uses_window() {
        let mut m = Metrics::new(2, 2);
        m.reset_window(SimTime::from_nanos(1_000));
        m.charge_tag("MP", SimDuration::nanos(500));
        m.charge_core(0, SimDuration::nanos(500));
        let now = SimTime::from_nanos(2_000);
        assert!((m.tag_cpu_pct("MP", now) - 50.0).abs() < 1e-9);
        assert!((m.total_cpu_pct(now) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_tag_reads_zero() {
        let m = Metrics::new(1, 1);
        assert_eq!(m.tag_nanos("nope"), 0);
        assert_eq!(m.tag_cpu_pct("nope", SimTime::from_nanos(10)), 0.0);
    }

    #[test]
    fn merge_sums_disjoint_shards_order_independently() {
        // Shard 0 owns thread/core 0, shard 1 owns thread/core 2 (sparse,
        // globally indexed, different vector lengths).
        let mut a = Metrics::new(1, 1);
        a.charge_tag("MP", SimDuration::nanos(100));
        a.charge_thread(0, SimDuration::nanos(40));
        a.charge_core(0, SimDuration::nanos(40));
        a.items_run = 3;
        let mut b = Metrics::new(3, 3);
        b.charge_tag("MP", SimDuration::nanos(11));
        b.charge_tag("OS", SimDuration::nanos(7));
        b.charge_thread(2, SimDuration::nanos(5));
        b.charge_core(2, SimDuration::nanos(5));
        b.context_switches = 2;
        b.context_switch_ns = 2_400;
        b.items_run = 4;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        for m in [&ab, &ba] {
            assert_eq!(m.tag_nanos("MP"), 111);
            assert_eq!(m.tag_nanos("OS"), 7);
            assert_eq!(m.thread_busy(0), 40);
            assert_eq!(m.thread_busy(2), 5);
            assert_eq!(m.core_busy(0), 40);
            assert_eq!(m.core_busy(2), 5);
            assert_eq!(m.context_switches, 2);
            assert_eq!(m.context_switch_ns, 2_400);
            assert_eq!(m.items_run, 7);
        }
    }

    #[test]
    fn reset_clears_counters_but_keeps_sizes() {
        let mut m = Metrics::new(3, 4);
        m.charge_thread(2, SimDuration::nanos(7));
        m.reset_window(SimTime::from_nanos(5));
        assert_eq!(m.thread_busy(2), 0);
        assert_eq!(m.window_start(), SimTime::from_nanos(5));
        m.charge_thread(2, SimDuration::nanos(9)); // must not panic: sizes kept
        assert_eq!(m.thread_busy(2), 9);
    }
}
