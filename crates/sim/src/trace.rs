//! Deterministic per-op tracing and latency attribution.
//!
//! The paper's figures explain *that* an architecture wins; tracing explains
//! *where* the nanoseconds go. Every client op can carry a [`TraceId`];
//! drivers open [`Span`]s at each stage boundary the DES models (messenger,
//! stage service, network hops, NVM append, device queue, acks) and a
//! [`Recorder`] folds a completed op's spans into a per-[`Component`]
//! breakdown: queue-wait vs service vs network vs NVM vs device vs retry.
//!
//! # Determinism rules
//!
//! Tracing must never change simulation results. Recorders therefore:
//! * read only the simulated clock — never wall-clock time or RNG state;
//! * schedule no events and charge no CPU — recording is pure bookkeeping
//!   on the side of the event loop;
//! * live behind an `Option` so a disabled run does zero heap work.
//!
//! Exports ([`chrome_trace_json`], [`TimeSeries::to_csv`]) iterate only
//! sorted/ordered structures so repeated runs emit byte-identical files.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Unique id of one traced client operation.
///
/// Drivers derive it deterministically from protocol identity (e.g.
/// `(connection, op-sequence)`), so the same seed yields the same ids.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Packs a (connection, per-connection op counter) pair into an id.
    pub fn from_conn_op(conn: u32, op: u64) -> TraceId {
        TraceId(((conn as u64) << 40) | (op & 0xFF_FFFF_FFFF))
    }

    /// The connection this id was packed from.
    pub fn conn(self) -> u32 {
        (self.0 >> 40) as u32
    }

    /// The per-connection op counter this id was packed from.
    pub fn op(self) -> u64 {
        self.0 & 0xFF_FFFF_FFFF
    }
}

/// Number of latency-attribution components.
pub const COMPONENTS: usize = 7;

/// Where a slice of an op's latency was spent.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Component {
    /// Waiting in a thread's queue for a core (backlog + contention).
    Queue,
    /// CPU service at a stage (MP/RP/TP/OS handler work).
    Service,
    /// Network transfer + propagation on any hop.
    Network,
    /// NVM operation-log append (fixed + per-byte cost).
    Nvm,
    /// Device submit-to-completion (includes internal device queueing).
    Device,
    /// Timeout backoff before a retransmission.
    Retry,
    /// Residual wall time no span covers (e.g. waiting out a lost message).
    Other,
}

impl Component {
    /// All components, in reporting order.
    pub const ALL: [Component; COMPONENTS] = [
        Component::Queue,
        Component::Service,
        Component::Network,
        Component::Nvm,
        Component::Device,
        Component::Retry,
        Component::Other,
    ];

    /// Stable array index of this component.
    pub fn idx(self) -> usize {
        match self {
            Component::Queue => 0,
            Component::Service => 1,
            Component::Network => 2,
            Component::Nvm => 3,
            Component::Device => 4,
            Component::Retry => 5,
            Component::Other => 6,
        }
    }

    /// Short stable name used in CSV headers and reports.
    pub fn name(self) -> &'static str {
        match self {
            Component::Queue => "queue",
            Component::Service => "service",
            Component::Network => "network",
            Component::Nvm => "nvm",
            Component::Device => "device",
            Component::Retry => "retry",
            Component::Other => "other",
        }
    }
}

/// The entity a span executed on (Perfetto track assignment).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Track {
    /// A client connection.
    Client(u32),
    /// An OSD.
    Osd(u32),
}

/// One timed slice of a traced op.
#[derive(Copy, Clone, Debug)]
pub struct Span {
    /// Stage-boundary label, e.g. `"rp.primary"`, `"net.repop"`, `"device"`.
    pub name: &'static str,
    /// Where it ran.
    pub track: Track,
    /// Start instant (sim clock).
    pub start: SimTime,
    /// Duration.
    pub dur: SimDuration,
    /// Attribution bucket.
    pub comp: Component,
}

/// Per-op bookkeeping while the op is in flight.
#[derive(Debug)]
struct OpTrace {
    is_write: bool,
    issued: SimTime,
    spans: Vec<Span>,
    comp_ns: [u64; COMPONENTS],
    retries: u32,
    /// Replication-map keys `(primary_osd, seq)` registered for this op, so
    /// the driver can drop its lookup entries when the op completes.
    rep_keys: Vec<(u32, u64)>,
}

/// A completed op in the slow-op ring: full span tree plus fold results.
#[derive(Clone, Debug)]
pub struct SlowOp {
    /// The op's trace id.
    pub id: TraceId,
    /// True for writes.
    pub is_write: bool,
    /// When the client issued it.
    pub issued: SimTime,
    /// End-to-end latency.
    pub total: SimDuration,
    /// Nanoseconds attributed to each [`Component`] (indexed by `idx()`).
    pub comp_ns: [u64; COMPONENTS],
    /// Retransmissions observed.
    pub retries: u32,
    /// All recorded spans, in recording order.
    pub spans: Vec<Span>,
}

impl SlowOp {
    /// The single longest span (the op's dominant time sink), if any.
    pub fn dominant_span(&self) -> Option<&Span> {
        self.spans.iter().max_by_key(|s| s.dur.as_nanos())
    }
}

/// Summary handed back to the driver when an op completes.
#[derive(Debug)]
pub struct FinishedOp {
    /// End-to-end latency.
    pub total: SimDuration,
    /// True for writes.
    pub is_write: bool,
    /// Replication-map keys the driver registered for this op.
    pub rep_keys: Vec<(u32, u64)>,
}

/// Five-point latency summary (replaces anonymous `[SimDuration; 4]` arrays).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatSummary {
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile (the 4K-random-write tail under churn).
    pub p999: SimDuration,
}

impl LatSummary {
    /// All-zero summary (no samples).
    pub const ZERO: LatSummary = LatSummary {
        mean: SimDuration::ZERO,
        p50: SimDuration::ZERO,
        p95: SimDuration::ZERO,
        p99: SimDuration::ZERO,
        p999: SimDuration::ZERO,
    };

    /// Builds a summary from raw nanosecond samples (sorts a copy).
    ///
    /// Percentile convention: nearest-rank on `(len-1)·p`, matching the
    /// driver's historical `LatencyRecorder` so values stay comparable
    /// across benchmark generations.
    pub fn from_samples(samples: &[u64]) -> LatSummary {
        if samples.is_empty() {
            return LatSummary::ZERO;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            SimDuration::nanos(sorted[idx.min(sorted.len() - 1)])
        };
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        LatSummary {
            mean: SimDuration::nanos(mean),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            p999: pick(0.999),
        }
    }

    /// The summary's five fields in fingerprint order.
    pub fn fields(&self) -> [SimDuration; 5] {
        [self.mean, self.p50, self.p95, self.p99, self.p999]
    }
}

/// Aggregated per-component attribution for one measurement window.
#[derive(Clone, Debug, Default)]
pub struct AttributionReport {
    /// Ops folded into this report.
    pub ops: u64,
    /// Per component: latency summary over per-op totals plus the grand
    /// total nanoseconds, indexed by [`Component::idx`].
    pub components: Vec<(Component, LatSummary, u64)>,
    /// Worst ops observed, sorted worst-first.
    pub slow_ops: Vec<SlowOp>,
}

impl AttributionReport {
    /// Share (0..=1) of all attributed nanoseconds in `comp`.
    pub fn share(&self, comp: Component) -> f64 {
        let total: u64 = self.components.iter().map(|(_, _, ns)| ns).sum();
        if total == 0 {
            return 0.0;
        }
        self.components
            .iter()
            .find(|(c, _, _)| *c == comp)
            .map(|(_, _, ns)| *ns as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

/// Collects spans for in-flight ops and folds them on completion.
///
/// Owned by the driver behind an `Option` — a `None` recorder is the
/// "tracing disabled" state and costs one branch per call site.
#[derive(Debug)]
pub struct Recorder {
    ops: HashMap<u64, OpTrace>,
    /// Per-component per-op totals (ns) for completed ops in the window.
    comp_samples: [Vec<u64>; COMPONENTS],
    /// Slow-op ring, kept sorted ascending by (total, id).
    slow: Vec<SlowOp>,
    slow_cap: usize,
    span_cap: usize,
    completed: u64,
}

impl Recorder {
    /// A recorder keeping the `slow_cap` worst ops with full span trees.
    pub fn new(slow_cap: usize) -> Recorder {
        Recorder {
            ops: HashMap::new(),
            comp_samples: Default::default(),
            slow: Vec::with_capacity(slow_cap),
            slow_cap,
            span_cap: 128,
            completed: 0,
        }
    }

    /// Starts (or restarts after a crash-era drop) tracking an op.
    pub fn begin(&mut self, id: TraceId, is_write: bool, now: SimTime) {
        self.ops.entry(id.0).or_insert_with(|| OpTrace {
            is_write,
            issued: now,
            spans: Vec::new(),
            comp_ns: [0; COMPONENTS],
            retries: 0,
            rep_keys: Vec::new(),
        });
    }

    /// True if `id` is currently being tracked.
    pub fn is_open(&self, id: TraceId) -> bool {
        self.ops.contains_key(&id.0)
    }

    /// Records a span for `id` (ignored if the op is unknown). Zero-length
    /// spans still contribute to component totals but are not stored.
    pub fn span(
        &mut self,
        id: TraceId,
        name: &'static str,
        track: Track,
        start: SimTime,
        dur: SimDuration,
        comp: Component,
    ) {
        if let Some(op) = self.ops.get_mut(&id.0) {
            op.comp_ns[comp.idx()] += dur.as_nanos();
            if !dur.is_zero() && op.spans.len() < self.span_cap {
                op.spans.push(Span {
                    name,
                    track,
                    start,
                    dur,
                    comp,
                });
            }
        }
    }

    /// Adds component time without storing a span (fine-grained charges).
    pub fn add(&mut self, id: TraceId, comp: Component, ns: u64) {
        if let Some(op) = self.ops.get_mut(&id.0) {
            op.comp_ns[comp.idx()] += ns;
        }
    }

    /// Counts a retransmission of `id`.
    pub fn retry(&mut self, id: TraceId) {
        if let Some(op) = self.ops.get_mut(&id.0) {
            op.retries += 1;
        }
    }

    /// Remembers a replication-map key the driver registered for `id`, so
    /// [`Recorder::finish`] can hand it back for cleanup.
    pub fn note_rep_key(&mut self, id: TraceId, primary: u32, seq: u64) {
        if let Some(op) = self.ops.get_mut(&id.0) {
            op.rep_keys.push((primary, seq));
        }
    }

    /// Completes `id` at `now`: folds spans into the component histograms,
    /// admits the op into the slow ring if it qualifies, and returns the
    /// fold summary. Returns `None` for unknown ids (e.g. pre-window ops).
    pub fn finish(&mut self, id: TraceId, now: SimTime) -> Option<FinishedOp> {
        let mut op = self.ops.remove(&id.0)?;
        let total = now.saturating_since(op.issued);
        let attributed: u64 = op.comp_ns.iter().sum();
        let other = total.as_nanos().saturating_sub(attributed);
        op.comp_ns[Component::Other.idx()] += other;
        for c in Component::ALL {
            self.comp_samples[c.idx()].push(op.comp_ns[c.idx()]);
        }
        self.completed += 1;
        self.admit_slow(id, &op, total);
        Some(FinishedOp {
            total,
            is_write: op.is_write,
            rep_keys: std::mem::take(&mut op.rep_keys),
        })
    }

    /// Drops an op without folding it (e.g. permanently failed).
    pub fn abandon(&mut self, id: TraceId) -> Option<Vec<(u32, u64)>> {
        self.ops.remove(&id.0).map(|op| op.rep_keys)
    }

    fn admit_slow(&mut self, id: TraceId, op: &OpTrace, total: SimDuration) {
        if self.slow_cap == 0 {
            return;
        }
        let key = (total.as_nanos(), id.0);
        if self.slow.len() >= self.slow_cap {
            let min_key = (self.slow[0].total.as_nanos(), self.slow[0].id.0);
            if key <= min_key {
                return;
            }
            self.slow.remove(0);
        }
        let entry = SlowOp {
            id,
            is_write: op.is_write,
            issued: op.issued,
            total,
            comp_ns: op.comp_ns,
            retries: op.retries,
            spans: op.spans.clone(),
        };
        let pos = self
            .slow
            .partition_point(|s| (s.total.as_nanos(), s.id.0) < key);
        self.slow.insert(pos, entry);
    }

    /// Restarts the measurement window: completed-op aggregates are cleared,
    /// in-flight ops keep accumulating (ops straddling the boundary complete
    /// into the new window, mirroring the latency recorders).
    pub fn reset_window(&mut self) {
        for v in &mut self.comp_samples {
            v.clear();
        }
        self.slow.clear();
        self.completed = 0;
    }

    /// Ops completed in the current window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Folds the window's aggregates into an [`AttributionReport`]
    /// (slow ops sorted worst-first).
    pub fn report(&self) -> AttributionReport {
        let components = Component::ALL
            .iter()
            .map(|&c| {
                let samples = &self.comp_samples[c.idx()];
                let total: u64 = samples.iter().sum();
                (c, LatSummary::from_samples(samples), total)
            })
            .collect();
        let mut slow: Vec<SlowOp> = self.slow.clone();
        slow.reverse();
        AttributionReport {
            ops: self.completed,
            components,
            slow_ops: slow,
        }
    }
}

/// A windowed time-series: fixed columns, one row per sample instant.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    cols: Vec<String>,
    rows: Vec<(SimTime, Vec<f64>)>,
}

impl TimeSeries {
    /// A series with the given column names.
    pub fn new<S: Into<String>>(cols: Vec<S>) -> TimeSeries {
        TimeSeries {
            cols: cols.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one sample row. `values.len()` must match the column count.
    pub fn push(&mut self, at: SimTime, values: Vec<f64>) {
        assert_eq!(values.len(), self.cols.len(), "time-series row arity");
        self.rows.push((at, values));
    }

    /// Column names.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// Sampled rows.
    pub fn rows(&self) -> &[(SimTime, Vec<f64>)] {
        &self.rows
    }

    /// Discards all rows (window reset).
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Renders the series as CSV with a leading `t_ms` column.
    /// Deterministic: fixed formatting, insertion order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms");
        for c in &self.cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (at, vals) in &self.rows {
            out.push_str(&format!("{:.3}", at.nanos() as f64 / 1e6));
            for v in vals {
                out.push_str(&format!(",{v:.3}"));
            }
            out.push('\n');
        }
        out
    }
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Renders slow-op span trees plus optional telemetry counters as Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`).
///
/// Layout: pid 1 hosts one track per slow op (worst first); pid 0 hosts one
/// counter track per time-series column. When `shard_of_osd` is given
/// (`shard_of_osd[osd]` = the shard/domain that executed OSD `osd`), pid 2
/// hosts one track per shard listing its OSDs, and every OSD-track span
/// carries a `"shard"` arg. Output is deterministic: ops and spans are
/// emitted in recorder order, counters in column order, shards ascending.
pub fn chrome_trace_json(
    slow: &[SlowOp],
    series: Option<&TimeSeries>,
    shard_of_osd: Option<&[u32]>,
) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"rablock slow ops\"}}"
            .to_string(),
    );
    ev.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"rablock telemetry\"}}"
            .to_string(),
    );
    if let Some(shards) = shard_of_osd {
        ev.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"rablock shards\"}}"
                .to_string(),
        );
        let mut by_shard: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (osd, &shard) in shards.iter().enumerate() {
            by_shard.entry(shard).or_default().push(osd as u32);
        }
        for (shard, osds) in &by_shard {
            let list: Vec<String> = osds.iter().map(|o| format!("osd{o}")).collect();
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{shard},\
                 \"args\":{{\"name\":\"shard {shard}: {}\"}}}}",
                list.join(" "),
            ));
        }
    }
    for (rank, op) in slow.iter().enumerate() {
        let tid = rank + 1;
        let kind = if op.is_write { "write" } else { "read" };
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"#{rank} {kind} c{}op{} {}us\"}}}}",
            op.id.conn(),
            op.id.op(),
            us(op.total.as_nanos()),
        ));
        // A root span covering the whole op, then every recorded child span.
        ev.push(format!(
            "{{\"name\":\"{kind} c{}op{}\",\"cat\":\"op\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"retries\":{}}}}}",
            op.id.conn(),
            op.id.op(),
            us(op.issued.nanos()),
            us(op.total.as_nanos()),
            op.retries,
        ));
        for s in &op.spans {
            let (track_kind, track_id) = match s.track {
                Track::Client(c) => ("client", c),
                Track::Osd(o) => ("osd", o),
            };
            let shard_arg = match (s.track, shard_of_osd) {
                (Track::Osd(o), Some(shards)) => shards
                    .get(o as usize)
                    .map(|s| format!(",\"shard\":{s}"))
                    .unwrap_or_default(),
                _ => String::new(),
            };
            ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"{track_kind}\":{track_id}{shard_arg}}}}}",
                s.name,
                s.comp.name(),
                us(s.start.nanos()),
                us(s.dur.as_nanos()),
            ));
        }
    }
    if let Some(ts) = series {
        for (at, vals) in ts.rows() {
            for (col, v) in ts.cols().iter().zip(vals) {
                ev.push(format!(
                    "{{\"name\":\"{col}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                     \"tid\":0,\"args\":{{\"value\":{v:.3}}}}}",
                    us(at.nanos()),
                ));
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    #[test]
    fn trace_id_round_trips() {
        let id = TraceId::from_conn_op(13, 0xABCDEF);
        assert_eq!(id.conn(), 13);
        assert_eq!(id.op(), 0xABCDEF);
    }

    #[test]
    fn finish_folds_components_and_residual() {
        let mut r = Recorder::new(4);
        let id = TraceId::from_conn_op(0, 1);
        r.begin(id, true, ms(1));
        r.span(
            id,
            "rp.primary",
            Track::Osd(0),
            ms(1),
            SimDuration::millis(2),
            Component::Service,
        );
        r.add(id, Component::Nvm, 500_000);
        let fin = r.finish(id, ms(11)).expect("open op");
        assert_eq!(fin.total, SimDuration::millis(10));
        let rep = r.report();
        assert_eq!(rep.ops, 1);
        let by = |c: Component| rep.components[c.idx()].2;
        assert_eq!(by(Component::Service), 2_000_000);
        assert_eq!(by(Component::Nvm), 500_000);
        // Residual: 10ms - 2ms - 0.5ms = 7.5ms in Other.
        assert_eq!(by(Component::Other), 7_500_000);
    }

    #[test]
    fn slow_ring_keeps_worst_n() {
        let mut r = Recorder::new(2);
        for i in 0..5u64 {
            let id = TraceId::from_conn_op(0, i);
            r.begin(id, true, ms(0));
            r.finish(id, ms(i + 1)).unwrap();
        }
        let rep = r.report();
        assert_eq!(rep.slow_ops.len(), 2);
        // Worst first: 5ms then 4ms.
        assert_eq!(rep.slow_ops[0].total, SimDuration::millis(5));
        assert_eq!(rep.slow_ops[1].total, SimDuration::millis(4));
    }

    #[test]
    fn dominant_span_is_longest() {
        let mut r = Recorder::new(1);
        let id = TraceId::from_conn_op(1, 7);
        r.begin(id, false, ms(0));
        r.span(
            id,
            "queue.rp",
            Track::Osd(2),
            ms(0),
            SimDuration::micros(5),
            Component::Queue,
        );
        r.span(
            id,
            "device",
            Track::Osd(2),
            ms(0),
            SimDuration::micros(50),
            Component::Device,
        );
        r.finish(id, ms(1)).unwrap();
        let rep = r.report();
        let dom = rep.slow_ops[0].dominant_span().unwrap();
        assert_eq!(dom.name, "device");
        assert!(matches!(dom.track, Track::Osd(2)));
    }

    #[test]
    fn lat_summary_matches_reference_convention() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = LatSummary::from_samples(&samples);
        assert_eq!(s.mean.as_nanos(), 500);
        assert_eq!(s.p50.as_nanos(), 501); // round((999)*0.5)=500 → samples[500]
        assert_eq!(s.p99.as_nanos(), 990);
        assert_eq!(s.p999.as_nanos(), 999);
        assert_eq!(LatSummary::from_samples(&[]), LatSummary::ZERO);
    }

    #[test]
    fn chrome_export_is_deterministic_and_parses_shape() {
        let mut r = Recorder::new(2);
        let id = TraceId::from_conn_op(3, 9);
        r.begin(id, true, ms(2));
        r.span(
            id,
            "net.repop",
            Track::Osd(1),
            ms(2),
            SimDuration::micros(30),
            Component::Network,
        );
        r.finish(id, ms(4)).unwrap();
        let mut ts = TimeSeries::new(vec!["iops_w"]);
        ts.push(ms(1), vec![123.0]);
        // OSDs 0-1 on shard 1, OSD 2 on shard 2.
        let shards = [1u32, 1, 2];
        let a = chrome_trace_json(&r.report().slow_ops, Some(&ts), Some(&shards));
        let b = chrome_trace_json(&r.report().slow_ops, Some(&ts), Some(&shards));
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("net.repop"));
        assert!(a.contains("iops_w"));
        // Shard topology: the span on OSD 1 is tagged with its shard, and
        // the shard process lists its members.
        assert!(a.contains("\"osd\":1,\"shard\":1"));
        assert!(a.contains("rablock shards"));
        assert!(a.contains("shard 1: osd0 osd1"));
        assert!(a.contains("shard 2: osd2"));
        // Balanced braces — cheap well-formedness check without a JSON dep.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
        // Without a shard map the export stays shard-free.
        let plain = chrome_trace_json(&r.report().slow_ops, Some(&ts), None);
        assert!(!plain.contains("shard"));
    }

    #[test]
    fn timeseries_csv_has_header_and_rows() {
        let mut ts = TimeSeries::new(vec!["a", "b"]);
        ts.push(ms(1), vec![1.0, 2.5]);
        ts.push(ms(2), vec![3.0, 4.0]);
        let csv = ts.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_ms,a,b"));
        assert_eq!(lines.next(), Some("1.000,1.000,2.500"));
        assert_eq!(lines.next(), Some("2.000,3.000,4.000"));
    }
}
