//! Storage-device timing models.
//!
//! A simulated device is a bank of `ways` internal servers (flash channels /
//! NVM banks). Each I/O occupies the earliest-free way for a service time
//! derived from the device profile: a fixed per-command latency plus a
//! size-proportional transfer term. This reproduces the two envelopes the
//! paper relies on: small-random IOPS saturating at `ways / service_time`,
//! and streaming bandwidth saturating at `bytes_per_sec`.
//!
//! Profiles for the paper's hardware (Samsung PM1725a in FOB and steady
//! state, and a ramdisk-emulated NVM) are provided as constructors.

use crate::time::{SimDuration, SimTime};

/// Direction of an I/O request.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum IoKind {
    /// A read command.
    Read,
    /// A write command.
    Write,
    /// A flush / barrier; occupies a way for the write base latency.
    Flush,
}

/// One I/O request submitted to a simulated device.
#[derive(Copy, Clone, Debug)]
pub struct IoRequest {
    /// Direction.
    pub kind: IoKind,
    /// Transfer length in bytes (0 for flushes).
    pub len: u64,
}

impl IoRequest {
    /// A read of `len` bytes.
    pub fn read(len: u64) -> Self {
        IoRequest {
            kind: IoKind::Read,
            len,
        }
    }
    /// A write of `len` bytes.
    pub fn write(len: u64) -> Self {
        IoRequest {
            kind: IoKind::Write,
            len,
        }
    }
    /// A flush barrier.
    pub fn flush() -> Self {
        IoRequest {
            kind: IoKind::Flush,
            len: 0,
        }
    }
}

/// SSD wear state; fresh-out-of-box devices are faster than steady-state ones
/// (paper §III-A: 330K vs 160K 4 KiB random-write IOPS).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SsdState {
    /// Fresh out of box / transition state.
    FreshOutOfBox,
    /// Steady state after sustained random writes.
    Steady,
}

/// Timing profile of a device.
#[derive(Copy, Clone, Debug)]
pub struct DeviceProfile {
    /// Internal parallelism (number of concurrent commands the device
    /// services at full speed).
    pub ways: usize,
    /// Fixed command overhead for reads.
    pub read_base: SimDuration,
    /// Fixed command overhead for writes.
    pub write_base: SimDuration,
    /// Aggregate read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Aggregate write bandwidth in bytes/second.
    pub write_bw: f64,
}

impl DeviceProfile {
    /// Samsung PM1725a-like NVMe SSD.
    ///
    /// Calibration targets from the paper (§III-A, §V-D): 4 KiB random write
    /// ≈330 K IOPS FOB / ≈160 K steady; ≈750 K 4 KiB random read IOPS;
    /// ≈3 GB/s streaming read, ≈2 GB/s streaming write.
    pub fn nvme_pm1725a(state: SsdState) -> Self {
        // Per-way service = base + len*ways/bw, so a 4 KiB write carries a
        // 16.4 µs transfer term at 2 GB/s across 8 ways.
        let write_base = match state {
            // 8 ways / (7.6+16.4) µs ≈ 333 K IOPS.
            SsdState::FreshOutOfBox => SimDuration::nanos(7_600),
            // 8 ways / (33.6+16.4) µs ≈ 160 K IOPS.
            SsdState::Steady => SimDuration::nanos(33_600),
        };
        DeviceProfile {
            ways: 8,
            // 8 ways / (0.6+10.9) µs ≈ 695 K 4 KiB read IOPS; 3 GB/s streaming.
            read_base: SimDuration::nanos(600),
            write_base,
            read_bw: 3.0e9,
            write_bw: 2.0e9,
        }
    }

    /// Ramdisk-emulated NVM (paper §V-A uses an 8 GB ramdisk per node).
    /// Sub-microsecond persistence; bandwidth far above any workload here.
    pub fn ramdisk_nvm() -> Self {
        DeviceProfile {
            ways: 16,
            read_base: SimDuration::nanos(200),
            write_base: SimDuration::nanos(350),
            read_bw: 20.0e9,
            write_bw: 16.0e9,
        }
    }

    /// Service time for one request on one way.
    pub fn service(&self, req: IoRequest) -> SimDuration {
        let (base, bw) = match req.kind {
            IoKind::Read => (self.read_base, self.read_bw),
            IoKind::Write => (self.write_base, self.write_bw),
            IoKind::Flush => (self.write_base, self.write_bw),
        };
        // Per-way share of aggregate bandwidth: `ways` transfers proceed in
        // parallel and together saturate `bw`.
        let transfer_s = req.len as f64 * self.ways as f64 / bw;
        base + SimDuration::from_secs_f64(transfer_s)
    }
}

/// Cumulative counters of traffic through a simulated device.
#[derive(Copy, Clone, Debug, Default)]
pub struct DeviceStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Flush commands completed.
    pub flushes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Sum of queue+service latency over all commands, in nanoseconds.
    pub total_latency_ns: u64,
}

impl DeviceStats {
    /// Mean device latency over all commands.
    pub fn mean_latency(&self) -> SimDuration {
        let n = self.reads + self.writes + self.flushes;
        SimDuration::nanos(self.total_latency_ns.checked_div(n).unwrap_or(0))
    }
}

/// A simulated device instance: profile + per-way occupancy.
#[derive(Debug, Clone)]
pub struct Device {
    profile: DeviceProfile,
    /// `ways[i]` is the time at which internal server `i` becomes free.
    ways: Vec<SimTime>,
    stats: DeviceStats,
    name: String,
    /// Service-time scale factor; > 1.0 models a gray (slow-but-alive)
    /// device, 1.0 is healthy.
    service_multiplier: f64,
}

impl Device {
    /// Creates a device with the given profile.
    pub fn new(name: impl Into<String>, profile: DeviceProfile) -> Self {
        Device {
            ways: vec![SimTime::ZERO; profile.ways],
            profile,
            stats: DeviceStats::default(),
            name: name.into(),
            service_multiplier: 1.0,
        }
    }

    /// Device name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device's timing profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current service-time multiplier (1.0 when healthy).
    pub fn service_multiplier(&self) -> f64 {
        self.service_multiplier
    }

    /// Scales every subsequent service time by `multiplier`.
    ///
    /// Used by fault injection to model gray failures: the device keeps
    /// completing I/O, only slower. `1.0` restores healthy timing.
    pub fn set_service_multiplier(&mut self, multiplier: f64) {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "service multiplier must be positive and finite, got {multiplier}"
        );
        self.service_multiplier = multiplier;
    }

    /// Submits a request at time `now`; returns the completion time.
    ///
    /// The request occupies the earliest-free way, queueing behind earlier
    /// commands if all ways are busy.
    pub fn submit(&mut self, now: SimTime, req: IoRequest) -> SimTime {
        let (idx, &free_at) = self
            .ways
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("device has at least one way");
        let start = now.max(free_at);
        let svc = self.profile.service(req);
        let svc = if self.service_multiplier == 1.0 {
            svc
        } else {
            SimDuration::nanos((svc.as_nanos() as f64 * self.service_multiplier) as u64)
        };
        let done = start + svc;
        self.ways[idx] = done;
        match req.kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += req.len;
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += req.len;
            }
            IoKind::Flush => self.stats.flushes += 1,
        }
        self.stats.total_latency_ns += done.duration_since(now).as_nanos();
        done
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets traffic counters (e.g. after warm-up) without clearing way
    /// occupancy.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_4k_write_iops_near_160k() {
        let mut dev = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        // Saturate: submit 16k writes back-to-back at t=0 and measure completion rate.
        let mut last = SimTime::ZERO;
        let n = 16_000u64;
        for _ in 0..n {
            last = dev.submit(SimTime::ZERO, IoRequest::write(4096));
        }
        let iops = n as f64 / last.as_secs_f64();
        assert!((140_000.0..180_000.0).contains(&iops), "steady iops {iops}");
    }

    #[test]
    fn fob_faster_than_steady() {
        let mut fob = Device::new("f", DeviceProfile::nvme_pm1725a(SsdState::FreshOutOfBox));
        let mut st = Device::new("s", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        let mut tf = SimTime::ZERO;
        let mut ts = SimTime::ZERO;
        for _ in 0..1000 {
            tf = fob.submit(SimTime::ZERO, IoRequest::write(4096));
            ts = st.submit(SimTime::ZERO, IoRequest::write(4096));
        }
        assert!(tf < ts);
    }

    #[test]
    fn streaming_write_bandwidth_near_2gbps() {
        let mut dev = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        let chunk = 128 * 1024u64;
        let n = 4_000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = dev.submit(SimTime::ZERO, IoRequest::write(chunk));
        }
        let bw = (n * chunk) as f64 / last.as_secs_f64();
        assert!((1.6e9..2.4e9).contains(&bw), "write bw {bw}");
    }

    #[test]
    fn unloaded_latency_is_service_time() {
        let mut dev = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        let t = dev.submit(SimTime::ZERO, IoRequest::read(4096));
        let svc = dev.profile().service(IoRequest::read(4096));
        assert_eq!(t, SimTime::ZERO + svc);
    }

    #[test]
    fn gray_multiplier_slows_service_and_restores() {
        let mut dev = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        let healthy = dev.submit(SimTime::ZERO, IoRequest::read(4096));
        let mut gray = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        gray.set_service_multiplier(10.0);
        let slow = gray.submit(SimTime::ZERO, IoRequest::read(4096));
        assert!(
            slow.duration_since(SimTime::ZERO).as_nanos()
                >= 9 * healthy.duration_since(SimTime::ZERO).as_nanos(),
            "gray device should be ~10x slower: {healthy:?} vs {slow:?}"
        );
        gray.set_service_multiplier(1.0);
        let mut fresh = Device::new("ssd", DeviceProfile::nvme_pm1725a(SsdState::Steady));
        let recovered = gray.submit(slow, IoRequest::read(4096));
        let expect = fresh.submit(SimTime::ZERO, IoRequest::read(4096));
        assert_eq!(
            recovered.duration_since(slow),
            expect.duration_since(SimTime::ZERO),
            "restored multiplier returns to healthy service time"
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut dev = Device::new("ssd", DeviceProfile::ramdisk_nvm());
        dev.submit(SimTime::ZERO, IoRequest::write(100));
        dev.submit(SimTime::ZERO, IoRequest::read(50));
        dev.submit(SimTime::ZERO, IoRequest::flush());
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert_eq!((s.bytes_read, s.bytes_written), (50, 100));
        dev.reset_stats();
        assert_eq!(dev.stats().writes, 0);
    }
}
