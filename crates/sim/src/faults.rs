//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a declarative schedule of faults for one simulation
//! run: probabilistic per-link message faults (drop, duplication, reordering
//! via randomized extra delay, fixed delay spikes), node-pair partitions,
//! process crash/restart schedules with optional torn-tail log corruption,
//! and gray-failure windows that multiply a device's service time without
//! killing it.
//!
//! The plan itself holds no randomness: probabilistic outcomes are drawn at
//! query time from the caller's [`SimRng`], so the same seed always replays
//! the same fault history. The plan speaks only in simulator-level indices
//! (link index, node index, process index, [`DeviceId`]) — what those map to
//! (OSDs, monitors, clients) is the driver's business, which keeps this
//! module free of cluster-layer dependencies.
//!
//! Two consumption styles:
//!
//! - **Timeline faults** (crashes, restarts, gray windows) are enumerated up
//!   front via [`FaultPlan::timeline`] and scheduled as simulation events by
//!   the driver.
//! - **Message faults** (drops, dups, delays, partitions) are queried at
//!   each send site via [`FaultPlan::message_fate`].

use crate::engine::DeviceId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A window of probabilistic faults on one link (or all links).
#[derive(Clone, Debug)]
pub struct LinkFault {
    /// Link index the fault applies to; `None` means every link.
    pub link: Option<usize>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice (the duplicate follows the
    /// original after a short randomized gap).
    pub dup_p: f64,
    /// Probability a message is delayed by a uniform random extra delay in
    /// `(0, reorder_max]`, allowing it to land after later sends (reordering).
    pub reorder_p: f64,
    /// Maximum extra delay drawn for a reordered message.
    pub reorder_max: SimDuration,
    /// Probability of a fixed latency spike of `spike`.
    pub spike_p: f64,
    /// Extra delay added on a latency spike.
    pub spike: SimDuration,
}

impl LinkFault {
    fn active(&self, link: usize, now: SimTime) -> bool {
        self.link.is_none_or(|l| l == link) && self.from <= now && now < self.until
    }
}

/// A bidirectional network partition between two nodes for a time window.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// One endpoint (node index).
    pub a: usize,
    /// Other endpoint (node index).
    pub b: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Partition {
    fn severs(&self, x: usize, y: usize, now: SimTime) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && self.from <= now && now < self.until
    }
}

/// A process crash, optionally followed by a restart.
#[derive(Clone, Copy, Debug)]
pub struct CrashSchedule {
    /// Index of the process (OSD) to kill.
    pub process: usize,
    /// When the crash happens.
    pub at: SimTime,
    /// When the process comes back, if ever.
    pub restart_at: Option<SimTime>,
    /// Whether the tail of the process's NVM log is torn (half-written) at
    /// crash time. The driver applies the corruption with its storage-layer
    /// crash model; recovery must detect and truncate the torn record.
    pub torn_tail: bool,
}

/// Which durable medium a bit-rot event damages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotMedia {
    /// Committed object data blocks on the backing object store.
    CosData,
    /// Records queued in the process's NVM operation log. The in-memory
    /// mirror stays clean, so the damage is latent until crash recovery
    /// replays the log from the device.
    NvmLog,
}

/// A scheduled silent-corruption event: flip `flips` bits in one process's
/// durable state without the process noticing. Models media bit rot, firmware
/// bugs, and cosmic-ray upsets — the fault class scrub and read-path
/// verification exist to catch.
#[derive(Clone, Copy, Debug)]
pub struct BitRotSchedule {
    /// Index of the process (OSD) whose durable state rots.
    pub process: usize,
    /// When the corruption lands.
    pub at: SimTime,
    /// Lower bound (inclusive) of the raw object-id range eligible to rot.
    pub object_lo: u64,
    /// Upper bound (exclusive) of the raw object-id range eligible to rot.
    pub object_hi: u64,
    /// How many independent single-bit flips to apply.
    pub flips: u32,
    /// Which medium the flips land on.
    pub media: RotMedia,
}

/// A gray-failure window: the device stays up but every service time is
/// multiplied by `multiplier` for the duration.
#[derive(Clone, Copy, Debug)]
pub struct GrayWindow {
    /// The affected device.
    pub device: DeviceId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); healthy timing resumes here.
    pub until: SimTime,
    /// Service-time scale factor (e.g. `50.0` for a device 50x slower).
    pub multiplier: f64,
}

/// One timeline entry produced by [`FaultPlan::timeline`]: a scheduled,
/// non-probabilistic fault the driver turns into a simulation event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Kill process `process`; if `torn_tail`, its NVM log tail is corrupted.
    Crash {
        /// Index of the process to kill.
        process: usize,
        /// Whether the NVM log tail is torn at crash time.
        torn_tail: bool,
    },
    /// Bring process `process` back up with its durable state.
    Restart {
        /// Index of the process to restart.
        process: usize,
    },
    /// Set `device`'s service-time multiplier to `multiplier`.
    GraySet {
        /// The affected device.
        device: DeviceId,
        /// New service-time multiplier (1.0 = healthy).
        multiplier: f64,
    },
    /// Silently flip `flips` bits in `process`'s durable state, restricted
    /// to objects whose raw id falls in `[object_lo, object_hi)`.
    BitRot {
        /// Index of the process whose durable state rots.
        process: usize,
        /// Lower bound (inclusive) of the eligible raw object-id range.
        object_lo: u64,
        /// Upper bound (exclusive) of the eligible raw object-id range.
        object_hi: u64,
        /// Number of independent single-bit flips.
        flips: u32,
        /// Which medium the flips land on.
        media: RotMedia,
    },
}

/// The fate of one message, decided by [`FaultPlan::message_fate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageFate {
    /// The message is silently dropped (never delivered).
    pub dropped: bool,
    /// A duplicate copy is delivered `dup_gap` after the original.
    pub duplicated: bool,
    /// Extra delay added to the (original) delivery.
    pub extra_delay: SimDuration,
    /// Gap between original and duplicate delivery when `duplicated`.
    pub dup_gap: SimDuration,
}

impl MessageFate {
    /// A clean delivery: not dropped, not duplicated, no extra delay.
    pub fn clean() -> Self {
        MessageFate {
            dropped: false,
            duplicated: false,
            extra_delay: SimDuration::ZERO,
            dup_gap: SimDuration::ZERO,
        }
    }
}

/// A declarative, seed-reproducible schedule of faults for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probabilistic per-link fault windows.
    pub link_faults: Vec<LinkFault>,
    /// Node-pair partitions.
    pub partitions: Vec<Partition>,
    /// Crash (and restart) schedules.
    pub crashes: Vec<CrashSchedule>,
    /// Gray-failure windows.
    pub gray_windows: Vec<GrayWindow>,
    /// Scheduled silent-corruption events.
    pub bit_rot: Vec<BitRotSchedule>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.gray_windows.is_empty()
            && self.bit_rot.is_empty()
    }

    /// Adds a probabilistic link-fault window.
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        assert!(
            (0.0..=1.0).contains(&fault.drop_p)
                && (0.0..=1.0).contains(&fault.dup_p)
                && (0.0..=1.0).contains(&fault.reorder_p)
                && (0.0..=1.0).contains(&fault.spike_p),
            "link fault probabilities must be in [0, 1]"
        );
        self.link_faults.push(fault);
        self
    }

    /// Adds a node-pair partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Adds a crash (and optional restart) schedule.
    pub fn with_crash(mut self, crash: CrashSchedule) -> Self {
        if let Some(r) = crash.restart_at {
            assert!(r > crash.at, "restart must come after the crash");
        }
        self.crashes.push(crash);
        self
    }

    /// Adds a flapping storm: `cycles` crash/restart pairs of one process,
    /// the first crash at `start`, each cycle `period` long with the process
    /// down for `downtime` of it. Models an OSD bouncing on a bad power
    /// rail or OOM loop — the storm the monitor's flap dampening exists for.
    pub fn with_flapping(
        mut self,
        process: usize,
        start: SimTime,
        cycles: usize,
        period: SimDuration,
        downtime: SimDuration,
    ) -> Self {
        assert!(cycles > 0, "a flap storm needs at least one cycle");
        assert!(
            downtime < period,
            "downtime must leave time up within a cycle"
        );
        for c in 0..cycles {
            let at = start + period * c as u64;
            self = self.with_crash(CrashSchedule {
                process,
                at,
                restart_at: Some(at + downtime),
                torn_tail: false,
            });
        }
        self
    }

    /// Adds a rolling upgrade: each listed process is crashed and restarted
    /// in turn, `stagger` apart, down for `downtime`. With `stagger >=
    /// downtime` at most one process is down at a time — the classic
    /// one-failure-domain-at-a-time maintenance walk.
    pub fn with_rolling_upgrade(
        mut self,
        processes: impl IntoIterator<Item = usize>,
        start: SimTime,
        downtime: SimDuration,
        stagger: SimDuration,
    ) -> Self {
        for (i, process) in processes.into_iter().enumerate() {
            let at = start + stagger * i as u64;
            self = self.with_crash(CrashSchedule {
                process,
                at,
                restart_at: Some(at + downtime),
                torn_tail: false,
            });
        }
        self
    }

    /// Adds a scheduled bit-rot event.
    pub fn with_bit_rot(mut self, rot: BitRotSchedule) -> Self {
        assert!(
            rot.object_lo < rot.object_hi,
            "bit-rot object range must be non-empty"
        );
        assert!(rot.flips > 0, "bit rot must flip at least one bit");
        self.bit_rot.push(rot);
        self
    }

    /// Adds a gray-failure window.
    pub fn with_gray_window(mut self, window: GrayWindow) -> Self {
        assert!(
            window.multiplier.is_finite() && window.multiplier > 0.0,
            "gray multiplier must be positive and finite"
        );
        assert!(window.from < window.until, "gray window must be non-empty");
        self.gray_windows.push(window);
        self
    }

    /// True when the link between node `src` and node `dst` is severed by a
    /// partition at `now`.
    pub fn partitioned(&self, src: usize, dst: usize, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, now))
    }

    /// Decides the fate of one message sent at `now` over `link` from node
    /// `src` to node `dst`.
    ///
    /// Probabilistic outcomes are drawn from `rng`; given the same plan, the
    /// same query sequence and the same seed, every run replays identically.
    /// A message crossing an active partition is always dropped (no draw).
    pub fn message_fate(
        &self,
        link: usize,
        src: usize,
        dst: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> MessageFate {
        if self.partitioned(src, dst, now) {
            return MessageFate {
                dropped: true,
                ..MessageFate::clean()
            };
        }
        let mut fate = MessageFate::clean();
        for f in self.link_faults.iter().filter(|f| f.active(link, now)) {
            if f.drop_p > 0.0 && rng.chance(f.drop_p) {
                return MessageFate {
                    dropped: true,
                    ..MessageFate::clean()
                };
            }
            if f.dup_p > 0.0 && rng.chance(f.dup_p) {
                fate.duplicated = true;
                // Short randomized gap so the duplicate lands strictly after
                // (and usually close behind) the original.
                fate.dup_gap +=
                    SimDuration::nanos(1 + rng.below(f.reorder_max.as_nanos().max(10_000)));
            }
            if f.reorder_p > 0.0 && rng.chance(f.reorder_p) {
                let max = f.reorder_max.as_nanos().max(1);
                fate.extra_delay += SimDuration::nanos(1 + rng.below(max));
            }
            if f.spike_p > 0.0 && rng.chance(f.spike_p) {
                fate.extra_delay += f.spike;
            }
        }
        fate
    }

    /// The device service-time multiplier in effect at `now` (product of all
    /// active gray windows; `1.0` when healthy).
    pub fn device_multiplier(&self, device: DeviceId, now: SimTime) -> f64 {
        self.gray_windows
            .iter()
            .filter(|w| w.device == device && w.from <= now && now < w.until)
            .map(|w| w.multiplier)
            .product()
    }

    /// Enumerates every scheduled (non-probabilistic) fault as a
    /// time-ordered list the driver can convert into simulation events:
    /// crashes, restarts, and gray-window edges.
    pub fn timeline(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut out = Vec::new();
        for c in &self.crashes {
            out.push((
                c.at,
                FaultEvent::Crash {
                    process: c.process,
                    torn_tail: c.torn_tail,
                },
            ));
            if let Some(r) = c.restart_at {
                out.push((r, FaultEvent::Restart { process: c.process }));
            }
        }
        for w in &self.gray_windows {
            out.push((
                w.from,
                FaultEvent::GraySet {
                    device: w.device,
                    multiplier: w.multiplier,
                },
            ));
            out.push((
                w.until,
                FaultEvent::GraySet {
                    device: w.device,
                    multiplier: 1.0,
                },
            ));
        }
        for r in &self.bit_rot {
            out.push((
                r.at,
                FaultEvent::BitRot {
                    process: r.process,
                    object_lo: r.object_lo,
                    object_hi: r.object_hi,
                    flips: r.flips,
                    media: r.media,
                },
            ));
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    #[test]
    fn empty_plan_is_clean() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut rng = SimRng::seed(1);
        let fate = plan.message_fate(0, 0, 1, ms(5), &mut rng);
        assert_eq!(fate, MessageFate::clean());
        assert_eq!(plan.device_multiplier(0, ms(5)), 1.0);
        assert!(plan.timeline().is_empty());
    }

    #[test]
    fn partition_drops_both_directions_within_window() {
        let plan = FaultPlan::none().with_partition(Partition {
            a: 0,
            b: 2,
            from: ms(10),
            until: ms(20),
        });
        let mut rng = SimRng::seed(2);
        assert!(plan.message_fate(0, 0, 2, ms(15), &mut rng).dropped);
        assert!(plan.message_fate(0, 2, 0, ms(15), &mut rng).dropped);
        // Outside the window and for unrelated pairs: clean.
        assert!(!plan.message_fate(0, 0, 2, ms(25), &mut rng).dropped);
        assert!(!plan.message_fate(0, 0, 1, ms(15), &mut rng).dropped);
    }

    #[test]
    fn drop_probability_roughly_respected() {
        let plan = FaultPlan::none().with_link_fault(LinkFault {
            link: Some(1),
            from: SimTime::ZERO,
            until: ms(1000),
            drop_p: 0.3,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_max: SimDuration::ZERO,
            spike_p: 0.0,
            spike: SimDuration::ZERO,
        });
        let mut rng = SimRng::seed(3);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| plan.message_fate(1, 0, 1, ms(1), &mut rng).dropped)
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((0.27..0.33).contains(&frac), "drop fraction {frac}");
        // Other links unaffected.
        assert!(!plan.message_fate(0, 0, 1, ms(1), &mut rng).dropped);
    }

    #[test]
    fn duplication_and_reordering_produce_delays() {
        let plan = FaultPlan::none().with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(1000),
            drop_p: 0.0,
            dup_p: 1.0,
            reorder_p: 1.0,
            reorder_max: SimDuration::nanos(50_000),
            spike_p: 1.0,
            spike: SimDuration::nanos(200_000),
        });
        let mut rng = SimRng::seed(4);
        let fate = plan.message_fate(3, 0, 1, ms(1), &mut rng);
        assert!(!fate.dropped);
        assert!(fate.duplicated);
        assert!(fate.dup_gap > SimDuration::ZERO);
        // spike (200 µs) + reorder extra in (0, 50 µs].
        assert!(fate.extra_delay > SimDuration::nanos(200_000));
        assert!(fate.extra_delay <= SimDuration::nanos(250_000));
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let plan = FaultPlan::none().with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(1000),
            drop_p: 0.2,
            dup_p: 0.2,
            reorder_p: 0.2,
            reorder_max: SimDuration::nanos(30_000),
            spike_p: 0.2,
            spike: SimDuration::nanos(100_000),
        });
        let run = |seed| {
            let mut rng = SimRng::seed(seed);
            (0..256)
                .map(|i| plan.message_fate(i % 4, 0, 1, ms(1), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge somewhere");
    }

    #[test]
    fn gray_windows_multiply_and_expire() {
        let plan = FaultPlan::none()
            .with_gray_window(GrayWindow {
                device: 2,
                from: ms(10),
                until: ms(30),
                multiplier: 8.0,
            })
            .with_gray_window(GrayWindow {
                device: 2,
                from: ms(20),
                until: ms(40),
                multiplier: 2.0,
            });
        assert_eq!(plan.device_multiplier(2, ms(5)), 1.0);
        assert_eq!(plan.device_multiplier(2, ms(15)), 8.0);
        assert_eq!(plan.device_multiplier(2, ms(25)), 16.0);
        assert_eq!(plan.device_multiplier(2, ms(35)), 2.0);
        assert_eq!(plan.device_multiplier(2, ms(45)), 1.0);
        assert_eq!(plan.device_multiplier(0, ms(25)), 1.0);
    }

    #[test]
    fn timeline_orders_crash_restart_and_gray_edges() {
        let plan = FaultPlan::none()
            .with_crash(CrashSchedule {
                process: 1,
                at: ms(20),
                restart_at: Some(ms(60)),
                torn_tail: true,
            })
            .with_gray_window(GrayWindow {
                device: 0,
                from: ms(10),
                until: ms(50),
                multiplier: 4.0,
            });
        let tl = plan.timeline();
        assert_eq!(tl.len(), 4);
        assert_eq!(
            tl[0],
            (
                ms(10),
                FaultEvent::GraySet {
                    device: 0,
                    multiplier: 4.0
                }
            )
        );
        assert_eq!(
            tl[1],
            (
                ms(20),
                FaultEvent::Crash {
                    process: 1,
                    torn_tail: true
                }
            )
        );
        assert_eq!(
            tl[2],
            (
                ms(50),
                FaultEvent::GraySet {
                    device: 0,
                    multiplier: 1.0
                }
            )
        );
        assert_eq!(tl[3], (ms(60), FaultEvent::Restart { process: 1 }));
    }

    #[test]
    fn bit_rot_lands_on_the_timeline() {
        let plan = FaultPlan::none().with_bit_rot(BitRotSchedule {
            process: 2,
            at: ms(15),
            object_lo: 4,
            object_hi: 12,
            flips: 3,
            media: RotMedia::CosData,
        });
        assert!(!plan.is_empty());
        assert_eq!(
            plan.timeline(),
            vec![(
                ms(15),
                FaultEvent::BitRot {
                    process: 2,
                    object_lo: 4,
                    object_hi: 12,
                    flips: 3,
                    media: RotMedia::CosData,
                }
            )]
        );
    }

    #[test]
    #[should_panic(expected = "bit-rot object range must be non-empty")]
    fn empty_rot_range_rejected() {
        let _ = FaultPlan::none().with_bit_rot(BitRotSchedule {
            process: 0,
            at: ms(1),
            object_lo: 5,
            object_hi: 5,
            flips: 1,
            media: RotMedia::NvmLog,
        });
    }

    #[test]
    #[should_panic(expected = "restart must come after the crash")]
    fn restart_before_crash_rejected() {
        let _ = FaultPlan::none().with_crash(CrashSchedule {
            process: 0,
            at: ms(10),
            restart_at: Some(ms(5)),
            torn_tail: false,
        });
    }
}
