//! Model-based property tests: the LSM database against a BTreeMap.

use proptest::prelude::*;
use rablock_lsm::{Db, LsmOptions};
use rablock_storage::{CrashDisk, CrashPlan, MemDisk};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum DbOp {
    Put(u16, u8, u16),
    Delete(u16),
    Get(u16),
    Maintain,
}

fn ops() -> impl Strategy<Value = Vec<DbOp>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u8>(), 1u16..2048).prop_map(|(k, f, l)| DbOp::Put(k % 64, f, l)),
            any::<u16>().prop_map(|k| DbOp::Delete(k % 64)),
            any::<u16>().prop_map(|k| DbOp::Get(k % 64)),
            Just(DbOp::Maintain),
        ],
        1..120,
    )
}

fn key(k: u16) -> Vec<u8> {
    format!("k{k:05}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random puts/deletes/gets with interleaved maintenance always agree
    /// with a plain sorted map.
    #[test]
    fn db_matches_btreemap(script in ops()) {
        let mut db = Db::open(MemDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in script {
            match op {
                DbOp::Put(k, f, l) => {
                    let v = vec![f; l as usize];
                    db.apply(&[(key(k), Some(v.clone()))]).unwrap();
                    model.insert(key(k), v);
                }
                DbOp::Delete(k) => {
                    db.apply(&[(key(k), None)]).unwrap();
                    model.remove(&key(k));
                }
                DbOp::Get(k) => {
                    prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
                }
                DbOp::Maintain => {
                    if db.needs_maintenance() {
                        db.maintenance().unwrap();
                    }
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(db.get(k).unwrap(), Some(v.clone()));
        }
    }

    /// After any script and a full crash (all unflushed device writes
    /// lost), reopening recovers exactly the model state: the WAL covers
    /// everything acknowledged.
    #[test]
    fn db_crash_recovers_model(script in ops()) {
        let mut db = Db::open(CrashDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in script {
            match op {
                DbOp::Put(k, f, l) => {
                    let v = vec![f; l as usize];
                    db.apply(&[(key(k), Some(v.clone()))]).unwrap();
                    model.insert(key(k), v);
                }
                DbOp::Delete(k) => {
                    db.apply(&[(key(k), None)]).unwrap();
                    model.remove(&key(k));
                }
                DbOp::Get(_) => {}
                DbOp::Maintain => {
                    if db.needs_maintenance() {
                        db.maintenance().unwrap();
                    }
                }
            }
        }
        let mut dev = db.into_device();
        dev.crash_with(CrashPlan::lose_all());
        let mut db2 = Db::open(dev, LsmOptions::tiny()).unwrap();
        for k in 0..64u16 {
            prop_assert_eq!(db2.get(&key(k)).unwrap(), model.get(&key(k)).cloned(), "key {}", k);
        }
    }
}
