//! Write-ahead log over a fixed device region.
//!
//! Records are framed as `[len u32][crc u32][epoch u64][payload]`, with the
//! CRC covering epoch and payload. The *epoch* is the generation of the
//! memtable the record belongs to; it makes the log self-delimiting without
//! erase cycles: after the region is reset, stale tail records still carry
//! their old epoch, and recovery stops at the first record whose epoch
//! precedes the manifest's `base_epoch`.

use rablock_storage::{BlockDevice, StoreError};

use crate::util::{crc32, Cursor};

/// Frame header: length + CRC + epoch.
const HEADER_BYTES: u64 = 4 + 4 + 8;

/// The write-ahead log region manager.
///
/// Owns only positions — the device is borrowed per call so the embedding
/// [`Db`](crate::Db) can hold a single device for all components.
#[derive(Debug, Clone)]
pub struct Wal {
    region_off: u64,
    region_len: u64,
    /// Next append offset, relative to the region start.
    head: u64,
    /// All records with epoch >= `base_epoch` belong to the current cycle.
    pub base_epoch: u64,
    /// Epoch stamped on new appends (= active memtable generation).
    pub current_epoch: u64,
}

impl Wal {
    /// Creates a WAL manager over `[region_off, region_off+region_len)`.
    pub fn new(region_off: u64, region_len: u64, base_epoch: u64) -> Self {
        Wal {
            region_off,
            region_len,
            head: 0,
            base_epoch,
            current_epoch: base_epoch,
        }
    }

    /// Bytes already appended in this cycle.
    #[allow(dead_code)] // diagnostics API
    pub fn used(&self) -> u64 {
        self.head
    }

    /// Bytes still available in this cycle.
    #[allow(dead_code)] // diagnostics API
    pub fn available(&self) -> u64 {
        self.region_len - self.head
    }

    /// Appends one durable record with the current epoch.
    ///
    /// Returns the number of device bytes written.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if the region cannot hold the record; the
    /// caller must flush all memtables and [`Wal::reset`].
    pub fn append<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        payload: &[u8],
    ) -> Result<u64, StoreError> {
        let total = HEADER_BYTES + payload.len() as u64;
        if self.head + total > self.region_len {
            return Err(StoreError::NoSpace);
        }
        // Single buffer: frame + epoch + payload, with the CRC (over
        // epoch + payload) backpatched — avoids a second full-payload copy.
        let mut rec = Vec::with_capacity(total as usize);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&[0u8; 4]);
        rec.extend_from_slice(&self.current_epoch.to_le_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec[8..]);
        rec[4..8].copy_from_slice(&crc.to_le_bytes());
        dev.write_at(self.region_off + self.head, &rec)?;
        dev.flush()?;
        self.head += total;
        Ok(total)
    }

    /// Advances to the next epoch (called when the active memtable seals).
    pub fn advance_epoch(&mut self) {
        self.current_epoch += 1;
    }

    /// Resets the region after *all* logged data has been flushed to SSTs.
    /// Appends restart at offset zero under a fresh epoch.
    pub fn reset(&mut self) {
        self.head = 0;
        self.current_epoch += 1;
        self.base_epoch = self.current_epoch;
    }

    /// Scans the region and returns `(epoch, payload)` for every valid
    /// record of the current cycle, in append order.
    ///
    /// # Errors
    ///
    /// Only device errors propagate; malformed/stale records terminate the
    /// scan silently (they are the expected crash residue).
    pub fn scan<D: BlockDevice>(&self, dev: &mut D) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut raw = vec![0u8; self.region_len as usize];
        dev.read_at(self.region_off, &mut raw)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        loop {
            let mut cur = Cursor::new(&raw[pos..]);
            let Some(len) = cur.get_u32() else { break };
            let Some(stored_crc) = cur.get_u32() else {
                break;
            };
            let body_len = 8 + len as usize;
            if body_len > cur.remaining() {
                break;
            }
            let body_start = pos + cur.position();
            let body = &raw[body_start..body_start + body_len];
            if crc32(body) != stored_crc {
                break;
            }
            let epoch = u64::from_le_bytes(body[..8].try_into().expect("epoch bytes"));
            if epoch < self.base_epoch {
                break; // stale tail from a previous cycle
            }
            out.push((epoch, body[8..].to_vec()));
            pos = body_start + body_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::{CrashDisk, CrashPlan, MemDisk};

    #[test]
    fn append_then_scan_round_trips() {
        let mut dev = MemDisk::new(1 << 16);
        let mut wal = Wal::new(0, 1 << 16, 1);
        wal.append(&mut dev, b"first").unwrap();
        wal.append(&mut dev, b"second").unwrap();
        let recs = wal.scan(&mut dev).unwrap();
        assert_eq!(
            recs,
            vec![(1, b"first".to_vec()), (2 - 1, b"second".to_vec())]
        );
    }

    #[test]
    fn epoch_advances_with_seals() {
        let mut dev = MemDisk::new(1 << 16);
        let mut wal = Wal::new(0, 1 << 16, 5);
        wal.append(&mut dev, b"a").unwrap();
        wal.advance_epoch();
        wal.append(&mut dev, b"b").unwrap();
        let recs = wal.scan(&mut dev).unwrap();
        assert_eq!(recs, vec![(5, b"a".to_vec()), (6, b"b".to_vec())]);
    }

    #[test]
    fn stale_tail_ignored_after_reset() {
        let mut dev = MemDisk::new(1 << 16);
        let mut wal = Wal::new(0, 1 << 16, 1);
        wal.append(&mut dev, b"old-record-one").unwrap();
        wal.append(&mut dev, b"old-record-two").unwrap();
        wal.reset();
        wal.append(&mut dev, b"new").unwrap();
        let recs = wal.scan(&mut dev).unwrap();
        // The new record overwrote the start; the stale remainder of
        // "old-record-two" has an old epoch or bad crc and is dropped.
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], (2, b"new".to_vec()));
    }

    #[test]
    fn full_region_reports_no_space() {
        let mut dev = MemDisk::new(64);
        let mut wal = Wal::new(0, 64, 1);
        assert!(wal.append(&mut dev, &[0u8; 40]).is_ok());
        assert_eq!(wal.append(&mut dev, &[0u8; 40]), Err(StoreError::NoSpace));
    }

    #[test]
    fn torn_final_record_dropped_but_prefix_survives() {
        let mut dev = CrashDisk::new(1 << 16);
        let mut wal = Wal::new(0, 1 << 16, 1);
        wal.append(&mut dev, b"committed").unwrap();
        // Flush covers the first record (append() flushes), now tear the next.
        wal.append(&mut dev, b"torn-record-payload").unwrap();
        // Simulate the tear: last flushed... CrashDisk flushes on every
        // append here, so instead corrupt the second record's crc directly.
        let mut byte = [0u8; 1];
        dev.read_at(30, &mut byte).unwrap();
        dev.write_at(30, &[byte[0] ^ 0xFF]).unwrap();
        dev.flush().unwrap();
        dev.crash_with(CrashPlan::lose_all());
        let recs = wal.scan(&mut dev).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, b"committed");
    }
}
