//! Sorted-string-table files over the segment area.
//!
//! An SST is an immutable sorted run: data blocks of whole records, a block
//! index, and a CRC-protected footer. Files live on an ordered list of
//! fixed-size segments; logical file offsets are translated per segment, so
//! a file never needs contiguous device space.
//!
//! Format (logical offsets):
//!
//! ```text
//! [block 0][block 1]…[index block][footer]
//! block:   repeated records: u8 flag (0=put,1=del), key bytes, value bytes
//! index:   u32 count, then per block: first_key bytes, u64 offset, u32 len
//! footer:  u64 index_off, u32 index_len, u64 entries, u32 index_crc, u32 magic
//! ```

use rablock_storage::{BlockDevice, IoCategory, StoreError, TraceIo, TraceKind};

use crate::alloc::SegAlloc;
use crate::bloom::Bloom;
use crate::util::{crc32, put_bytes, put_u32, put_u64, Cursor};

const MAGIC: u32 = 0x5353_5442; // "SSTB"
/// index_off u64, index_len u32, bloom_len u32, entries u64, crc u32, magic u32.
const FOOTER_BYTES: u64 = 8 + 4 + 4 + 8 + 4 + 4;

/// One sparse-index entry: the first key of a data block and its extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// First key stored in the block.
    pub first_key: Vec<u8>,
    /// Logical file offset of the block.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u32,
}

/// Metadata of one SST, including its in-memory block index.
#[derive(Debug, Clone)]
pub struct Sst {
    /// Unique, monotonically assigned id (larger = newer).
    pub id: u64,
    /// Segments holding the file, in file order.
    pub segments: Vec<u32>,
    /// Logical file length in bytes.
    pub len: u64,
    /// Smallest key in the file.
    pub min_key: Vec<u8>,
    /// Largest key in the file.
    pub max_key: Vec<u8>,
    /// Number of records (tombstones included).
    pub entries: u64,
    /// Block index (always resident; reloaded from the footer on open).
    pub index: Vec<IndexEntry>,
    /// Per-file Bloom filter (reloaded from the footer on open).
    pub bloom: Bloom,
}

impl Sst {
    /// True if `key` could be inside this file's key range.
    pub fn covers(&self, key: &[u8]) -> bool {
        self.min_key.as_slice() <= key && key <= self.max_key.as_slice()
    }

    /// True if this file's range overlaps `[min, max]`.
    pub fn overlaps(&self, min: &[u8], max: &[u8]) -> bool {
        !(self.max_key.as_slice() < min || max < self.min_key.as_slice())
    }
}

/// Geometry needed to translate logical file offsets to device offsets.
#[derive(Debug, Clone, Copy)]
pub struct SegGeometry {
    /// Device offset where segment 0 starts.
    pub region_off: u64,
    /// Bytes per segment.
    pub segment_bytes: u64,
}

impl SegGeometry {
    fn device_offset(&self, segments: &[u32], logical: u64) -> u64 {
        let seg_idx = (logical / self.segment_bytes) as usize;
        let within = logical % self.segment_bytes;
        self.region_off + segments[seg_idx] as u64 * self.segment_bytes + within
    }

    /// Reads `len` logical bytes at `logical`, splitting at segment bounds.
    fn read_range<D: BlockDevice>(
        &self,
        dev: &mut D,
        segments: &[u32],
        logical: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        let mut out = vec![0u8; len as usize];
        let mut done = 0u64;
        while done < len {
            let pos = logical + done;
            let within = pos % self.segment_bytes;
            let chunk = (self.segment_bytes - within).min(len - done);
            let dev_off = self.device_offset(segments, pos);
            dev.read_at(dev_off, &mut out[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        Ok(out)
    }

    /// Writes `data` at logical offset `logical`, splitting at segment bounds.
    fn write_range<D: BlockDevice>(
        &self,
        dev: &mut D,
        segments: &[u32],
        logical: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let mut done = 0u64;
        let len = data.len() as u64;
        while done < len {
            let pos = logical + done;
            let within = pos % self.segment_bytes;
            let chunk = (self.segment_bytes - within).min(len - done);
            let dev_off = self.device_offset(segments, pos);
            dev.write_at(dev_off, &data[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        Ok(())
    }
}

/// Serializes sorted `(key, value-or-tombstone)` records into the on-disk
/// file image plus its index. Internal to the builder and tests.
fn encode_file(
    records: &[(Vec<u8>, Option<Vec<u8>>)],
    block_bytes: usize,
) -> (Vec<u8>, Vec<IndexEntry>, u64) {
    let mut file = Vec::new();
    let mut index = Vec::new();
    let mut block_start = 0usize;
    let mut block_first: Option<Vec<u8>> = None;
    let mut entries = 0u64;

    let close_block =
        |file: &mut Vec<u8>, start: usize, first: Option<Vec<u8>>, index: &mut Vec<IndexEntry>| {
            if let Some(first_key) = first {
                index.push(IndexEntry {
                    first_key,
                    offset: start as u64,
                    len: (file.len() - start) as u32,
                });
            }
        };

    for (key, value) in records {
        if block_first.is_none() {
            block_first = Some(key.clone());
            block_start = file.len();
        }
        match value {
            Some(v) => {
                file.push(0);
                put_bytes(&mut file, key);
                put_bytes(&mut file, v);
            }
            None => {
                file.push(1);
                put_bytes(&mut file, key);
            }
        }
        entries += 1;
        if file.len() - block_start >= block_bytes {
            close_block(&mut file, block_start, block_first.take(), &mut index);
        }
    }
    close_block(&mut file, block_start, block_first.take(), &mut index);
    (file, index, entries)
}

fn decode_block(block: &[u8]) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let mut out = Vec::new();
    let mut cur = Cursor::new(block);
    while cur.remaining() > 0 {
        let flag = {
            let b = cur.get_bytes_raw(1);
            match b {
                Some(s) => s[0],
                None => break,
            }
        };
        let Some(key) = cur.get_bytes() else { break };
        if flag == 0 {
            let Some(value) = cur.get_bytes() else { break };
            out.push((key.to_vec(), Some(value.to_vec())));
        } else {
            out.push((key.to_vec(), None));
        }
    }
    out
}

/// Builds and persists an SST from sorted records.
///
/// Allocates segments, writes data + index + footer, and flushes. The trace
/// receives one write per segment-sized chunk (category `category`).
///
/// # Errors
///
/// [`StoreError::NoSpace`] if the segment area cannot hold the file.
///
/// # Panics
///
/// Panics if `records` is empty or not sorted by key (caller bug).
#[allow(clippy::too_many_arguments)]
pub fn build_sst<D: BlockDevice>(
    dev: &mut D,
    alloc: &mut SegAlloc,
    geom: SegGeometry,
    id: u64,
    records: &[(Vec<u8>, Option<Vec<u8>>)],
    block_bytes: usize,
    category: IoCategory,
    trace: &mut Vec<TraceIo>,
) -> Result<Sst, StoreError> {
    assert!(!records.is_empty(), "building an empty SST");
    debug_assert!(
        records.windows(2).all(|w| w[0].0 < w[1].0),
        "records must be strictly sorted"
    );

    let (mut file, index, entries) = encode_file(records, block_bytes);
    let bloom = Bloom::build(records.iter().map(|(k, _)| k.as_slice()), records.len(), 10);

    // Index block + bloom block + footer.
    let index_off = file.len() as u64;
    let mut index_block = Vec::new();
    put_u32(&mut index_block, index.len() as u32);
    for e in &index {
        put_bytes(&mut index_block, &e.first_key);
        put_u64(&mut index_block, e.offset);
        put_u32(&mut index_block, e.len);
    }
    let bloom_block = bloom.encode();
    let mut meta = index_block.clone();
    meta.extend_from_slice(&bloom_block);
    let meta_crc = crc32(&meta);
    file.extend_from_slice(&meta);
    put_u64(&mut file, index_off);
    put_u32(&mut file, index_block.len() as u32);
    put_u32(&mut file, bloom_block.len() as u32);
    put_u64(&mut file, entries);
    put_u32(&mut file, meta_crc);
    put_u32(&mut file, MAGIC);

    let len = file.len() as u64;
    let nsegs = len.div_ceil(geom.segment_bytes);
    let mut segments = Vec::with_capacity(nsegs as usize);
    for _ in 0..nsegs {
        match alloc.alloc() {
            Ok(s) => segments.push(s),
            Err(e) => {
                for s in segments {
                    alloc.free(s);
                }
                return Err(e);
            }
        }
    }
    geom.write_range(dev, &segments, 0, &file)?;
    dev.flush()?;
    // Trace per segment-sized chunk so the device model sees realistic I/Os.
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(geom.segment_bytes);
        trace.push(TraceIo {
            kind: TraceKind::Write,
            bytes: chunk,
            category,
        });
        remaining -= chunk;
    }
    trace.push(TraceIo {
        kind: TraceKind::Flush,
        bytes: 0,
        category,
    });

    Ok(Sst {
        id,
        segments,
        len,
        min_key: records[0].0.clone(),
        max_key: records[records.len() - 1].0.clone(),
        entries,
        index,
        bloom,
    })
}

/// Point lookup in one SST. `Ok(None)` means "key not in this file";
/// `Ok(Some(None))` means "deleted here".
///
/// # Errors
///
/// Propagates device errors; a corrupt block yields [`StoreError::Corrupt`].
pub fn sst_get<D: BlockDevice>(
    dev: &mut D,
    geom: SegGeometry,
    sst: &Sst,
    key: &[u8],
    trace: &mut Vec<TraceIo>,
) -> Result<Option<Option<Vec<u8>>>, StoreError> {
    if !sst.covers(key) || !sst.bloom.may_contain(key) {
        return Ok(None);
    }
    // Last block whose first key <= key.
    let block_idx = match sst.index.partition_point(|e| e.first_key.as_slice() <= key) {
        0 => return Ok(None),
        n => n - 1,
    };
    let entry = &sst.index[block_idx];
    let block = geom.read_range(dev, &sst.segments, entry.offset, entry.len as u64)?;
    trace.push(TraceIo {
        kind: TraceKind::Read,
        bytes: entry.len as u64,
        category: IoCategory::Data,
    });
    for (k, v) in decode_block(&block) {
        if k == key {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

/// Reads every record of an SST in key order (compaction input).
///
/// # Errors
///
/// Propagates device errors.
#[allow(clippy::type_complexity)]
pub fn sst_scan<D: BlockDevice>(
    dev: &mut D,
    geom: SegGeometry,
    sst: &Sst,
    trace: &mut Vec<TraceIo>,
) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>, StoreError> {
    let data_len: u64 = sst.index.iter().map(|e| e.len as u64).sum();
    let raw = geom.read_range(dev, &sst.segments, 0, data_len)?;
    let mut remaining = data_len;
    while remaining > 0 {
        let chunk = remaining.min(geom.segment_bytes);
        trace.push(TraceIo {
            kind: TraceKind::Read,
            bytes: chunk,
            category: IoCategory::Compaction,
        });
        remaining -= chunk;
    }
    Ok(decode_block(&raw))
}

/// Reloads the block index of an SST whose footer is on disk (recovery).
///
/// # Errors
///
/// [`StoreError::Corrupt`] on bad magic or CRC mismatch.
pub fn load_index<D: BlockDevice>(
    dev: &mut D,
    geom: SegGeometry,
    sst: &mut Sst,
) -> Result<(), StoreError> {
    if sst.len < FOOTER_BYTES {
        return Err(StoreError::Corrupt(format!(
            "sst {} shorter than footer",
            sst.id
        )));
    }
    let footer = geom.read_range(dev, &sst.segments, sst.len - FOOTER_BYTES, FOOTER_BYTES)?;
    let mut cur = Cursor::new(&footer);
    let index_off = cur.get_u64().expect("footer sized");
    let index_len = cur.get_u32().expect("footer sized");
    let bloom_len = cur.get_u32().expect("footer sized");
    let entries = cur.get_u64().expect("footer sized");
    let stored_crc = cur.get_u32().expect("footer sized");
    let magic = cur.get_u32().expect("footer sized");
    if magic != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "sst {} bad magic {magic:#x}",
            sst.id
        )));
    }
    let meta = geom.read_range(
        dev,
        &sst.segments,
        index_off,
        (index_len + bloom_len) as u64,
    )?;
    if crc32(&meta) != stored_crc {
        return Err(StoreError::Corrupt(format!(
            "sst {} metadata crc mismatch",
            sst.id
        )));
    }
    let index_block = &meta[..index_len as usize];
    sst.bloom = Bloom::decode(&meta[index_len as usize..])
        .ok_or_else(|| StoreError::Corrupt(format!("sst {} malformed bloom filter", sst.id)))?;
    let mut cur = Cursor::new(index_block);
    let count = cur
        .get_u32()
        .ok_or_else(|| StoreError::Corrupt("truncated index".into()))?;
    let mut index = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let first_key = cur
            .get_bytes()
            .ok_or_else(|| StoreError::Corrupt("truncated index entry".into()))?
            .to_vec();
        let offset = cur
            .get_u64()
            .ok_or_else(|| StoreError::Corrupt("truncated index entry".into()))?;
        let len = cur
            .get_u32()
            .ok_or_else(|| StoreError::Corrupt("truncated index entry".into()))?;
        index.push(IndexEntry {
            first_key,
            offset,
            len,
        });
    }
    sst.entries = entries;
    sst.index = index;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::MemDisk;

    fn geom() -> SegGeometry {
        SegGeometry {
            region_off: 0,
            segment_bytes: 4096,
        }
    }

    fn records(n: u64) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let k = format!("key{i:06}").into_bytes();
                if i % 7 == 3 {
                    (k, None)
                } else {
                    (k, Some(format!("value-{i}").repeat(4).into_bytes()))
                }
            })
            .collect()
    }

    fn build(n: u64) -> (MemDisk, SegAlloc, Sst, Vec<TraceIo>) {
        let mut dev = MemDisk::new(1 << 22);
        let mut alloc = SegAlloc::new(1 << 10);
        let mut trace = Vec::new();
        let recs = records(n);
        let sst = build_sst(
            &mut dev,
            &mut alloc,
            geom(),
            1,
            &recs,
            512,
            IoCategory::MemtableFlush,
            &mut trace,
        )
        .unwrap();
        (dev, alloc, sst, trace)
    }

    #[test]
    fn build_then_get_every_key() {
        let (mut dev, _a, sst, _t) = build(200);
        let mut trace = Vec::new();
        for (k, v) in records(200) {
            let got = sst_get(&mut dev, geom(), &sst, &k, &mut trace).unwrap();
            assert_eq!(got, Some(v), "key {}", String::from_utf8_lossy(&k));
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let (mut dev, _a, sst, _t) = build(50);
        let mut trace = Vec::new();
        assert_eq!(
            sst_get(&mut dev, geom(), &sst, b"aaa", &mut trace).unwrap(),
            None
        );
        assert_eq!(
            sst_get(&mut dev, geom(), &sst, b"zzz", &mut trace).unwrap(),
            None
        );
        assert_eq!(
            sst_get(&mut dev, geom(), &sst, b"key000000x", &mut trace).unwrap(),
            None
        );
    }

    #[test]
    fn scan_returns_all_in_order() {
        let (mut dev, _a, sst, _t) = build(300);
        let mut trace = Vec::new();
        let all = sst_scan(&mut dev, geom(), &sst, &mut trace).unwrap();
        assert_eq!(all, records(300));
    }

    #[test]
    fn index_reload_matches_built_index() {
        let (mut dev, _a, sst, _t) = build(120);
        let mut reloaded = Sst {
            index: Vec::new(),
            entries: 0,
            ..sst.clone()
        };
        load_index(&mut dev, geom(), &mut reloaded).unwrap();
        assert_eq!(reloaded.index, sst.index);
        assert_eq!(reloaded.entries, sst.entries);
    }

    #[test]
    fn corrupt_footer_detected() {
        let (mut dev, _a, sst, _t) = build(10);
        // Smash the last byte (magic).
        let geom = geom();
        let dev_off = geom.device_offset(&sst.segments, sst.len - 1);
        dev.write_at(dev_off, &[0x00]).unwrap();
        let mut reloaded = Sst {
            index: Vec::new(),
            ..sst
        };
        assert!(matches!(
            load_index(&mut dev, geom, &mut reloaded),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn trace_reports_segment_sized_writes() {
        let (_dev, _a, sst, trace) = build(400);
        let written: u64 = trace
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::Write))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(written, sst.len);
        assert!(trace.iter().all(|t| t.bytes <= 4096));
    }

    #[test]
    fn allocation_failure_releases_segments() {
        let mut dev = MemDisk::new(1 << 20);
        let mut alloc = SegAlloc::new(2); // deliberately too small
        let mut trace = Vec::new();
        let recs = records(2000);
        let err = build_sst(
            &mut dev,
            &mut alloc,
            geom(),
            1,
            &recs,
            512,
            IoCategory::MemtableFlush,
            &mut trace,
        );
        assert_eq!(err.err(), Some(StoreError::NoSpace));
        assert_eq!(
            alloc.free_segments(),
            2,
            "partial allocation must roll back"
        );
    }

    #[test]
    fn overlap_predicates() {
        let (_d, _a, sst, _t) = build(10);
        assert!(sst.overlaps(b"key000003", b"key000005"));
        assert!(sst.overlaps(b"a", b"z"));
        assert!(!sst.overlaps(b"z", b"zz"));
        assert!(sst.covers(b"key000000"));
        assert!(!sst.covers(b"zzz"));
    }
}
