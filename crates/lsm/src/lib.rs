//! # rablock-lsm — the baseline LSM key-value store and BlueStore-like backend
//!
//! Stock Ceph persists through BlueStore, which embeds RocksDB for metadata
//! and small writes. This crate is that baseline, built from scratch:
//!
//! * [`Db`] — a leveled LSM database over a raw block device: CRC-framed
//!   WAL, memtables, sorted-run SSTs on a segment allocator, an atomic
//!   double-slot manifest, and leveled compaction.
//! * [`LsmObjectStore`] — the BlueStore-like [`ObjectStore`] backend used as
//!   *Original* in every experiment: object data chunked into 4 KiB LSM
//!   blocks, object metadata and Ceph's per-request records as LSM keys.
//!
//! The crate exists to reproduce the paper's baseline costs mechanically:
//! host-side write amplification ≈3 (Table I) and the maintenance-task CPU
//! slice (Fig. 1/7) both emerge from this code actually writing WALs,
//! flushing memtables and running compactions.
//!
//! [`ObjectStore`]: rablock_storage::ObjectStore

#![warn(missing_docs)]

mod alloc;
mod bloom;
mod cache;
mod compaction;
mod db;
mod memtable;
mod options;
mod sst;
mod store;
mod util;
mod wal;

pub use bloom::Bloom;
pub use cache::BlockCache;
pub use db::{BatchEntry, Db};
pub use options::LsmOptions;
pub use store::{LsmObjectStore, LSM_BLOCK_BYTES};
