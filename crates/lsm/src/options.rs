//! Tuning knobs for the LSM store.

/// Configuration of a [`Db`](crate::Db).
///
/// Defaults approximate a RocksDB instance embedded in BlueStore, scaled to
/// simulation-sized devices. Tests shrink everything to force frequent
/// flushes and compactions.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Seal the active memtable once it holds this many bytes.
    pub memtable_bytes: usize,
    /// Maximum sealed-but-unflushed memtables before writers stall.
    pub max_immutables: usize,
    /// Compact L0 into L1 once L0 holds this many sorted runs.
    pub l0_trigger: usize,
    /// Target size of L1; level `n` targets `level_base_bytes * level_multiplier^(n-1)`.
    pub level_base_bytes: u64,
    /// Growth factor between levels.
    pub level_multiplier: u64,
    /// Number of levels (including L0).
    pub levels: usize,
    /// Allocation unit for SST storage on the device.
    pub segment_bytes: u64,
    /// Size of the write-ahead-log region.
    pub wal_bytes: u64,
    /// Size of one manifest slot (two slots are kept for atomic checkpoints).
    pub manifest_slot_bytes: u64,
    /// Target uncompressed size of one SST data block.
    pub block_bytes: usize,
    /// Maximum size of a single SST emitted by flush/compaction.
    pub sst_max_bytes: u64,
    /// Byte capacity of the object-data block cache (BlueStore cache);
    /// zero disables it.
    pub block_cache_bytes: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            memtable_bytes: 4 << 20,
            max_immutables: 2,
            l0_trigger: 4,
            level_base_bytes: 32 << 20,
            level_multiplier: 8,
            levels: 7,
            segment_bytes: 256 << 10,
            wal_bytes: 16 << 20,
            manifest_slot_bytes: 1 << 20,
            block_bytes: 16 << 10,
            sst_max_bytes: 8 << 20,
            block_cache_bytes: 16 << 20,
        }
    }
}

impl LsmOptions {
    /// A configuration small enough to exercise flush and compaction in
    /// unit tests within a few megabytes.
    pub fn tiny() -> Self {
        LsmOptions {
            memtable_bytes: 32 << 10,
            max_immutables: 2,
            l0_trigger: 3,
            level_base_bytes: 128 << 10,
            level_multiplier: 4,
            levels: 5,
            segment_bytes: 16 << 10,
            wal_bytes: 256 << 10,
            manifest_slot_bytes: 64 << 10,
            block_bytes: 4 << 10,
            sst_max_bytes: 64 << 10,
            block_cache_bytes: 64 << 10,
        }
    }

    /// Target byte size of level `n` (1-based; L0 is run-count triggered).
    pub fn level_target(&self, level: usize) -> u64 {
        assert!(level >= 1, "L0 is count-triggered, not size-triggered");
        self.level_base_bytes * self.level_multiplier.pow(level as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_geometrically() {
        let o = LsmOptions::default();
        assert_eq!(o.level_target(1), 32 << 20);
        assert_eq!(o.level_target(2), (32 << 20) * 8);
        assert_eq!(o.level_target(3), (32 << 20) * 64);
    }

    #[test]
    #[should_panic(expected = "count-triggered")]
    fn level_zero_has_no_size_target() {
        let _ = LsmOptions::default().level_target(0);
    }
}
