//! Per-SST Bloom filters.
//!
//! RocksDB attaches a Bloom filter to every table file so point lookups
//! skip files (and their block reads) that cannot contain the key. Ours
//! uses the standard double-hashing construction (Kirsch–Mitzenmacher)
//! with ~10 bits/key ≈ 1% false-positive rate.

/// A fixed Bloom filter over a set of byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    k: u32,
}

fn hash128(key: &[u8]) -> (u64, u64) {
    // FNV-1a for h1; splitmix finalizer of h1 xor len for h2.
    let mut h1 = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h1 ^= b as u64;
        h1 = h1.wrapping_mul(0x100_0000_01B3);
    }
    let mut h2 = h1 ^ (key.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h2 = (h2 ^ (h2 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h2 = (h2 ^ (h2 >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h2 ^= h2 >> 31;
    (h1, h2 | 1) // odd step avoids degenerate cycles
}

impl Bloom {
    /// Builds a filter for `keys` with `bits_per_key` bits each (10 is the
    /// classic ~1% FPR point).
    pub fn build<'a, I: IntoIterator<Item = &'a [u8]>>(
        keys: I,
        n: usize,
        bits_per_key: usize,
    ) -> Self {
        let nbits = (n.max(1) * bits_per_key).next_multiple_of(64).max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        let mut bloom = Bloom {
            bits: vec![0u64; nbits / 64],
            k,
        };
        for key in keys {
            bloom.insert(key);
        }
        bloom
    }

    fn insert(&mut self, key: &[u8]) {
        let nbits = (self.bits.len() * 64) as u64;
        let (h1, h2) = hash128(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// True if `key` might be in the set (false positives possible, false
    /// negatives never).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = (self.bits.len() * 64) as u64;
        let (h1, h2) = hash128(key);
        (0..self.k as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Serializes to bytes (`u32 k`, then the bit words).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len() * 8);
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Bloom::encode`]'s format; `None` on malformed
    /// input.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        if raw.len() < 4 + 8 || !(raw.len() - 4).is_multiple_of(8) {
            return None;
        }
        let k = u32::from_le_bytes(raw[..4].try_into().ok()?);
        if k == 0 || k > 32 {
            return None;
        }
        let bits = raw[4..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Bloom { bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(5_000);
        let bloom = Bloom::build(ks.iter().map(Vec::as_slice), ks.len(), 10);
        for k in &ks {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(5_000);
        let bloom = Bloom::build(ks.iter().map(Vec::as_slice), ks.len(), 10);
        let probes = 20_000;
        let fp = (0..probes)
            .filter(|i| bloom.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false-positive rate {rate}");
    }

    #[test]
    fn encode_decode_round_trips() {
        let ks = keys(100);
        let bloom = Bloom::build(ks.iter().map(Vec::as_slice), ks.len(), 10);
        let decoded = Bloom::decode(&bloom.encode()).unwrap();
        assert_eq!(decoded, bloom);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Bloom::decode(&[]).is_none());
        assert!(Bloom::decode(&[1, 2, 3]).is_none());
        assert!(Bloom::decode(&[0; 13]).is_none());
    }

    proptest! {
        #[test]
        fn never_forgets_members(ks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..40), 1..200)) {
            let bloom = Bloom::build(ks.iter().map(Vec::as_slice), ks.len(), 10);
            for k in &ks {
                prop_assert!(bloom.may_contain(k));
            }
            let round = Bloom::decode(&bloom.encode()).unwrap();
            for k in &ks {
                prop_assert!(round.may_contain(k));
            }
        }
    }
}
