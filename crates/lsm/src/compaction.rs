//! Leveled compaction.
//!
//! The maintenance half of the LSM — the "MT" CPU slice in the paper's
//! Figure 1/7 breakdowns and the dominant source of the ~3× host-side write
//! amplification in Table I. L0 compacts by run count (all runs + the
//! overlapping L1 files merge into L1); deeper levels compact by size,
//! pushing one file at a time into the next level.

use std::collections::BTreeMap;

use rablock_storage::{BlockDevice, MaintenanceReport, StoreError};

use crate::db::Db;
use crate::sst::Sst;

impl<D: BlockDevice> Db<D> {
    /// True if any level is over its trigger.
    pub(crate) fn needs_compaction(&self) -> bool {
        if self.levels[0].len() >= self.opts.l0_trigger {
            return true;
        }
        (1..self.levels.len() - 1).any(|i| self.level_bytes(i) > self.opts.level_target(i))
    }

    /// Performs a single compaction: L0→L1 when L0 hits its run-count
    /// trigger, otherwise one file from the most oversized level into the
    /// level below.
    pub(crate) fn compact_once(&mut self) -> Result<MaintenanceReport, StoreError> {
        let (upper, target_level) = if self.levels[0].len() >= self.opts.l0_trigger {
            (std::mem::take(&mut self.levels[0]), 1)
        } else {
            let Some(level) = (1..self.levels.len() - 1)
                .find(|&i| self.level_bytes(i) > self.opts.level_target(i))
            else {
                return Ok(MaintenanceReport::default());
            };
            let idx = self.compact_cursor[level] % self.levels[level].len();
            self.compact_cursor[level] = self.compact_cursor[level].wrapping_add(1);
            let victim = self.levels[level].remove(idx);
            (vec![victim], level + 1)
        };

        // Key range of the inputs → overlapping files in the target level.
        let min = upper
            .iter()
            .map(|s| s.min_key.clone())
            .min()
            .expect("nonempty inputs");
        let max = upper
            .iter()
            .map(|s| s.max_key.clone())
            .max()
            .expect("nonempty inputs");
        let mut lower: Vec<Sst> = Vec::new();
        let target = &mut self.levels[target_level];
        let mut i = 0;
        while i < target.len() {
            if target[i].overlaps(&min, &max) {
                lower.push(target.remove(i));
            } else {
                i += 1;
            }
        }

        let mut bytes_read = 0u64;
        // Merge oldest→newest so later inserts overwrite earlier ones.
        // Target-level files are the oldest; L0 is stored newest-first so
        // iterate it in reverse.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for sst in &lower {
            bytes_read += sst.len;
            for (k, v) in self.scan_sst(sst)? {
                merged.insert(k, v);
            }
        }
        for sst in upper.iter().rev() {
            bytes_read += sst.len;
            for (k, v) in self.scan_sst(sst)? {
                merged.insert(k, v);
            }
        }

        // Tombstones can be dropped when nothing below could still hold an
        // older version of these keys.
        let deepest_needed = (target_level + 1..self.levels.len())
            .any(|lvl| self.levels[lvl].iter().any(|s| s.overlaps(&min, &max)));
        if !deepest_needed {
            merged.retain(|_, v| v.is_some());
        }

        let outputs = self.build_output_ssts(merged)?;
        let bytes_written: u64 = outputs.iter().map(|s| s.len).sum();
        for sst in outputs {
            let pos = self.levels[target_level].partition_point(|s| s.min_key < sst.min_key);
            self.levels[target_level].insert(pos, sst);
        }
        debug_assert!(self.level_is_sorted_nonoverlapping(target_level));

        // Persist the new shape before releasing the inputs' segments, so a
        // crash between the two never loses referenced data.
        self.write_manifest()?;
        for sst in upper.iter().chain(lower.iter()) {
            self.free_sst(sst);
        }

        Ok(MaintenanceReport {
            bytes_read,
            bytes_written,
            did_work: true,
        })
    }

    pub(crate) fn level_is_sorted_nonoverlapping(&self, level: usize) -> bool {
        self.levels[level]
            .windows(2)
            .all(|w| w[0].max_key < w[1].min_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LsmOptions;
    use rablock_storage::MemDisk;

    fn kv(i: u64) -> crate::db::BatchEntry {
        (
            format!("key{:08}", i).into_bytes(),
            Some(vec![(i % 251) as u8; 64]),
        )
    }

    fn filled_db(n: u64) -> Db<MemDisk> {
        let mut db = Db::open(MemDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
        for i in 0..n {
            db.apply(&[kv(i)]).unwrap();
            // Drain maintenance opportunistically, like a background thread.
            while db.needs_maintenance() {
                db.maintenance().unwrap();
            }
        }
        db
    }

    #[test]
    fn compaction_preserves_every_live_key() {
        let mut db = filled_db(3_000);
        for i in 0..3_000 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), v, "key {i}");
        }
    }

    #[test]
    fn compaction_moves_data_below_l0() {
        let db = filled_db(3_000);
        let counts = db.level_file_counts();
        assert!(
            counts[0] < db.options().l0_trigger,
            "L0 drained: {counts:?}"
        );
        assert!(
            counts[1..].iter().sum::<usize>() > 0,
            "deeper levels populated: {counts:?}"
        );
    }

    #[test]
    fn deep_levels_stay_sorted_and_disjoint() {
        let db = filled_db(4_000);
        for level in 1..db.level_file_counts().len() {
            assert!(db.level_is_sorted_nonoverlapping(level), "level {level}");
        }
    }

    #[test]
    fn overwrites_collapse_during_compaction() {
        let mut db = Db::open(MemDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
        // Hammer a small key set so compaction must merge duplicates.
        for round in 0u64..40 {
            for i in 0..50 {
                let key = format!("dup{:04}", i).into_bytes();
                db.apply(&[(key, Some(vec![round as u8; 128]))]).unwrap();
                while db.needs_maintenance() {
                    db.maintenance().unwrap();
                }
            }
        }
        for i in 0..50 {
            let key = format!("dup{:04}", i).into_bytes();
            assert_eq!(db.get(&key).unwrap(), Some(vec![39u8; 128]));
        }
    }

    #[test]
    fn deletes_survive_compaction() {
        let mut db = Db::open(MemDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
        for i in 0..600 {
            db.apply(&[kv(i)]).unwrap();
        }
        for i in (0..600).step_by(2) {
            let (k, _) = kv(i);
            db.apply(&[(k, None)]).unwrap();
        }
        db.flush_all().unwrap();
        while db.needs_maintenance() {
            db.maintenance().unwrap();
        }
        for i in 0..600 {
            let (k, v) = kv(i);
            let expect = if i % 2 == 0 { None } else { v };
            assert_eq!(db.get(&k).unwrap(), expect, "key {i}");
        }
    }

    #[test]
    fn compaction_produces_write_amplification() {
        let mut db = filled_db(5_000);
        db.flush_all().unwrap();
        while db.needs_maintenance() {
            db.maintenance().unwrap();
        }
        let stats = db.stats();
        assert!(stats.compaction_bytes > 0, "compaction happened");
        // WAL + flush + compaction must exceed the flushed bytes alone:
        // the whole point of the paper's Table I.
        assert!(stats.total_written() > stats.flush_bytes + stats.wal_bytes);
    }
}
