//! In-memory sorted write buffer.

use std::collections::BTreeMap;

/// A sorted in-memory buffer of recent writes. `None` values are tombstones.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Inserts or overwrites `key`. A `None` value records a deletion.
    pub fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let add = key.len() + value.as_ref().map_or(0, Vec::len) + 24;
        if let Some(old) = self.entries.insert(key, value) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
            self.approx_bytes += add - 24; // key re-counted above; drop the fixed part once
        } else {
            self.approx_bytes += add;
        }
    }

    /// Looks up `key`. `Some(None)` means "deleted here"; `None` means
    /// "not present in this memtable, look further down".
    pub fn get(&self, key: &[u8]) -> Option<Option<&Vec<u8>>> {
        self.entries.get(key).map(Option::as_ref)
    }

    /// Approximate resident bytes (keys + values + per-entry overhead).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of entries (tombstones included).
    #[allow(dead_code)] // natural collection API; used by tests
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Option<Vec<u8>>)> {
        self.entries.iter()
    }

    /// Consumes the memtable into its sorted entries.
    pub fn into_entries(self) -> BTreeMap<Vec<u8>, Option<Vec<u8>>> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), Some(b"1".to_vec()));
        assert_eq!(m.get(b"a"), Some(Some(&b"1".to_vec())));
        m.insert(b"a".to_vec(), Some(b"2".to_vec()));
        assert_eq!(m.get(b"a"), Some(Some(&b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_is_distinguishable_from_absent() {
        let mut m = Memtable::new();
        m.insert(b"gone".to_vec(), None);
        assert_eq!(m.get(b"gone"), Some(None));
        assert_eq!(m.get(b"never"), None);
    }

    #[test]
    fn size_tracks_growth() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.insert(vec![0; 10], Some(vec![0; 100]));
        let after_one = m.approx_bytes();
        assert!(after_one >= 110);
        m.insert(vec![1; 10], Some(vec![0; 100]));
        assert!(m.approx_bytes() > after_one);
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut m = Memtable::new();
        for k in [b"c", b"a", b"b"] {
            m.insert(k.to_vec(), Some(vec![]));
        }
        let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }
}
