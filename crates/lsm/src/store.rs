//! BlueStore-like object store backend over the LSM database.
//!
//! Stock Ceph's BlueStore routes small writes and all metadata through
//! RocksDB. Under the paper's 4 KiB random-write regime, effectively every
//! byte of a request rides the LSM — which is why the baseline burns CPU on
//! compaction and shows ~3× host-side write amplification. This backend
//! reproduces that architecture: object data is chunked into 4 KiB blocks
//! stored as LSM values, object metadata and the per-request Ceph records
//! (`object_info_t`, pg log) are LSM keys too.

use std::collections::HashMap;

use rablock_storage::{
    BlockDevice, MaintenanceReport, ObjectId, ObjectInfo, ObjectStore, Op, StoreError, StoreStats,
    TraceIo, Transaction,
};

use crate::cache::BlockCache;
use crate::db::Db;
use crate::options::LsmOptions;
use crate::util::{put_u64, Cursor};

/// Data is chunked into blocks of this size inside the LSM.
pub const LSM_BLOCK_BYTES: u64 = 4096;

fn info_key(oid: ObjectId) -> Vec<u8> {
    let mut k = vec![b'M'];
    put_u64(&mut k, oid.raw());
    k
}

fn data_key(oid: ObjectId, generation: u32, block: u64) -> Vec<u8> {
    let mut k = vec![b'D'];
    put_u64(&mut k, oid.raw());
    k.extend_from_slice(&generation.to_be_bytes());
    k.extend_from_slice(&block.to_be_bytes());
    k
}

fn xattr_key(oid: ObjectId, name: &str) -> Vec<u8> {
    let mut k = vec![b'X'];
    put_u64(&mut k, oid.raw());
    k.extend_from_slice(name.as_bytes());
    k
}

fn raw_key(oid: ObjectId, generation: u32, chunk: u64) -> Vec<u8> {
    let mut k = vec![b'R'];
    put_u64(&mut k, oid.raw());
    k.extend_from_slice(&generation.to_be_bytes());
    k.extend_from_slice(&chunk.to_be_bytes());
    k
}

fn meta_key(user_key: &[u8]) -> Vec<u8> {
    let mut k = vec![b'K'];
    k.extend_from_slice(user_key);
    k
}

#[derive(Debug, Clone, Copy)]
struct StoredInfo {
    size: u64,
    version: u64,
    mtime: u64,
    generation: u32,
}

impl StoredInfo {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(28);
        put_u64(&mut v, self.size);
        put_u64(&mut v, self.version);
        put_u64(&mut v, self.mtime);
        v.extend_from_slice(&self.generation.to_le_bytes());
        v
    }

    fn decode(raw: &[u8]) -> Result<Self, StoreError> {
        let mut c = Cursor::new(raw);
        let size = c.get_u64().ok_or_else(bad_info)?;
        let version = c.get_u64().ok_or_else(bad_info)?;
        let mtime = c.get_u64().ok_or_else(bad_info)?;
        let generation = u32::from_le_bytes(
            c.get_bytes_raw(4)
                .ok_or_else(bad_info)?
                .try_into()
                .expect("4 bytes"),
        );
        Ok(StoredInfo {
            size,
            version,
            mtime,
            generation,
        })
    }
}

fn bad_info() -> StoreError {
    StoreError::Corrupt("truncated object info record".into())
}

/// The BlueStore-like [`ObjectStore`] backend (the paper's *Original*).
///
/// ```
/// use rablock_lsm::{LsmObjectStore, LsmOptions};
/// use rablock_storage::{MemDisk, ObjectStore, ObjectId, GroupId, Op, Transaction};
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut store = LsmObjectStore::open(MemDisk::new(16 << 20), LsmOptions::tiny())?;
/// let oid = ObjectId::new(GroupId(0), 1);
/// store.submit(Transaction::new(GroupId(0), 1, vec![
///     Op::Write { oid, offset: 0, data: b"hello".to_vec().into() },
/// ]))?;
/// assert_eq!(store.read(oid, 0, 5)?, b"hello");
/// # Ok(())
/// # }
/// ```
/// Writes covering at least this fraction of a chunk take the raw path.
const RAW_PROMOTE_NUM: u64 = 1;
const RAW_PROMOTE_DEN: u64 = 2;

/// The BlueStore-like object store over the LSM (`Original`'s backend).
pub struct LsmObjectStore<D: BlockDevice> {
    db: Db<D>,
    /// BlueStore-style large-write map: `(oid, generation, chunk) → raw
    /// segment`. Chunks on this map hold the authoritative bytes; the LSM
    /// only stores their location record.
    raw_chunks: HashMap<(u64, u32, u64), u32>,
    /// BlueStore-style object-data cache (write-through), paper SV-E.
    cache: BlockCache,
    user_bytes: u64,
    transactions: u64,
}

impl<D: BlockDevice> LsmObjectStore<D> {
    /// Opens (or formats) a store on `dev`.
    ///
    /// # Errors
    ///
    /// See [`Db::open`].
    pub fn open(dev: D, opts: LsmOptions) -> Result<Self, StoreError> {
        let mut db = Db::open(dev, opts)?;
        // Rebuild the large-write map from its LSM records.
        let mut raw_chunks = HashMap::new();
        for (k, v) in db.scan_prefix(b"R")? {
            if k.len() != 1 + 8 + 4 + 8 || v.len() != 4 {
                continue;
            }
            let oid = u64::from_le_bytes(k[1..9].try_into().expect("8 bytes"));
            let generation = u32::from_be_bytes(k[9..13].try_into().expect("4 bytes"));
            let chunk = u64::from_be_bytes(k[13..21].try_into().expect("8 bytes"));
            let seg = u32::from_le_bytes(v[..4].try_into().expect("4 bytes"));
            raw_chunks.insert((oid, generation, chunk), seg);
        }
        let cache = BlockCache::new(db.options().block_cache_bytes);
        Ok(LsmObjectStore {
            db,
            raw_chunks,
            cache,
            user_bytes: 0,
            transactions: 0,
        })
    }

    /// The embedded LSM database (diagnostics).
    pub fn db(&self) -> &Db<D> {
        &self.db
    }

    /// Consumes the store, returning the device (crash-injection tests).
    pub fn into_device(self) -> D {
        self.db.into_device()
    }

    fn load_info(&mut self, oid: ObjectId) -> Result<Option<StoredInfo>, StoreError> {
        let key = info_key(oid);
        if let Some(raw) = self.cache.get(&key) {
            return Ok(Some(StoredInfo::decode(&raw)?));
        }
        match self.db.get(&key)? {
            Some(raw) => {
                // BlueStore caches onodes; so do we.
                self.cache.put(key, raw.clone());
                Ok(Some(StoredInfo::decode(&raw)?))
            }
            None => Ok(None),
        }
    }

    fn apply_write(
        &mut self,
        batch: &mut Vec<(Vec<u8>, Option<Vec<u8>>)>,
        info: &mut StoredInfo,
        oid: ObjectId,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let end = offset + data.len() as u64;
        // Large-write path (BlueStore: big writes bypass RocksDB and land
        // on the raw device; small writes to raw chunks overwrite in place).
        let chunk_bytes = self.db.segment_bytes();
        let first_chunk = offset / chunk_bytes;
        let last_chunk = (end - 1) / chunk_bytes;
        let mut kv_ranges: Vec<(u64, u64)> = Vec::new();
        for chunk in first_chunk..=last_chunk {
            let c_start = chunk * chunk_bytes;
            let c_end = c_start + chunk_bytes;
            let p_start = offset.max(c_start);
            let p_end = end.min(c_end);
            let key = (oid.raw(), info.generation, chunk);
            if let Some(&seg) = self.raw_chunks.get(&key) {
                self.db.raw_write(
                    seg,
                    p_start - c_start,
                    &data[(p_start - offset) as usize..(p_end - offset) as usize],
                )?;
            } else if (p_end - p_start) * RAW_PROMOTE_DEN >= chunk_bytes * RAW_PROMOTE_NUM {
                // Promote: merge any existing KV blocks of this chunk, then
                // write the whole chunk raw.
                let mut merged = if info.size > c_start {
                    let have = (info.size - c_start).min(chunk_bytes);
                    let mut buf = self.read_kv_range(oid, info, c_start, have)?;
                    buf.resize(chunk_bytes as usize, 0);
                    buf
                } else {
                    vec![0u8; chunk_bytes as usize]
                };
                merged[(p_start - c_start) as usize..(p_end - c_start) as usize]
                    .copy_from_slice(&data[(p_start - offset) as usize..(p_end - offset) as usize]);
                let seg = self.db.alloc_segments(1)?[0];
                self.db.raw_write(seg, 0, &merged)?;
                self.raw_chunks.insert(key, seg);
                batch.push((
                    raw_key(oid, info.generation, chunk),
                    Some(seg.to_le_bytes().to_vec()),
                ));
            } else {
                kv_ranges.push((p_start, p_end));
            }
        }
        for (r_start, r_end) in kv_ranges {
            self.apply_kv_write(batch, info, oid, offset, data, r_start, r_end)?;
        }
        info.size = info.size.max(end);
        Ok(())
    }

    /// The small-write path: 4 KiB blocks as LSM values.
    #[allow(clippy::too_many_arguments)]
    fn apply_kv_write(
        &mut self,
        batch: &mut Vec<(Vec<u8>, Option<Vec<u8>>)>,
        info: &mut StoredInfo,
        oid: ObjectId,
        offset: u64,
        data: &[u8],
        r_start: u64,
        r_end: u64,
    ) -> Result<(), StoreError> {
        let end = r_end;
        let first_block = r_start / LSM_BLOCK_BYTES;
        let last_block = (end - 1) / LSM_BLOCK_BYTES;
        for block in first_block..=last_block {
            let block_start = block * LSM_BLOCK_BYTES;
            let block_end = block_start + LSM_BLOCK_BYTES;
            let copy_start = r_start.max(block_start);
            let copy_end = end.min(block_end);
            let key = data_key(oid, info.generation, block);
            let value = if copy_start == block_start && copy_end == block_end {
                data[(copy_start - offset) as usize..(copy_end - offset) as usize].to_vec()
            } else {
                // Unaligned: read-modify-write the block (the paper calls
                // this out in the YCSB analysis, §V-E).
                let mut existing = self.db.get(&key)?.unwrap_or_default();
                existing.resize(LSM_BLOCK_BYTES as usize, 0);
                existing[(copy_start - block_start) as usize..(copy_end - block_start) as usize]
                    .copy_from_slice(
                        &data[(copy_start - offset) as usize..(copy_end - offset) as usize],
                    );
                existing
            };
            self.cache.put(key.clone(), value.clone());
            batch.push((key, Some(value)));
        }
        info.size = info.size.max(end);
        Ok(())
    }

    /// Assembles a byte range from KV blocks only (promotion merge).
    fn read_kv_range(
        &mut self,
        oid: ObjectId,
        info: &StoredInfo,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        let mut out = vec![0u8; len as usize];
        if len == 0 {
            return Ok(out);
        }
        let end = offset + len;
        let first_block = offset / LSM_BLOCK_BYTES;
        let last_block = (end - 1) / LSM_BLOCK_BYTES;
        for block in first_block..=last_block {
            let block_start = block * LSM_BLOCK_BYTES;
            let copy_start = offset.max(block_start);
            let copy_end = end.min(block_start + LSM_BLOCK_BYTES);
            let key = data_key(oid, info.generation, block);
            let value = match self.cache.get(&key) {
                Some(v) => Some(v),
                None => {
                    let fetched = self.db.get(&key)?;
                    if let Some(v) = &fetched {
                        self.cache.put(key, v.clone());
                    }
                    fetched
                }
            };
            if let Some(value) = value {
                let src_start = (copy_start - block_start) as usize;
                let src_end = ((copy_end - block_start) as usize).min(value.len());
                if src_end > src_start {
                    out[(copy_start - offset) as usize..][..src_end - src_start]
                        .copy_from_slice(&value[src_start..src_end]);
                }
            }
        }
        Ok(out)
    }
}

impl<D: BlockDevice> ObjectStore for LsmObjectStore<D> {
    fn submit(&mut self, txn: Transaction) -> Result<(), StoreError> {
        let mut batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        // Info updates are coalesced per object within the transaction.
        let mut infos: Vec<(ObjectId, StoredInfo)> = Vec::new();
        let info_of = |store: &mut Self,
                       infos: &mut Vec<(ObjectId, StoredInfo)>,
                       oid: ObjectId,
                       create: bool|
         -> Result<Option<usize>, StoreError> {
            if let Some(pos) = infos.iter().position(|(o, _)| *o == oid) {
                return Ok(Some(pos));
            }
            match store.load_info(oid)? {
                Some(info) => {
                    infos.push((oid, info));
                    Ok(Some(infos.len() - 1))
                }
                None if create => {
                    infos.push((
                        oid,
                        StoredInfo {
                            size: 0,
                            version: 0,
                            mtime: 0,
                            generation: 0,
                        },
                    ));
                    Ok(Some(infos.len() - 1))
                }
                None => Ok(None),
            }
        };

        for op in &txn.ops {
            match op {
                Op::Create { oid, size } => {
                    let idx =
                        info_of(self, &mut infos, *oid, true)?.expect("create always yields info");
                    let info = &mut infos[idx].1;
                    info.size = info.size.max(*size);
                    info.version += 1;
                    info.mtime = txn.seq;
                }
                Op::Write { oid, offset, data } => {
                    if data.is_empty() {
                        return Err(StoreError::InvalidArgument("zero-length write".into()));
                    }
                    let idx = info_of(self, &mut infos, *oid, true)?.expect("write creates info");
                    let mut info = infos[idx].1;
                    self.apply_write(&mut batch, &mut info, *oid, *offset, data)?;
                    info.version += 1;
                    info.mtime = txn.seq;
                    infos[idx].1 = info;
                    self.user_bytes += data.len() as u64;
                }
                Op::SetXattr { oid, key, value } => {
                    let idx = info_of(self, &mut infos, *oid, true)?.expect("xattr creates info");
                    infos[idx].1.version += 1;
                    batch.push((xattr_key(*oid, key), Some(value.clone())));
                }
                Op::MetaPut { key, value } => {
                    batch.push((meta_key(key), Some(value.clone())));
                }
                Op::MetaDelete { key } => {
                    batch.push((meta_key(key), None));
                }
                Op::Delete { oid } => {
                    let Some(idx) = info_of(self, &mut infos, *oid, false)? else {
                        return Err(StoreError::NotFound);
                    };
                    let generation = infos[idx].1.generation;
                    infos.retain(|(o, _)| o != oid);
                    // Release the large-write chunks of this generation.
                    let doomed: Vec<(u64, u32, u64)> = self
                        .raw_chunks
                        .keys()
                        .filter(|(o, g, _)| *o == oid.raw() && *g == generation)
                        .copied()
                        .collect();
                    for key in doomed {
                        let seg = self.raw_chunks.remove(&key).expect("just listed");
                        self.db.free_segment(seg)?;
                        batch.push((raw_key(*oid, generation, key.2), None));
                    }
                    self.cache.invalidate(&info_key(*oid));
                    batch.push((info_key(*oid), None));
                }
            }
        }
        for (oid, info) in infos {
            let encoded = info.encode();
            self.cache.put(info_key(oid), encoded.clone());
            batch.push((info_key(oid), Some(encoded)));
        }
        self.db.apply(&batch)?;
        self.transactions += 1;
        Ok(())
    }

    fn read(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let info = self.load_info(oid)?.ok_or(StoreError::NotFound)?;
        if offset + len > info.size {
            return Err(StoreError::OutOfBounds {
                offset,
                len,
                capacity: info.size,
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut out = vec![0u8; len as usize];
        let end = offset + len;
        let chunk_bytes = self.db.segment_bytes();
        let first_chunk = offset / chunk_bytes;
        let last_chunk = (end - 1) / chunk_bytes;
        for chunk in first_chunk..=last_chunk {
            let c_start = chunk * chunk_bytes;
            let p_start = offset.max(c_start);
            let p_end = end.min(c_start + chunk_bytes);
            if let Some(&seg) = self.raw_chunks.get(&(oid.raw(), info.generation, chunk)) {
                let raw = self.db.raw_read(seg, p_start - c_start, p_end - p_start)?;
                out[(p_start - offset) as usize..(p_end - offset) as usize].copy_from_slice(&raw);
            } else {
                let kv = self.read_kv_range(oid, &info, p_start, p_end - p_start)?;
                out[(p_start - offset) as usize..(p_end - offset) as usize].copy_from_slice(&kv);
            }
            // Absent blocks/chunks read as zeroes (sparse object).
        }
        Ok(out)
    }

    fn stat(&mut self, oid: ObjectId) -> Option<ObjectInfo> {
        self.load_info(oid).ok().flatten().map(|i| ObjectInfo {
            size: i.size,
            version: i.version,
            mtime: i.mtime,
        })
    }

    fn get_meta(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.db.get(&meta_key(key)).ok().flatten()
    }

    fn needs_maintenance(&self) -> bool {
        self.db.needs_maintenance()
    }

    fn maintenance(&mut self) -> MaintenanceReport {
        self.db.maintenance().unwrap_or_default()
    }

    fn take_trace(&mut self) -> Vec<TraceIo> {
        self.db.take_trace()
    }

    fn stats(&self) -> StoreStats {
        let mut s = self.db.stats();
        s.user_bytes = self.user_bytes;
        s.transactions = self.transactions;
        s
    }

    fn reset_stats(&mut self) {
        self.db.reset_stats();
        self.user_bytes = 0;
        self.transactions = 0;
    }
}

impl<D: BlockDevice> std::fmt::Debug for LsmObjectStore<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmObjectStore")
            .field("db", &self.db)
            .field("transactions", &self.transactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::{GroupId, MemDisk};

    fn store() -> LsmObjectStore<MemDisk> {
        LsmObjectStore::open(MemDisk::new(32 << 20), LsmOptions::tiny()).unwrap()
    }

    fn oid(i: u64) -> ObjectId {
        ObjectId::new(GroupId(0), i)
    }

    fn write_txn(seq: u64, o: ObjectId, offset: u64, data: Vec<u8>) -> Transaction {
        Transaction::new(
            GroupId(0),
            seq,
            vec![Op::Write {
                oid: o,
                offset,
                data: data.into(),
            }],
        )
    }

    #[test]
    fn write_read_aligned() {
        let mut s = store();
        s.submit(write_txn(1, oid(1), 0, vec![7u8; 4096])).unwrap();
        assert_eq!(s.read(oid(1), 0, 4096).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn unaligned_write_does_read_modify_write() {
        let mut s = store();
        s.submit(write_txn(1, oid(1), 0, vec![1u8; 4096])).unwrap();
        s.submit(write_txn(2, oid(1), 100, vec![2u8; 50])).unwrap();
        let got = s.read(oid(1), 0, 4096).unwrap();
        assert_eq!(&got[..100], &[1u8; 100][..]);
        assert_eq!(&got[100..150], &[2u8; 50][..]);
        assert_eq!(&got[150..], &[1u8; 3946][..]);
    }

    #[test]
    fn write_spanning_blocks() {
        let mut s = store();
        s.submit(write_txn(1, oid(1), 4000, vec![9u8; 200]))
            .unwrap();
        let got = s.read(oid(1), 4000, 200).unwrap();
        assert_eq!(got, vec![9u8; 200]);
        // Sparse prefix reads as zeroes.
        assert_eq!(s.read(oid(1), 0, 10).unwrap(), vec![0u8; 10]);
    }

    #[test]
    fn version_and_mtime_advance() {
        let mut s = store();
        s.submit(write_txn(5, oid(1), 0, vec![1u8; 16])).unwrap();
        let v1 = s.stat(oid(1)).unwrap();
        s.submit(write_txn(9, oid(1), 0, vec![2u8; 16])).unwrap();
        let v2 = s.stat(oid(1)).unwrap();
        assert!(v2.version > v1.version);
        assert_eq!(v2.mtime, 9);
    }

    #[test]
    fn create_preallocates_size() {
        let mut s = store();
        s.submit(Transaction::new(
            GroupId(0),
            1,
            vec![Op::Create {
                oid: oid(2),
                size: 1 << 16,
            }],
        ))
        .unwrap();
        assert_eq!(s.stat(oid(2)).unwrap().size, 1 << 16);
        assert_eq!(s.read(oid(2), 65_000, 100).unwrap(), vec![0u8; 100]);
    }

    #[test]
    fn delete_removes_object_and_read_fails() {
        let mut s = store();
        s.submit(write_txn(1, oid(3), 0, vec![1u8; 128])).unwrap();
        s.submit(Transaction::new(
            GroupId(0),
            2,
            vec![Op::Delete { oid: oid(3) }],
        ))
        .unwrap();
        assert_eq!(s.read(oid(3), 0, 1), Err(StoreError::NotFound));
        assert!(s.stat(oid(3)).is_none());
        // Deleting again reports NotFound.
        let err = s.submit(Transaction::new(
            GroupId(0),
            3,
            vec![Op::Delete { oid: oid(3) }],
        ));
        assert_eq!(err, Err(StoreError::NotFound));
    }

    #[test]
    fn meta_records_round_trip() {
        let mut s = store();
        s.submit(Transaction::new(
            GroupId(0),
            1,
            vec![
                Op::MetaPut {
                    key: b"pglog.0.42".to_vec(),
                    value: vec![1, 2, 3],
                },
                Op::Write {
                    oid: oid(1),
                    offset: 0,
                    data: vec![0u8; 64].into(),
                },
            ],
        ))
        .unwrap();
        assert_eq!(s.get_meta(b"pglog.0.42"), Some(vec![1, 2, 3]));
        s.submit(Transaction::new(
            GroupId(0),
            2,
            vec![Op::MetaDelete {
                key: b"pglog.0.42".to_vec(),
            }],
        ))
        .unwrap();
        assert_eq!(s.get_meta(b"pglog.0.42"), None);
    }

    #[test]
    fn random_write_workload_amplifies_writes() {
        let mut s = store();
        let mut x = 0x12345u64;
        for seq in 0..4_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let o = oid(x % 16);
            let block = (x >> 16) % 64;
            s.submit(write_txn(
                seq,
                o,
                block * 4096,
                vec![(seq % 251) as u8; 4096],
            ))
            .unwrap();
            while s.needs_maintenance() {
                s.maintenance();
            }
        }
        let stats = s.stats();
        assert_eq!(stats.user_bytes, 4_000 * 4096);
        // The LSM path writes every byte at least twice (WAL + flush) and
        // compaction pushes total WAF toward the paper's ~3.
        assert!(stats.waf() > 2.0, "waf = {}", stats.waf());
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let mut s = store();
        s.submit(write_txn(1, oid(1), 0, vec![1u8; 100])).unwrap();
        assert!(matches!(
            s.read(oid(1), 50, 100),
            Err(StoreError::OutOfBounds { .. })
        ));
    }
}

#[cfg(test)]
mod raw_path_tests {
    use super::*;
    use rablock_storage::{GroupId, MemDisk};

    fn store() -> LsmObjectStore<MemDisk> {
        // tiny(): 16 KiB segments, so a 16 KiB write takes the raw path.
        LsmObjectStore::open(MemDisk::new(32 << 20), LsmOptions::tiny()).unwrap()
    }

    fn oid(i: u64) -> ObjectId {
        ObjectId::new(GroupId(0), i)
    }

    fn write_txn(seq: u64, o: ObjectId, offset: u64, data: Vec<u8>) -> Transaction {
        Transaction::new(
            GroupId(0),
            seq,
            vec![Op::Write {
                oid: o,
                offset,
                data: data.into(),
            }],
        )
    }

    #[test]
    fn large_write_takes_raw_path_and_reads_back() {
        let mut s = store();
        let chunk = s.db().segment_bytes();
        s.submit(write_txn(1, oid(1), 0, vec![0x7E; (chunk * 2) as usize]))
            .unwrap();
        assert_eq!(s.raw_chunks.len(), 2, "two chunks promoted");
        assert_eq!(
            s.read(oid(1), 0, chunk * 2).unwrap(),
            vec![0x7E; (chunk * 2) as usize]
        );
        // Raw-path writes must not ride the WAL (that is the whole point).
        let stats = s.stats();
        assert!(
            stats.wal_bytes < chunk,
            "wal bytes {} stay small",
            stats.wal_bytes
        );
        assert!(stats.data_bytes >= chunk * 2, "data written raw");
    }

    #[test]
    fn small_write_onto_raw_chunk_overwrites_in_place() {
        let mut s = store();
        let chunk = s.db().segment_bytes();
        s.submit(write_txn(1, oid(1), 0, vec![0x11; chunk as usize]))
            .unwrap();
        s.submit(write_txn(2, oid(1), 100, vec![0x22; 50])).unwrap();
        let got = s.read(oid(1), 0, chunk).unwrap();
        assert_eq!(&got[..100], &vec![0x11; 100][..]);
        assert_eq!(&got[100..150], &vec![0x22; 50][..]);
        assert_eq!(&got[150..], &vec![0x11; chunk as usize - 150][..]);
        assert_eq!(s.raw_chunks.len(), 1, "no extra chunk, in-place overwrite");
    }

    #[test]
    fn promotion_merges_existing_kv_blocks() {
        let mut s = store();
        let chunk = s.db().segment_bytes();
        // Small write first (KV path), then a big write over the same chunk.
        s.submit(write_txn(1, oid(1), 0, vec![0x33; 4096])).unwrap();
        s.submit(write_txn(
            2,
            oid(1),
            4096,
            vec![0x44; (chunk - 4096) as usize],
        ))
        .unwrap();
        let got = s.read(oid(1), 0, chunk).unwrap();
        assert_eq!(
            &got[..4096],
            &vec![0x33; 4096][..],
            "old KV data survives promotion"
        );
        assert_eq!(&got[4096..], &vec![0x44; (chunk - 4096) as usize][..]);
    }

    #[test]
    fn raw_chunks_survive_reopen() {
        let mut s = store();
        let chunk = s.db().segment_bytes();
        s.submit(write_txn(1, oid(1), 0, vec![0x55; chunk as usize]))
            .unwrap();
        s.submit(write_txn(2, oid(2), 0, vec![0x66; 1000])).unwrap();
        let dev = s.into_device();
        let mut s2 = LsmObjectStore::open(dev, LsmOptions::tiny()).unwrap();
        assert_eq!(s2.raw_chunks.len(), 1, "raw map rebuilt from LSM records");
        assert_eq!(
            s2.read(oid(1), 0, chunk).unwrap(),
            vec![0x55; chunk as usize]
        );
        assert_eq!(s2.read(oid(2), 0, 1000).unwrap(), vec![0x66; 1000]);
        // New allocations must not collide with the recovered raw segment.
        s2.submit(write_txn(3, oid(3), 0, vec![0x77; chunk as usize]))
            .unwrap();
        assert_eq!(
            s2.read(oid(1), 0, chunk).unwrap(),
            vec![0x55; chunk as usize]
        );
    }

    #[test]
    fn delete_frees_raw_segments() {
        let mut s = store();
        let chunk = s.db().segment_bytes();
        s.submit(write_txn(1, oid(1), 0, vec![0x88; (chunk * 3) as usize]))
            .unwrap();
        assert_eq!(s.raw_chunks.len(), 3);
        s.submit(Transaction::new(
            GroupId(0),
            2,
            vec![Op::Delete { oid: oid(1) }],
        ))
        .unwrap();
        assert!(s.raw_chunks.is_empty());
        assert_eq!(s.read(oid(1), 0, 1), Err(StoreError::NotFound));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use rablock_storage::{GroupId, MemDisk, TraceKind};

    #[test]
    fn repeated_reads_hit_the_cache_and_skip_the_device() {
        let mut s = LsmObjectStore::open(MemDisk::new(32 << 20), LsmOptions::tiny()).unwrap();
        let oid = ObjectId::new(GroupId(0), 1);
        s.submit(Transaction::new(
            GroupId(0),
            1,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![9u8; 4096].into(),
            }],
        ))
        .unwrap();
        // Force the block out of the memtable onto the device, then drop
        // the write-through cache entry to start cold.
        s.db.flush_all().unwrap();
        s.cache.invalidate(&data_key(oid, 0, 0));
        let _ = s.take_trace();

        // Cold read: hits the device.
        assert_eq!(s.read(oid, 0, 4096).unwrap(), vec![9u8; 4096]);
        let cold: u64 = s
            .take_trace()
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::Read))
            .map(|t| t.bytes)
            .sum();
        assert!(cold > 0, "cold read touched the device");

        // Warm read: served from the cache, no device I/O.
        assert_eq!(s.read(oid, 0, 4096).unwrap(), vec![9u8; 4096]);
        let warm: u64 = s
            .take_trace()
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::Read))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(warm, 0, "warm read skipped the device");
        let (hits, _) = s.cache.stats();
        assert!(hits >= 1);
    }

    #[test]
    fn cache_never_serves_stale_data_after_overwrite() {
        let mut s = LsmObjectStore::open(MemDisk::new(32 << 20), LsmOptions::tiny()).unwrap();
        let oid = ObjectId::new(GroupId(0), 2);
        for round in 0..20u8 {
            s.submit(Transaction::new(
                GroupId(0),
                round as u64 + 1,
                vec![Op::Write {
                    oid,
                    offset: 0,
                    data: vec![round; 4096].into(),
                }],
            ))
            .unwrap();
            assert_eq!(
                s.read(oid, 0, 4096).unwrap(),
                vec![round; 4096],
                "round {round}"
            );
        }
    }
}
