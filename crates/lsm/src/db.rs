//! The log-structured merge database: WAL + memtables + leveled SSTs.
//!
//! This is the RocksDB stand-in inside the BlueStore-like backend: writes
//! land in the WAL and the memtable; sealed memtables flush to L0 sorted
//! runs; background compaction merges runs down the level hierarchy. Every
//! device byte is traced by category, which is what makes the paper's
//! write-amplification measurements (Table I, Fig. 8) fall out of real
//! mechanics instead of constants.

use std::collections::{BTreeMap, VecDeque};

use rablock_storage::{
    BlockDevice, IoCategory, MaintenanceReport, StoreError, StoreStats, TraceIo, TraceKind,
};

use crate::alloc::SegAlloc;
use crate::memtable::Memtable;
use crate::options::LsmOptions;
use crate::sst::{build_sst, load_index, sst_get, SegGeometry, Sst};
use crate::util::{crc32, put_bytes, put_u32, put_u64, Cursor};
use crate::wal::Wal;

const MANIFEST_MAGIC: u32 = 0x4D41_4E46; // "MANF"

/// One write in a batch: key plus value (`None` = delete).
pub type BatchEntry = (Vec<u8>, Option<Vec<u8>>);

/// An LSM key-value database over a raw block device.
///
/// ```
/// use rablock_lsm::{Db, LsmOptions};
/// use rablock_storage::MemDisk;
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut db = Db::open(MemDisk::new(8 << 20), LsmOptions::tiny())?;
/// db.apply(&[(b"k".to_vec(), Some(b"v".to_vec()))])?;
/// assert_eq!(db.get(b"k")?, Some(b"v".to_vec()));
/// # Ok(())
/// # }
/// ```
pub struct Db<D: BlockDevice> {
    dev: D,
    pub(crate) opts: LsmOptions,
    geom: SegGeometry,
    wal: Wal,
    alloc: SegAlloc,
    mem: Memtable,
    mem_epoch: u64,
    immutables: VecDeque<(u64, Memtable)>,
    /// `levels[0]` is newest-first; deeper levels are sorted by `min_key`
    /// and non-overlapping.
    pub(crate) levels: Vec<Vec<Sst>>,
    next_sst_id: u64,
    manifest_version: u64,
    replay_from: u64,
    pub(crate) compact_cursor: Vec<usize>,
    /// Segments holding raw (non-LSM) data, persisted in the manifest so
    /// recovery never re-allocates them.
    raw_segments: std::collections::BTreeSet<u32>,
    trace: Vec<TraceIo>,
    stats: StoreStats,
    /// Times a writer had to wait for a synchronous flush (stall).
    pub stalls: u64,
}

impl<D: BlockDevice> Db<D> {
    /// Opens (or formats) a database on `dev`.
    ///
    /// If a valid manifest is present, state is recovered: SST indexes are
    /// reloaded and the WAL is replayed into a fresh memtable.
    ///
    /// # Errors
    ///
    /// Fails if the device is too small for the configured regions, or on
    /// unreadable/corrupt persistent state.
    pub fn open(dev: D, opts: LsmOptions) -> Result<Self, StoreError> {
        let fixed = opts.manifest_slot_bytes * 2 + opts.wal_bytes;
        if dev.capacity() < fixed + opts.segment_bytes * 4 {
            return Err(StoreError::InvalidArgument(format!(
                "device of {} bytes too small for LSM regions of {} bytes",
                dev.capacity(),
                fixed
            )));
        }
        let seg_region_off = fixed;
        let seg_count = ((dev.capacity() - seg_region_off) / opts.segment_bytes) as usize;
        let geom = SegGeometry {
            region_off: seg_region_off,
            segment_bytes: opts.segment_bytes,
        };
        let mut db = Db {
            dev,
            geom,
            wal: Wal::new(opts.manifest_slot_bytes * 2, opts.wal_bytes, 1),
            alloc: SegAlloc::new(seg_count),
            mem: Memtable::new(),
            mem_epoch: 1,
            immutables: VecDeque::new(),
            levels: vec![Vec::new(); opts.levels],
            next_sst_id: 1,
            manifest_version: 0,
            replay_from: 1,
            compact_cursor: vec![0; opts.levels],
            raw_segments: std::collections::BTreeSet::new(),
            trace: Vec::new(),
            stats: StoreStats::default(),
            stalls: 0,
            opts,
        };
        db.recover()?;
        Ok(db)
    }

    /// The configured options.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// Immutable access to the device (counters, snapshots in tests).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Consumes the database, returning the device (crash-injection tests).
    pub fn into_device(self) -> D {
        self.dev
    }

    fn record(&mut self, io: TraceIo) {
        self.stats.record(io);
        self.trace.push(io);
    }

    /// Applies an atomic batch: one WAL record, then memtable inserts.
    ///
    /// # Errors
    ///
    /// Propagates device errors; allocation exhaustion surfaces as
    /// [`StoreError::NoSpace`].
    pub fn apply(&mut self, batch: &[BatchEntry]) -> Result<(), StoreError> {
        let cap: usize = batch
            .iter()
            .map(|(k, v)| 9 + k.len() + v.as_ref().map_or(0, |v| 4 + v.len()))
            .sum::<usize>()
            + 4;
        let mut payload = Vec::with_capacity(cap);
        put_u32(&mut payload, batch.len() as u32);
        for (k, v) in batch {
            match v {
                Some(value) => {
                    payload.push(0);
                    put_bytes(&mut payload, k);
                    put_bytes(&mut payload, value);
                }
                None => {
                    payload.push(1);
                    put_bytes(&mut payload, k);
                }
            }
        }
        let written = match self.wal.append(&mut self.dev, &payload) {
            Ok(n) => n,
            Err(StoreError::NoSpace) => {
                // WAL exhausted: flush everything and reset (write stall).
                self.stalls += 1;
                self.flush_all()?;
                self.wal.append(&mut self.dev, &payload)?
            }
            Err(e) => return Err(e),
        };
        self.record(TraceIo {
            kind: TraceKind::Write,
            bytes: written,
            category: IoCategory::Wal,
        });
        self.record(TraceIo {
            kind: TraceKind::Flush,
            bytes: 0,
            category: IoCategory::Wal,
        });
        for (k, v) in batch {
            self.mem.insert(k.clone(), v.clone());
        }
        self.maybe_seal()?;
        Ok(())
    }

    fn maybe_seal(&mut self) -> Result<(), StoreError> {
        if self.mem.approx_bytes() < self.opts.memtable_bytes {
            return Ok(());
        }
        let sealed = std::mem::take(&mut self.mem);
        let epoch = self.mem_epoch;
        self.immutables.push_back((epoch, sealed));
        self.wal.advance_epoch();
        self.mem_epoch = self.wal.current_epoch;
        if self.immutables.len() > self.opts.max_immutables {
            // Writers outran maintenance: stall on a synchronous flush.
            self.stalls += 1;
            self.flush_oldest()?;
        }
        Ok(())
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Propagates device errors and corruption.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(hit) = self.mem.get(key) {
            return Ok(hit.cloned());
        }
        for (_, imm) in self.immutables.iter().rev() {
            if let Some(hit) = imm.get(key) {
                return Ok(hit.cloned());
            }
        }
        let geom = self.geom;
        let mut tmp = Vec::new();
        let mut hit_result = None;
        {
            let dev = &mut self.dev;
            // L0: newest first, ranges overlap.
            for sst in &self.levels[0] {
                if let Some(hit) = sst_get(dev, geom, sst, key, &mut tmp)? {
                    hit_result = Some(hit);
                    break;
                }
            }
            if hit_result.is_none() {
                // Deeper levels: non-overlapping, binary search by range.
                for level in &self.levels[1..] {
                    let idx = level.partition_point(|s| s.max_key.as_slice() < key);
                    if idx < level.len() && level[idx].covers(key) {
                        if let Some(hit) = sst_get(dev, geom, &level[idx], key, &mut tmp)? {
                            hit_result = Some(hit);
                            break;
                        }
                    }
                }
            }
        }
        for io in tmp {
            self.record(io);
        }
        // A tombstone hit (`Some(None)`) and a miss both read as absent.
        Ok(hit_result.flatten())
    }

    /// True if sealed memtables await flushing or a compaction is due.
    pub fn needs_maintenance(&self) -> bool {
        !self.immutables.is_empty() || self.needs_compaction()
    }

    /// Performs one bounded maintenance step: flush one memtable if any is
    /// sealed, otherwise one compaction.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn maintenance(&mut self) -> Result<MaintenanceReport, StoreError> {
        if !self.immutables.is_empty() {
            let before = self.stats;
            self.flush_oldest()?;
            let after = self.stats;
            return Ok(MaintenanceReport {
                bytes_read: after.read_bytes - before.read_bytes,
                bytes_written: after.total_written() - before.total_written(),
                did_work: true,
            });
        }
        if self.needs_compaction() {
            return self.compact_once();
        }
        Ok(MaintenanceReport::default())
    }

    /// Seals and flushes everything buffered in memory.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn flush_all(&mut self) -> Result<(), StoreError> {
        if !self.mem.is_empty() {
            let sealed = std::mem::take(&mut self.mem);
            self.immutables.push_back((self.mem_epoch, sealed));
            self.wal.advance_epoch();
            self.mem_epoch = self.wal.current_epoch;
        }
        while !self.immutables.is_empty() {
            self.flush_oldest()?;
        }
        Ok(())
    }

    fn flush_oldest(&mut self) -> Result<(), StoreError> {
        let Some((epoch, imm)) = self.immutables.pop_front() else {
            return Ok(());
        };
        let records: Vec<BatchEntry> = imm.into_entries().into_iter().collect();
        if !records.is_empty() {
            let id = self.next_sst_id;
            self.next_sst_id += 1;
            let mut trace = Vec::new();
            let sst = build_sst(
                &mut self.dev,
                &mut self.alloc,
                self.geom,
                id,
                &records,
                self.opts.block_bytes,
                IoCategory::MemtableFlush,
                &mut trace,
            )?;
            for io in trace {
                self.record(io);
            }
            self.levels[0].insert(0, sst);
        }
        self.replay_from = epoch + 1;
        if self.immutables.is_empty() && self.mem.is_empty() {
            self.wal.reset();
            self.mem_epoch = self.wal.current_epoch;
            self.replay_from = self.wal.base_epoch;
        }
        self.write_manifest()?;
        Ok(())
    }

    pub(crate) fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|s| s.len).sum()
    }

    pub(crate) fn build_output_ssts(
        &mut self,
        merged: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    ) -> Result<Vec<Sst>, StoreError> {
        let mut outputs = Vec::new();
        let mut run: Vec<BatchEntry> = Vec::new();
        let mut run_bytes = 0u64;
        let flush_run =
            |db: &mut Self, run: &mut Vec<BatchEntry>| -> Result<Option<Sst>, StoreError> {
                if run.is_empty() {
                    return Ok(None);
                }
                let id = db.next_sst_id;
                db.next_sst_id += 1;
                let mut trace = Vec::new();
                let sst = build_sst(
                    &mut db.dev,
                    &mut db.alloc,
                    db.geom,
                    id,
                    run,
                    db.opts.block_bytes,
                    IoCategory::Compaction,
                    &mut trace,
                )?;
                for io in trace {
                    db.record(io);
                }
                run.clear();
                Ok(Some(sst))
            };
        for (k, v) in merged {
            run_bytes += (k.len() + v.as_ref().map_or(0, Vec::len) + 16) as u64;
            run.push((k, v));
            if run_bytes >= self.opts.sst_max_bytes {
                if let Some(sst) = flush_run(self, &mut run)? {
                    outputs.push(sst);
                }
                run_bytes = 0;
            }
        }
        if let Some(sst) = flush_run(self, &mut run)? {
            outputs.push(sst);
        }
        Ok(outputs)
    }

    /// Reads every record of `sst`, recording compaction-read trace I/Os.
    pub(crate) fn scan_sst(&mut self, sst: &Sst) -> Result<Vec<BatchEntry>, StoreError> {
        let mut tmp = Vec::new();
        let records = crate::sst::sst_scan(&mut self.dev, self.geom, sst, &mut tmp)?;
        for io in tmp {
            self.record(io);
        }
        Ok(records)
    }

    pub(crate) fn free_sst(&mut self, sst: &Sst) {
        for &seg in &sst.segments {
            self.alloc.free(seg);
        }
    }

    /// Serializes and checkpoints the manifest into the alternate slot.
    pub(crate) fn write_manifest(&mut self) -> Result<(), StoreError> {
        self.manifest_version += 1;
        let mut body = Vec::new();
        put_u32(&mut body, MANIFEST_MAGIC);
        put_u64(&mut body, self.manifest_version);
        put_u64(&mut body, self.next_sst_id);
        put_u64(&mut body, self.wal.base_epoch);
        put_u64(&mut body, self.wal.current_epoch);
        put_u64(&mut body, self.replay_from);
        put_u32(&mut body, self.levels.len() as u32);
        for level in &self.levels {
            put_u32(&mut body, level.len() as u32);
            for sst in level {
                put_u64(&mut body, sst.id);
                put_u64(&mut body, sst.len);
                put_u64(&mut body, sst.entries);
                put_u32(&mut body, sst.segments.len() as u32);
                for &seg in &sst.segments {
                    put_u32(&mut body, seg);
                }
                put_bytes(&mut body, &sst.min_key);
                put_bytes(&mut body, &sst.max_key);
            }
        }
        put_u32(&mut body, self.raw_segments.len() as u32);
        for &seg in &self.raw_segments {
            put_u32(&mut body, seg);
        }
        let mut framed = Vec::with_capacity(body.len() + 8);
        put_u32(&mut framed, body.len() as u32);
        put_u32(&mut framed, crc32(&body));
        framed.extend_from_slice(&body);
        if framed.len() as u64 > self.opts.manifest_slot_bytes {
            return Err(StoreError::Corrupt(format!(
                "manifest of {} bytes exceeds slot of {}",
                framed.len(),
                self.opts.manifest_slot_bytes
            )));
        }
        let slot = (self.manifest_version % 2) * self.opts.manifest_slot_bytes;
        self.dev.write_at(slot, &framed)?;
        self.dev.flush()?;
        self.record(TraceIo {
            kind: TraceKind::Write,
            bytes: framed.len() as u64,
            category: IoCategory::Superblock,
        });
        self.record(TraceIo {
            kind: TraceKind::Flush,
            bytes: 0,
            category: IoCategory::Superblock,
        });
        Ok(())
    }

    fn read_manifest_slot(&mut self, slot: u64) -> Option<Vec<u8>> {
        let mut framed = vec![0u8; self.opts.manifest_slot_bytes as usize];
        self.dev
            .read_at(slot * self.opts.manifest_slot_bytes, &mut framed)
            .ok()?;
        let mut cur = Cursor::new(&framed);
        let len = cur.get_u32()? as usize;
        let stored_crc = cur.get_u32()?;
        if len + 8 > framed.len() {
            return None;
        }
        let body = &framed[8..8 + len];
        if crc32(body) != stored_crc {
            return None;
        }
        let mut check = Cursor::new(body);
        if check.get_u32()? != MANIFEST_MAGIC {
            return None;
        }
        Some(body.to_vec())
    }

    fn recover(&mut self) -> Result<(), StoreError> {
        let a = self.read_manifest_slot(0);
        let b = self.read_manifest_slot(1);
        let version_of = |body: &Vec<u8>| {
            let mut c = Cursor::new(body);
            c.get_u32();
            c.get_u64().unwrap_or(0)
        };
        let chosen = match (a, b) {
            (Some(x), Some(y)) => Some(if version_of(&x) >= version_of(&y) {
                x
            } else {
                y
            }),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        };
        let Some(body) = chosen else {
            // Fresh device: persist an initial manifest so reopen sees one.
            return self.write_manifest();
        };
        let mut cur = Cursor::new(&body);
        cur.get_u32(); // magic, verified
        self.manifest_version = cur.get_u64().ok_or_else(trunc)?;
        self.next_sst_id = cur.get_u64().ok_or_else(trunc)?;
        let base_epoch = cur.get_u64().ok_or_else(trunc)?;
        let current_epoch = cur.get_u64().ok_or_else(trunc)?;
        self.replay_from = cur.get_u64().ok_or_else(trunc)?;
        self.wal = Wal::new(
            self.opts.manifest_slot_bytes * 2,
            self.opts.wal_bytes,
            base_epoch,
        );
        let levels = cur.get_u32().ok_or_else(trunc)? as usize;
        if levels != self.opts.levels {
            return Err(StoreError::Corrupt(format!(
                "manifest has {levels} levels, options expect {}",
                self.opts.levels
            )));
        }
        for level in 0..levels {
            let n = cur.get_u32().ok_or_else(trunc)? as usize;
            for _ in 0..n {
                let id = cur.get_u64().ok_or_else(trunc)?;
                let len = cur.get_u64().ok_or_else(trunc)?;
                let entries = cur.get_u64().ok_or_else(trunc)?;
                let nseg = cur.get_u32().ok_or_else(trunc)? as usize;
                let mut segments = Vec::with_capacity(nseg);
                for _ in 0..nseg {
                    segments.push(cur.get_u32().ok_or_else(trunc)?);
                }
                let min_key = cur.get_bytes().ok_or_else(trunc)?.to_vec();
                let max_key = cur.get_bytes().ok_or_else(trunc)?.to_vec();
                let mut sst = Sst {
                    id,
                    segments,
                    len,
                    min_key,
                    max_key,
                    entries,
                    index: Vec::new(),
                    bloom: crate::bloom::Bloom::build(std::iter::empty(), 0, 10),
                };
                for &seg in &sst.segments {
                    self.alloc.mark_used(seg);
                }
                load_index(&mut self.dev, self.geom, &mut sst)?;
                self.levels[level].push(sst);
            }
        }
        let raw_count = cur.get_u32().ok_or_else(trunc)? as usize;
        for _ in 0..raw_count {
            let seg = cur.get_u32().ok_or_else(trunc)?;
            self.alloc.mark_used(seg);
            self.raw_segments.insert(seg);
        }
        // Replay the WAL into a fresh memtable. Records are (epoch, batch).
        let records = self.wal.scan(&mut self.dev)?;
        let mut replay_bytes = 0u64;
        let mut max_epoch = current_epoch;
        for (epoch, payload) in records {
            replay_bytes += payload.len() as u64;
            max_epoch = max_epoch.max(epoch);
            if epoch < self.replay_from {
                continue; // already flushed to an SST
            }
            let mut c = Cursor::new(&payload);
            let n = c.get_u32().ok_or_else(trunc)?;
            for _ in 0..n {
                let flag = c.get_bytes_raw(1).ok_or_else(trunc)?[0];
                let key = c.get_bytes().ok_or_else(trunc)?.to_vec();
                let value = if flag == 0 {
                    Some(c.get_bytes().ok_or_else(trunc)?.to_vec())
                } else {
                    None
                };
                self.mem.insert(key, value);
            }
        }
        let _ = replay_bytes;
        self.record(TraceIo {
            kind: TraceKind::Read,
            bytes: self.opts.wal_bytes,
            category: IoCategory::Wal,
        });
        // Recovery policy: flush the replayed data straight to an SST and
        // restart the WAL from a clean slate. Recovery is rare, so trading a
        // small flush for a much simpler "resume appending mid-region"
        // protocol is the right call.
        self.wal.current_epoch = max_epoch;
        self.mem_epoch = max_epoch;
        if !self.mem.is_empty() {
            self.immutables
                .push_back((self.mem_epoch, std::mem::take(&mut self.mem)));
            self.wal.advance_epoch();
            self.mem_epoch = self.wal.current_epoch;
            self.flush_oldest()?;
        }
        self.wal.reset();
        self.mem_epoch = self.wal.current_epoch;
        self.replay_from = self.wal.base_epoch;
        self.write_manifest()?;
        Ok(())
    }

    /// Allocates `n` raw segments for data stored outside the LSM (the
    /// BlueStore-style large-write path).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when the segment area is exhausted.
    pub fn alloc_segments(&mut self, n: usize) -> Result<Vec<u32>, StoreError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc.alloc() {
                Ok(s) => out.push(s),
                Err(e) => {
                    for s in out {
                        self.alloc.free(s);
                    }
                    return Err(e);
                }
            }
        }
        self.raw_segments.extend(out.iter().copied());
        self.write_manifest()?;
        Ok(out)
    }

    /// Frees a raw segment back to the allocator.
    ///
    /// # Errors
    ///
    /// Propagates manifest-write errors.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free_segment(&mut self, seg: u32) -> Result<(), StoreError> {
        assert!(
            self.raw_segments.remove(&seg),
            "freeing a non-raw segment {seg}"
        );
        self.alloc.free(seg);
        self.write_manifest()
    }

    /// Segment size in bytes (raw-path granularity).
    pub fn segment_bytes(&self) -> u64 {
        self.opts.segment_bytes
    }

    /// Writes `data` into raw segment `seg` at `offset` (in place, traced
    /// as a data write).
    ///
    /// # Errors
    ///
    /// Propagates device errors; the range must fit in the segment.
    pub fn raw_write(&mut self, seg: u32, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        if offset + data.len() as u64 > self.opts.segment_bytes {
            return Err(StoreError::OutOfBounds {
                offset,
                len: data.len() as u64,
                capacity: self.opts.segment_bytes,
            });
        }
        let dev_off = self.geom.region_off + seg as u64 * self.opts.segment_bytes + offset;
        self.dev.write_at(dev_off, data)?;
        self.dev.flush()?;
        self.record(TraceIo {
            kind: TraceKind::Write,
            bytes: data.len() as u64,
            category: IoCategory::Data,
        });
        self.record(TraceIo {
            kind: TraceKind::Flush,
            bytes: 0,
            category: IoCategory::Data,
        });
        Ok(())
    }

    /// Reads from raw segment `seg`.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the range must fit in the segment.
    pub fn raw_read(&mut self, seg: u32, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        if offset + len > self.opts.segment_bytes {
            return Err(StoreError::OutOfBounds {
                offset,
                len,
                capacity: self.opts.segment_bytes,
            });
        }
        let mut out = vec![0u8; len as usize];
        let dev_off = self.geom.region_off + seg as u64 * self.opts.segment_bytes + offset;
        self.dev.read_at(dev_off, &mut out)?;
        self.record(TraceIo {
            kind: TraceKind::Read,
            bytes: len,
            category: IoCategory::Data,
        });
        Ok(out)
    }

    /// Collects every live `(key, value)` whose key starts with `prefix`,
    /// newest version wins (used at open to rebuild in-memory indexes).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    #[allow(clippy::type_complexity)]
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest to newest: deep levels, then L1.., then L0 back-to-front,
        // then immutables, then the memtable.
        for level in (1..self.levels.len()).rev() {
            for sst in self.levels[level].clone() {
                for (k, v) in self.scan_sst(&sst)? {
                    if k.starts_with(prefix) {
                        merged.insert(k, v);
                    }
                }
            }
        }
        for sst in self.levels[0].clone().into_iter().rev() {
            for (k, v) in self.scan_sst(&sst)? {
                if k.starts_with(prefix) {
                    merged.insert(k, v);
                }
            }
        }
        for (_, imm) in self.immutables.iter() {
            for (k, v) in imm.iter() {
                if k.starts_with(prefix) {
                    merged.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in self.mem.iter() {
            if k.starts_with(prefix) {
                merged.insert(k.clone(), v.clone());
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Drains traced device I/Os since the previous call.
    pub fn take_trace(&mut self) -> Vec<TraceIo> {
        std::mem::take(&mut self.trace)
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Resets traffic statistics (keeps state).
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Number of SSTs per level (diagnostics).
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }
}

fn trunc() -> StoreError {
    StoreError::Corrupt("truncated manifest or wal record".into())
}

impl<D: BlockDevice> std::fmt::Debug for Db<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("levels", &self.level_file_counts())
            .field("mem_bytes", &self.mem.approx_bytes())
            .field("immutables", &self.immutables.len())
            .field("stalls", &self.stalls)
            .finish()
    }
}
