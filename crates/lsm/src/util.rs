//! Encoding helpers: CRC32 and little-endian record framing.

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Used to detect torn or partial records in the WAL and SST footers.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
    // per iteration instead of one. Identical output to the classic
    // byte-at-a-time form (same polynomial, same reflection).
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte slice (`u32` length).
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

/// A cursor for decoding the formats written by the `put_*` helpers.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a `u32`; `None` if truncated.
    pub fn get_u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        if end > self.data.len() {
            return None;
        }
        let v = u32::from_le_bytes(self.data[self.pos..end].try_into().unwrap());
        self.pos = end;
        Some(v)
    }

    /// Reads a `u64`; `None` if truncated.
    pub fn get_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        if end > self.data.len() {
            return None;
        }
        let v = u64::from_le_bytes(self.data[self.pos..end].try_into().unwrap());
        self.pos = end;
        Some(v)
    }

    /// Reads `n` raw bytes (no length prefix); `None` if truncated.
    pub fn get_bytes_raw(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads a length-prefixed byte slice; `None` if truncated.
    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.get_u32()? as usize;
        let end = self.pos.checked_add(len)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn cursor_round_trips() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_bytes(&mut buf, b"payload");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_u32(), Some(7));
        assert_eq!(c.get_u64(), Some(u64::MAX - 3));
        assert_eq!(c.get_bytes(), Some(&b"payload"[..]));
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn cursor_handles_truncation() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"abcdef");
        let mut c = Cursor::new(&buf[..buf.len() - 2]);
        assert_eq!(c.get_bytes(), None);
        let mut c2 = Cursor::new(&buf[..2]);
        assert_eq!(c2.get_u32(), None);
    }
}
