//! LRU block cache for the BlueStore-like store.
//!
//! BlueStore keeps recently accessed object data in an in-memory cache; the
//! paper leans on it when analyzing YCSB ("most of the reads hit the cache
//! in the object store", §V-E). This is that cache: an LRU over data-block
//! keys with a byte-capacity bound, write-through on updates.

use std::collections::HashMap;

/// A byte-bounded LRU cache from block keys to block contents.
#[derive(Debug)]
pub struct BlockCache {
    capacity_bytes: usize,
    used_bytes: usize,
    map: HashMap<Vec<u8>, (Vec<u8>, u64)>,
    /// LRU ordering by a monotone tick (simple and allocation-free; scans
    /// only on eviction, which is rare relative to hits).
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// A cache holding at most `capacity_bytes` of block data. A zero
    /// capacity disables caching entirely.
    pub fn new(capacity_bytes: usize) -> Self {
        BlockCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a block, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, at)) => {
                *at = tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces a block (write-through from the store).
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        if self.capacity_bytes == 0 || value.len() > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some((old, at)) = self.map.get_mut(&key) {
            self.used_bytes = self.used_bytes - old.len() + value.len();
            *old = value;
            *at = self.tick;
        } else {
            self.used_bytes += value.len() + key.len();
            self.map.insert(key, (value, self.tick));
        }
        while self.used_bytes > self.capacity_bytes {
            self.evict_oldest();
        }
    }

    /// Drops a block (the backing data was invalidated).
    pub fn invalidate(&mut self, key: &[u8]) {
        if let Some((value, _)) = self.map.remove(key) {
            self.used_bytes -= value.len() + key.len();
        }
    }

    fn evict_oldest(&mut self) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (_, at))| *at)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.invalidate(&k);
        } else {
            self.used_bytes = 0;
        }
    }

    /// Resident bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = BlockCache::new(1 << 20);
        c.put(b"k".to_vec(), vec![7; 100]);
        assert_eq!(c.get(b"k"), Some(vec![7; 100]));
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn eviction_is_lru_and_respects_capacity() {
        let mut c = BlockCache::new(350);
        c.put(b"a".to_vec(), vec![1; 100]);
        c.put(b"b".to_vec(), vec![2; 100]);
        c.put(b"c".to_vec(), vec![3; 100]);
        // Touch "a" so "b" is now the oldest.
        assert!(c.get(b"a").is_some());
        c.put(b"d".to_vec(), vec![4; 100]);
        assert!(c.get(b"b").is_none(), "oldest evicted");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"d").is_some());
        assert!(c.used_bytes() <= 350);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = BlockCache::new(1 << 10);
        c.put(b"k".to_vec(), vec![1; 64]);
        c.invalidate(b"k");
        assert_eq!(c.get(b"k"), None);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = BlockCache::new(0);
        c.put(b"k".to_vec(), vec![1; 8]);
        assert_eq!(c.get(b"k"), None);
    }

    #[test]
    fn overwrite_updates_value_and_size() {
        let mut c = BlockCache::new(1 << 10);
        c.put(b"k".to_vec(), vec![1; 100]);
        c.put(b"k".to_vec(), vec![2; 10]);
        assert_eq!(c.get(b"k"), Some(vec![2; 10]));
        assert!(c.used_bytes() < 100);
    }
}
