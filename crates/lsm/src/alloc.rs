//! Segment allocator for SST storage.
//!
//! The device area behind the WAL and manifest regions is divided into
//! fixed-size segments; SST files occupy an ordered list of segments. A
//! simple next-fit bitmap is plenty — fragmentation is irrelevant because
//! every allocation is exactly one segment.

use rablock_storage::StoreError;

/// Bitmap allocator over `count` equal segments.
#[derive(Debug, Clone)]
pub struct SegAlloc {
    used: Vec<bool>,
    free: usize,
    cursor: usize,
}

impl SegAlloc {
    /// Creates an allocator with all `count` segments free.
    pub fn new(count: usize) -> Self {
        SegAlloc {
            used: vec![false; count],
            free: count,
            cursor: 0,
        }
    }

    /// Number of free segments.
    #[allow(dead_code)] // part of the allocator's natural API; used by tests
    pub fn free_segments(&self) -> usize {
        self.free
    }

    /// Total segments.
    #[allow(dead_code)] // part of the allocator's natural API
    pub fn total_segments(&self) -> usize {
        self.used.len()
    }

    /// Allocates one segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when every segment is in use.
    pub fn alloc(&mut self) -> Result<u32, StoreError> {
        if self.free == 0 {
            return Err(StoreError::NoSpace);
        }
        for probe in 0..self.used.len() {
            let idx = (self.cursor + probe) % self.used.len();
            if !self.used[idx] {
                self.used[idx] = true;
                self.free -= 1;
                self.cursor = (idx + 1) % self.used.len();
                return Ok(idx as u32);
            }
        }
        unreachable!("free count positive but no free segment found");
    }

    /// Frees a segment.
    ///
    /// # Panics
    ///
    /// Panics on double-free or out-of-range ids — both are store bugs.
    pub fn free(&mut self, seg: u32) {
        let idx = seg as usize;
        assert!(self.used[idx], "double free of segment {seg}");
        self.used[idx] = false;
        self.free += 1;
    }

    /// Marks a segment as used during recovery (manifest replay).
    ///
    /// # Panics
    ///
    /// Panics if the segment is already marked used.
    pub fn mark_used(&mut self, seg: u32) {
        let idx = seg as usize;
        assert!(
            !self.used[idx],
            "segment {seg} claimed twice during recovery"
        );
        self.used[idx] = true;
        self.free -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut a = SegAlloc::new(4);
        let s0 = a.alloc().unwrap();
        let s1 = a.alloc().unwrap();
        assert_ne!(s0, s1);
        assert_eq!(a.free_segments(), 2);
        a.free(s0);
        assert_eq!(a.free_segments(), 3);
    }

    #[test]
    fn exhaustion_reports_no_space() {
        let mut a = SegAlloc::new(2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(StoreError::NoSpace));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = SegAlloc::new(2);
        let s = a.alloc().unwrap();
        a.free(s);
        a.free(s);
    }

    #[test]
    fn recovery_marking_is_respected() {
        let mut a = SegAlloc::new(3);
        a.mark_used(1);
        let s0 = a.alloc().unwrap();
        let s2 = a.alloc().unwrap();
        assert!(s0 != 1 && s2 != 1);
        assert_eq!(a.alloc(), Err(StoreError::NoSpace));
    }
}
