//! Block-device client over a live cluster.
//!
//! [`BlockImage`] exposes an RBD-like virtual block device: byte-addressed
//! reads and writes of any size and alignment, striped over the image's
//! objects, with strong consistency (a read always returns the latest
//! acknowledged write, wherever it currently lives — NVM operation log or
//! backend store).

use rablock_cluster::live_driver::{LiveClient, LiveCluster};
use rablock_storage::StoreError;

use crate::image::ImageSpec;

/// A handle to one block image on a running cluster.
pub struct BlockImage {
    spec: ImageSpec,
    client: LiveClient,
}

impl BlockImage {
    /// Creates (provisions) an image on the cluster: every backing object
    /// is pre-created at its fixed size, enabling the backend's
    /// pre-allocation fast path.
    ///
    /// # Errors
    ///
    /// Propagates backend errors (e.g. out of space).
    pub fn create(cluster: &LiveCluster, spec: ImageSpec) -> Result<Self, StoreError> {
        let client = cluster.client();
        for (oid, size) in spec.all_objects() {
            client.create(oid, size)?;
        }
        Ok(BlockImage { spec, client })
    }

    /// Opens an existing image without provisioning.
    pub fn open(cluster: &LiveCluster, spec: ImageSpec) -> Self {
        BlockImage {
            spec,
            client: cluster.client(),
        }
    }

    /// The image description.
    pub fn spec(&self) -> &ImageSpec {
        &self.spec
    }

    /// Writes `data` at byte `offset` of the image. Durable and replicated
    /// on return; writes spanning objects are split per object.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the image bounds (caller bug, like
    /// writing past a block device's end).
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let mut at = 0usize;
        for (oid, obj_off, len) in self.spec.extents(offset, data.len() as u64) {
            self.client
                .write(oid, obj_off, data[at..at + len as usize].to_vec())?;
            at += len as usize;
        }
        Ok(())
    }

    /// Reads `len` bytes at byte `offset` of the image.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the image bounds.
    pub fn read(&self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(len as usize);
        for (oid, obj_off, chunk) in self.spec.extents(offset, len) {
            out.extend_from_slice(&self.client.read(oid, obj_off, chunk)?);
        }
        Ok(out)
    }
}

impl BlockImage {
    /// Copies this image's full contents into a freshly provisioned image
    /// (§IV-C-7's versioning idea: versions are plain objects under another
    /// name — `OID:version` — so a snapshot is a named copy and rollback is
    /// the reverse copy; no log-structured layout required).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    ///
    /// # Panics
    ///
    /// Panics if `dest` has a different size than this image.
    pub fn snapshot_to(
        &self,
        cluster: &LiveCluster,
        dest: ImageSpec,
    ) -> Result<BlockImage, StoreError> {
        assert_eq!(
            dest.size, self.spec.size,
            "snapshot target must match the image size"
        );
        let snap = BlockImage::create(cluster, dest)?;
        self.copy_into(&snap)?;
        Ok(snap)
    }

    /// Rolls this image back to the contents of `snapshot`.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn rollback_from(&self, snapshot: &BlockImage) -> Result<(), StoreError> {
        assert_eq!(
            snapshot.spec.size, self.spec.size,
            "snapshot size must match"
        );
        snapshot.copy_into(self)
    }

    fn copy_into(&self, dest: &BlockImage) -> Result<(), StoreError> {
        let chunk = 1u64 << 20;
        let mut at = 0u64;
        while at < self.spec.size {
            let n = chunk.min(self.spec.size - at);
            let data = self.read(at, n)?;
            dest.write(at, &data)?;
            at += n;
        }
        Ok(())
    }
}

impl std::fmt::Debug for BlockImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockImage")
            .field("spec", &self.spec)
            .finish()
    }
}
