//! # rablock — a re-architected distributed block storage system
//!
//! A from-scratch Rust implementation of the system described in
//! *Re-architecting Distributed Block Storage System for Improving Random
//! Write Performance* (ICDCS 2021): a Ceph-like replicated object cluster
//! serving virtual block devices, rebuilt around three ideas:
//!
//! 1. **Decoupled operation processing** — writes are logged to an NVM
//!    operation log and acknowledged as soon as all replicas have logged
//!    them; a best-effort bottom half batch-flushes to the backend store
//!    (`rablock-oplog`).
//! 2. **Prioritized thread control** — latency-critical message/replication
//!    work runs on priority threads pinned to dedicated cores; storage
//!    processing runs on a non-priority pool (`rablock-cluster`).
//! 3. **A CPU-efficient object store** — in-place updates on a raw device,
//!    pre-allocated fixed-size objects, sharded partitions, and an NVM
//!    metadata cache, eliminating LSM compaction entirely (`rablock-cos`).
//!
//! Every baseline from the paper is included too: stock Ceph's thread-pool
//! OSD over a BlueStore-like LSM backend (`rablock-lsm`), and the
//! run-to-completion roofline variants.
//!
//! ## Quick start
//!
//! ```
//! use rablock::{BlockImage, ClusterBuilder, ImageSpec, PipelineMode};
//!
//! # fn main() -> Result<(), rablock::StoreError> {
//! // A 2-node cluster running the full proposed system.
//! let cluster = ClusterBuilder::new(PipelineMode::Dop)
//!     .nodes(2)
//!     .osds_per_node(1)
//!     .pg_count(16)
//!     .device_bytes(64 << 20)
//!     .start_live();
//!
//! // An 8 MiB virtual block device striped over 4 MiB objects.
//! let image = BlockImage::create(&cluster, ImageSpec::new(1, 8 << 20, 16))?;
//! image.write(4096, b"hello block storage")?;
//! assert_eq!(image.read(4096, 19)?, b"hello block storage");
//!
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! For the deterministic simulation used to regenerate the paper's figures,
//! see [`sim`] and the `rablock-bench` crate.

#![warn(missing_docs)]

mod client;
mod cluster;
mod image;
mod verify;

pub use client::BlockImage;
pub use cluster::ClusterBuilder;
pub use image::{ImageSpec, DEFAULT_OBJECT_BYTES};
pub use verify::ModelChecker;

pub use rablock_cluster::live_driver::{LiveClient, LiveCluster};
pub use rablock_cluster::osd::PipelineMode;
pub use rablock_storage::{GroupId, ObjectId, Payload, StoreError};

/// Deterministic cluster simulation (re-exported from `rablock-cluster`).
pub mod sim {
    pub use rablock_cluster::costs::CostModel;
    pub use rablock_cluster::invariants::HistoryChecker;
    pub use rablock_cluster::retry::RetryPolicy;
    pub use rablock_cluster::sim_driver::{
        ChurnOp, ClusterSim, ClusterSimConfig, ConnWorkload, SimReport, WorkItem, MON_NODE,
    };
    pub use rablock_sim::{
        chrome_trace_json, AttributionReport, BitRotSchedule, Component, CrashSchedule, FaultEvent,
        FaultPlan, GrayWindow, LatSummary, LinkFault, Partition, RotMedia, SchedulerKind,
        SimDuration, SimRng, SimTime, SlowOp, SsdState, TimeSeries, TraceId, Track,
    };
}
