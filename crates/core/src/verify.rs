//! Model-based consistency checking.
//!
//! [`ModelChecker`] drives a [`BlockImage`] with randomized operations while
//! mirroring them into a plain in-memory byte array, then cross-checks every
//! read. Strong consistency (§II-A: reads always return the most recent
//! write) reduces to byte equality against the model — if the operation log,
//! flush machinery, or backend ever served stale data, the model would
//! disagree.

use rablock_storage::StoreError;

use crate::client::BlockImage;

/// A byte-level model of one block image plus the checker around it.
pub struct ModelChecker {
    model: Vec<u8>,
    ops: u64,
}

impl ModelChecker {
    /// A fresh model for an image of `size` bytes (all zeroes, like a
    /// freshly provisioned image).
    pub fn new(size: u64) -> Self {
        ModelChecker {
            model: vec![0; size as usize],
            ops: 0,
        }
    }

    /// Operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Writes through both the image and the model.
    ///
    /// # Errors
    ///
    /// Propagates image errors.
    pub fn write(
        &mut self,
        image: &BlockImage,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        image.write(offset, data)?;
        self.model[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        self.ops += 1;
        Ok(())
    }

    /// Reads from the image and asserts it matches the model.
    ///
    /// # Errors
    ///
    /// Propagates image errors.
    ///
    /// # Panics
    ///
    /// Panics on any divergence — that is the point.
    pub fn read_check(
        &mut self,
        image: &BlockImage,
        offset: u64,
        len: u64,
    ) -> Result<(), StoreError> {
        let got = image.read(offset, len)?;
        let want = &self.model[offset as usize..(offset + len) as usize];
        assert_eq!(
            got,
            want,
            "consistency violation at [{offset}, {}) after {} ops",
            offset + len,
            self.ops
        );
        self.ops += 1;
        Ok(())
    }

    /// Reads back the whole image and checks every byte.
    ///
    /// # Errors
    ///
    /// Propagates image errors.
    pub fn full_check(&mut self, image: &BlockImage) -> Result<(), StoreError> {
        let len = self.model.len() as u64;
        let chunk = 1 << 20;
        let mut at = 0u64;
        while at < len {
            let n = chunk.min(len - at);
            self.read_check(image, at, n)?;
            at += n;
        }
        Ok(())
    }
}
