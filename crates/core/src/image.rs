//! Block images: virtual block devices striped over fixed-size objects.
//!
//! Like Ceph RBD (§II-B), a block image is a linear byte range striped over
//! fixed-size objects (4 MiB by default). Fixed object sizes are what make
//! the paper's pre-allocation technique possible: every object of an image
//! can be created (and its blocks allocated) at image-creation time, so
//! writes never update allocation metadata.

use rablock_storage::{GroupId, ObjectId};

/// Default object size for images (Ceph RBD's default).
pub const DEFAULT_OBJECT_BYTES: u64 = 4 << 20;

/// Description of one block image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageSpec {
    /// Image id (unique per cluster; at most 255 images).
    pub id: u8,
    /// Image size in bytes.
    pub size: u64,
    /// Object size (fixed; must divide nothing in particular but writes
    /// spanning objects are split).
    pub object_bytes: u64,
    /// Number of logical groups objects are hashed over.
    pub pg_count: u32,
}

impl ImageSpec {
    /// Creates an image spec with the default 4 MiB object size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `pg_count` is zero.
    pub fn new(id: u8, size: u64, pg_count: u32) -> Self {
        ImageSpec::with_object_size(id, size, pg_count, DEFAULT_OBJECT_BYTES)
    }

    /// Creates an image spec with an explicit object size.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or a zero group count.
    pub fn with_object_size(id: u8, size: u64, pg_count: u32, object_bytes: u64) -> Self {
        assert!(size > 0, "zero-sized image");
        assert!(object_bytes > 0, "zero object size");
        assert!(pg_count > 0, "zero groups");
        ImageSpec {
            id,
            size,
            object_bytes,
            pg_count,
        }
    }

    /// Number of objects backing this image.
    pub fn object_count(&self) -> u64 {
        self.size.div_ceil(self.object_bytes)
    }

    /// The object backing image-relative object index `idx`.
    ///
    /// The group is derived by hashing `(image, index)` so one image's
    /// objects spread over all groups, as CRUSH would.
    pub fn object(&self, idx: u64) -> ObjectId {
        assert!(idx < self.object_count(), "object index {idx} out of range");
        // splitmix64 over (image, idx) for group spread.
        let mut x = ((self.id as u64) << 40) ^ idx;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let group = GroupId((x ^ (x >> 31)) as u32 % self.pg_count);
        // Object index stays unique across images: image in the high byte.
        let index = ((self.id as u64) << 24) | idx;
        ObjectId::new(group, index)
    }

    /// Splits an image byte range into per-object extents:
    /// `(object, offset_within_object, length)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the image size or is empty.
    pub fn extents(&self, offset: u64, len: u64) -> Vec<(ObjectId, u64, u64)> {
        assert!(len > 0, "empty range");
        assert!(
            offset + len <= self.size,
            "range [{offset}, {}) exceeds image size {}",
            offset + len,
            self.size
        );
        let mut out = Vec::new();
        let mut at = offset;
        let end = offset + len;
        while at < end {
            let idx = at / self.object_bytes;
            let within = at % self.object_bytes;
            let chunk = (self.object_bytes - within).min(end - at);
            out.push((self.object(idx), within, chunk));
            at += chunk;
        }
        out
    }

    /// All objects of the image with their fixed size (provisioning).
    pub fn all_objects(&self) -> Vec<(ObjectId, u64)> {
        (0..self.object_count())
            .map(|i| (self.object(i), self.object_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ImageSpec {
        ImageSpec::with_object_size(1, 64 << 20, 32, 4 << 20)
    }

    #[test]
    fn object_count_rounds_up() {
        let s = ImageSpec::with_object_size(0, (4 << 20) * 3 + 1, 8, 4 << 20);
        assert_eq!(s.object_count(), 4);
    }

    #[test]
    fn extents_within_one_object() {
        let s = spec();
        let e = s.extents(4096, 8192);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].1, 4096);
        assert_eq!(e[0].2, 8192);
        assert_eq!(e[0].0, s.object(0));
    }

    #[test]
    fn extents_split_at_object_boundary() {
        let s = spec();
        let obj = s.object_bytes;
        let e = s.extents(obj - 1000, 3000);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0], (s.object(0), obj - 1000, 1000));
        assert_eq!(e[1], (s.object(1), 0, 2000));
    }

    #[test]
    fn extents_cover_exactly() {
        let s = spec();
        for (offset, len) in [(0u64, 1u64), (123, 10 << 20), (s.size - 5, 5)] {
            let e = s.extents(offset, len);
            let total: u64 = e.iter().map(|x| x.2).sum();
            assert_eq!(total, len, "offset {offset} len {len}");
        }
    }

    #[test]
    fn objects_spread_over_groups() {
        let s = spec();
        let mut groups: Vec<u32> = (0..s.object_count())
            .map(|i| s.object(i).group().0)
            .collect();
        groups.sort_unstable();
        groups.dedup();
        assert!(
            groups.len() > 4,
            "16 objects spread over >4 of 32 groups: {groups:?}"
        );
    }

    #[test]
    fn distinct_images_use_distinct_objects() {
        let a = ImageSpec::new(1, 8 << 20, 8);
        let b = ImageSpec::new(2, 8 << 20, 8);
        assert_ne!(a.object(0), b.object(0));
        assert_ne!(a.object(1).index(), b.object(1).index());
    }

    #[test]
    #[should_panic(expected = "exceeds image size")]
    fn out_of_range_rejected() {
        let s = spec();
        let _ = s.extents(s.size - 10, 11);
    }
}
