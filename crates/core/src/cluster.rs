//! Cluster construction.
//!
//! [`ClusterBuilder`] assembles a cluster in either execution substrate:
//! a [`LiveCluster`] of real OS threads for applications and examples, or a
//! [`ClusterSimConfig`] for the deterministic simulation used by the
//! benchmark harnesses.

use rablock_cluster::live_driver::LiveCluster;
use rablock_cluster::osd::{OsdConfig, PipelineMode};
use rablock_cluster::placement::OsdMap;
use rablock_cluster::sim_driver::ClusterSimConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

/// Builds `rablock` clusters.
///
/// ```
/// use rablock::{ClusterBuilder, PipelineMode};
///
/// let cluster = ClusterBuilder::new(PipelineMode::Dop)
///     .nodes(2)
///     .osds_per_node(1)
///     .pg_count(16)
///     .start_live();
/// cluster.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    mode: PipelineMode,
    nodes: u32,
    osds_per_node: u32,
    pg_count: u32,
    replication: usize,
    device_bytes: u64,
    nvm_bytes: u64,
    flush_threshold: usize,
    partitions: usize,
    pre_allocate: bool,
    metadata_cache: bool,
}

impl ClusterBuilder {
    /// Starts a builder for the given pipeline mode.
    pub fn new(mode: PipelineMode) -> Self {
        ClusterBuilder {
            mode,
            nodes: 4,
            osds_per_node: 2,
            pg_count: 32,
            replication: 2,
            device_bytes: 96 << 20,
            nvm_bytes: 16 << 20,
            flush_threshold: 16,
            partitions: 4,
            pre_allocate: true,
            metadata_cache: true,
        }
    }

    /// Number of storage nodes (failure domains).
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// OSD daemons per node.
    pub fn osds_per_node(mut self, n: u32) -> Self {
        self.osds_per_node = n;
        self
    }

    /// Number of logical groups (placement groups).
    pub fn pg_count(mut self, n: u32) -> Self {
        self.pg_count = n;
        self
    }

    /// Replication factor (the paper evaluates 2).
    pub fn replication(mut self, n: usize) -> Self {
        self.replication = n;
        self
    }

    /// Backend device capacity per OSD.
    pub fn device_bytes(mut self, n: u64) -> Self {
        self.device_bytes = n;
        self
    }

    /// NVM capacity per OSD for operation logs.
    pub fn nvm_bytes(mut self, n: u64) -> Self {
        self.nvm_bytes = n;
        self
    }

    /// Operation-log flush threshold (paper default 16).
    pub fn flush_threshold(mut self, n: usize) -> Self {
        self.flush_threshold = n;
        self
    }

    /// Sharded partitions per COS backend (Fig. 11 sweeps this).
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Toggle COS pre-allocation (Fig. 8 ablation).
    pub fn pre_allocate(mut self, on: bool) -> Self {
        self.pre_allocate = on;
        self
    }

    /// Toggle the COS NVM metadata cache (Fig. 8 ablation).
    pub fn metadata_cache(mut self, on: bool) -> Self {
        self.metadata_cache = on;
        self
    }

    /// The per-OSD configuration this builder describes.
    pub fn osd_config(&self) -> OsdConfig {
        OsdConfig {
            mode: self.mode,
            device_bytes: self.device_bytes,
            nvm_bytes: self.nvm_bytes,
            ring_bytes: (self.nvm_bytes / self.pg_count as u64).clamp(64 << 10, 512 << 10),
            flush_threshold: self.flush_threshold,
            lsm: LsmOptions::default(),
            cos: CosOptions {
                partitions: self.partitions,
                pre_allocate: self.pre_allocate,
                metadata_cache: self.metadata_cache,
                ..CosOptions::default()
            },
            ..OsdConfig::default()
        }
    }

    /// The cluster map this builder describes.
    pub fn map(&self) -> OsdMap {
        OsdMap::new(
            self.nodes,
            self.osds_per_node,
            self.pg_count,
            self.replication,
        )
    }

    /// Starts a live cluster of real OSD threads.
    pub fn start_live(&self) -> LiveCluster {
        LiveCluster::start(self.map(), self.osd_config())
    }

    /// Produces a simulation configuration with the same shape (benchmark
    /// harnesses add workloads and cost/threading overrides on top).
    pub fn sim_config(&self) -> ClusterSimConfig {
        let mut cfg = ClusterSimConfig::defaults(self.mode);
        cfg.nodes = self.nodes;
        cfg.osds_per_node = self.osds_per_node;
        cfg.pg_count = self.pg_count;
        cfg.replication = self.replication;
        cfg.osd = self.osd_config();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_into_configs() {
        let b = ClusterBuilder::new(PipelineMode::Dop)
            .nodes(3)
            .osds_per_node(2)
            .pg_count(24)
            .partitions(8)
            .flush_threshold(32);
        let osd = b.osd_config();
        assert_eq!(osd.flush_threshold, 32);
        assert_eq!(osd.cos.partitions, 8);
        let map = b.map();
        assert_eq!(map.osds.len(), 6);
        assert_eq!(map.pg_count, 24);
        let sim = b.sim_config();
        assert_eq!(sim.nodes, 3);
        assert_eq!(sim.osd.cos.partitions, 8);
    }

    #[test]
    fn ring_bytes_fit_in_nvm() {
        let b = ClusterBuilder::new(PipelineMode::Dop)
            .pg_count(64)
            .nvm_bytes(8 << 20);
        let osd = b.osd_config();
        assert!(osd.ring_bytes * 64 <= osd.nvm_bytes);
    }
}
