//! # rablock-workload — workload generators and measurement utilities
//!
//! The load half of the evaluation (§V): fio-style jobs ([`FioJob`]) for the
//! small-random and large-sequential experiments, YCSB core workloads A–F
//! ([`YcsbWorkload`]) with Zipfian/latest key skew, a constant-memory
//! latency histogram ([`LogHistogram`]), and plain-text/CSV report tables.

#![warn(missing_docs)]

mod fio;
mod histogram;
mod report;
mod ycsb;
mod zipf;

pub use fio::{AccessPattern, FioJob, WlKind, WlOp};
pub use histogram::LogHistogram;
pub use report::{fmt_bytes, fmt_iops, fmt_latency, Table};
pub use ycsb::{YcsbKind, YcsbOp, YcsbWorkload};
pub use zipf::{Latest, Zipfian, YCSB_THETA};
