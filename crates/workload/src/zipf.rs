//! Skewed key-choice distributions for YCSB.
//!
//! [`Zipfian`] is the standard YCSB generator (Gray et al.'s rejection-free
//! formula with θ = 0.99), scrambled so hot keys spread over the keyspace.
//! [`Latest`] skews toward recently inserted records (YCSB workload D).

use rand::Rng;

/// Default YCSB skew parameter.
pub const YCSB_THETA: f64 = 0.99;

/// A Zipfian-distributed generator over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    #[allow(dead_code)] // retained for incremental zeta updates (YCSB parity)
    zeta2: f64,
    scramble: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact up to a cutoff, then the standard integral approximation; YCSB
    // itself incrementally approximates for big n.
    const EXACT: u64 = 100_000;
    if n <= EXACT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let tail =
            ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        head + tail
    }
}

impl Zipfian {
    /// A scrambled Zipfian over `[0, n)` with the YCSB default θ.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        Zipfian::with_theta(n, YCSB_THETA, true)
    }

    /// Full control over skew and scrambling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or θ is not in `(0, 1)`.
    pub fn with_theta(n: u64, theta: f64, scramble: bool) -> Self {
        assert!(n > 0, "empty keyspace");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
            scramble,
        }
    }

    /// Draws a key.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        let raw = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let raw = raw.min(self.n - 1);
        if self.scramble {
            // FNV-style scramble, folded back into range (YCSB's
            // ScrambledZipfian approach).
            let mut h = raw ^ 0xCBF2_9CE4_8422_2325;
            h = h.wrapping_mul(0x100_0000_01B3);
            h ^= h >> 33;
            h % self.n
        } else {
            raw
        }
    }

    /// The keyspace size.
    pub fn n(&self) -> u64 {
        self.n
    }

    #[cfg(test)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// YCSB's "latest" distribution: Zipfian skew toward the most recent insert.
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
    max_key: u64,
}

impl Latest {
    /// Skews over the first `initial` records; grows as records insert.
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0`.
    pub fn new(initial: u64) -> Self {
        Latest {
            zipf: Zipfian::with_theta(initial, YCSB_THETA, false),
            max_key: initial,
        }
    }

    /// Notes that a new record was inserted (shifts the hot spot).
    pub fn inserted(&mut self) {
        self.max_key += 1;
        // YCSB recomputes incrementally; rebuilding is fine at our scale and
        // keeps the math obviously correct.
        if self.max_key.is_power_of_two() {
            self.zipf = Zipfian::with_theta(self.max_key, YCSB_THETA, false);
        }
    }

    /// Current number of records.
    pub fn record_count(&self) -> u64 {
        self.max_key
    }

    /// Draws a key, hottest at the most recent insert.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let back = self.zipf.next(rng).min(self.max_key - 1);
        self.max_key - 1 - back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::with_theta(10_000, YCSB_THETA, false);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 50_000;
        let hot = (0..n).filter(|_| z.next(&mut rng) < 100).count();
        // Top 1% of keys should draw far more than 1% of accesses.
        assert!(
            hot as f64 / n as f64 > 0.2,
            "hot share {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let z = Zipfian::new(10_000);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(z.next(&mut rng));
        }
        // Hot keys exist but are spread across the keyspace, not clustered
        // at the low end.
        let low = seen.iter().filter(|&&k| k < 100).count();
        assert!(
            low < seen.len() / 4,
            "low-end clustering: {low}/{}",
            seen.len()
        );
    }

    #[test]
    fn draws_stay_in_range() {
        let z = Zipfian::new(257);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 257);
        }
        assert!(z.zeta2() > 1.0);
    }

    #[test]
    fn latest_prefers_recent() {
        let mut l = Latest::new(1000);
        for _ in 0..24 {
            l.inserted();
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let recent = (0..n)
            .filter(|_| l.next(&mut rng) >= l.record_count() - 100)
            .count();
        assert!(
            recent as f64 / n as f64 > 0.3,
            "recent share {}",
            recent as f64 / n as f64
        );
    }

    #[test]
    fn large_keyspace_zeta_approximation_sane() {
        let z = Zipfian::with_theta(10_000_000, YCSB_THETA, false);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.next(&mut rng) < 10_000_000);
        }
    }
}
