//! YCSB core workloads A–F.
//!
//! The paper evaluates workloads A (50/50 update/read), B (95/5 read),
//! C (read-only), D (read-latest), and F (read-modify-write) over a block
//! device (§V-E), with small, *unaligned* records — which is what forces the
//! read-modify-write behaviour the paper highlights. Records are laid out
//! back-to-back over a linear byte space; record sizes default to 1000 bytes
//! so records straddle 4 KiB block boundaries exactly as in YCSB.

use rand::Rng;

use crate::fio::{WlKind, WlOp};
use crate::zipf::{Latest, Zipfian};

/// Which YCSB core workload to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum YcsbKind {
    /// 50% update / 50% read, Zipfian.
    A,
    /// 5% update / 95% read, Zipfian.
    B,
    /// 100% read, Zipfian.
    C,
    /// 5% insert / 95% read, latest distribution.
    D,
    /// 50% read-modify-write / 50% read, Zipfian.
    F,
}

impl YcsbKind {
    /// All kinds the paper evaluates.
    pub const ALL: [YcsbKind; 5] = [
        YcsbKind::A,
        YcsbKind::B,
        YcsbKind::C,
        YcsbKind::D,
        YcsbKind::F,
    ];
}

impl std::fmt::Display for YcsbKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What one YCSB step does (RMW expands to two [`WlOp`]s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct YcsbOp {
    /// The device-level operations, in order.
    pub ops: Vec<WlOp>,
    /// True if this step was an insert (workload D grows the dataset).
    pub insert: bool,
}

/// A YCSB workload generator over a linear byte space.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    kind: YcsbKind,
    record_bytes: u64,
    record_count: u64,
    capacity_records: u64,
    zipf: Zipfian,
    latest: Latest,
}

impl YcsbWorkload {
    /// A workload over `record_count` records of `record_bytes` each, with
    /// head-room up to `capacity_records` for workload D inserts.
    ///
    /// # Panics
    ///
    /// Panics on a zero record size/count or capacity below the count.
    pub fn new(
        kind: YcsbKind,
        record_count: u64,
        record_bytes: u64,
        capacity_records: u64,
    ) -> Self {
        assert!(record_bytes > 0 && record_count > 0, "empty dataset");
        assert!(
            capacity_records >= record_count,
            "capacity below record count"
        );
        YcsbWorkload {
            kind,
            record_bytes,
            record_count,
            capacity_records,
            zipf: Zipfian::new(record_count),
            latest: Latest::new(record_count),
        }
    }

    /// Total bytes the workload may touch (provisioning size).
    pub fn span_bytes(&self) -> u64 {
        self.capacity_records * self.record_bytes
    }

    /// Current record count (grows under workload D).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn record_op(&self, key: u64, kind: WlKind) -> WlOp {
        WlOp {
            kind,
            offset: key * self.record_bytes,
            len: self.record_bytes,
        }
    }

    /// Generates the next step.
    pub fn next(&mut self, rng: &mut impl Rng) -> YcsbOp {
        match self.kind {
            YcsbKind::A => {
                let key = self.zipf.next(rng);
                if rng.gen_range(0..100u8) < 50 {
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Write)],
                        insert: false,
                    }
                } else {
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Read)],
                        insert: false,
                    }
                }
            }
            YcsbKind::B => {
                let key = self.zipf.next(rng);
                if rng.gen_range(0..100u8) < 5 {
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Write)],
                        insert: false,
                    }
                } else {
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Read)],
                        insert: false,
                    }
                }
            }
            YcsbKind::C => {
                let key = self.zipf.next(rng);
                YcsbOp {
                    ops: vec![self.record_op(key, WlKind::Read)],
                    insert: false,
                }
            }
            YcsbKind::D => {
                if rng.gen_range(0..100u8) < 5 && self.record_count < self.capacity_records {
                    let key = self.record_count;
                    self.record_count += 1;
                    self.latest.inserted();
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Write)],
                        insert: true,
                    }
                } else {
                    let key = self.latest.next(rng).min(self.record_count - 1);
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Read)],
                        insert: false,
                    }
                }
            }
            YcsbKind::F => {
                let key = self.zipf.next(rng);
                if rng.gen_range(0..100u8) < 50 {
                    // Read-modify-write: read the record, then write it back.
                    YcsbOp {
                        ops: vec![
                            self.record_op(key, WlKind::Read),
                            self.record_op(key, WlKind::Write),
                        ],
                        insert: false,
                    }
                } else {
                    YcsbOp {
                        ops: vec![self.record_op(key, WlKind::Read)],
                        insert: false,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn counts(kind: YcsbKind, n: usize) -> (usize, usize, usize) {
        let mut wl = YcsbWorkload::new(kind, 10_000, 1000, 20_000);
        let mut rng = SmallRng::seed_from_u64(5);
        let (mut reads, mut writes, mut rmw) = (0, 0, 0);
        for _ in 0..n {
            let step = wl.next(&mut rng);
            if step.ops.len() == 2 {
                rmw += 1;
            } else if step.ops[0].kind == WlKind::Read {
                reads += 1;
            } else {
                writes += 1;
            }
        }
        (reads, writes, rmw)
    }

    #[test]
    fn workload_a_is_half_updates() {
        let (reads, writes, _) = counts(YcsbKind::A, 10_000);
        let ratio = writes as f64 / (reads + writes) as f64;
        assert!((0.47..0.53).contains(&ratio), "update ratio {ratio}");
    }

    #[test]
    fn workload_b_is_mostly_reads() {
        let (reads, writes, _) = counts(YcsbKind::B, 10_000);
        let ratio = reads as f64 / (reads + writes) as f64;
        assert!((0.93..0.97).contains(&ratio), "read ratio {ratio}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let (_, writes, rmw) = counts(YcsbKind::C, 5_000);
        assert_eq!(writes + rmw, 0);
    }

    #[test]
    fn workload_f_emits_rmw_pairs() {
        let (_, _, rmw) = counts(YcsbKind::F, 10_000);
        assert!(rmw > 4_000, "rmw count {rmw}");
        let mut wl = YcsbWorkload::new(YcsbKind::F, 100, 1000, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        loop {
            let step = wl.next(&mut rng);
            if step.ops.len() == 2 {
                assert_eq!(step.ops[0].kind, WlKind::Read);
                assert_eq!(step.ops[1].kind, WlKind::Write);
                assert_eq!(step.ops[0].offset, step.ops[1].offset);
                break;
            }
        }
    }

    #[test]
    fn workload_d_grows_dataset_and_reads_recent() {
        let mut wl = YcsbWorkload::new(YcsbKind::D, 1_000, 1000, 2_000);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut inserts = 0;
        for _ in 0..5_000 {
            let step = wl.next(&mut rng);
            if step.insert {
                inserts += 1;
            }
            for op in &step.ops {
                assert!(op.offset + op.len <= wl.span_bytes());
            }
        }
        assert!(inserts > 150, "inserts {inserts}");
        assert_eq!(wl.record_count(), 1_000 + inserts);
    }

    #[test]
    fn records_are_unaligned_to_blocks() {
        let wl = YcsbWorkload::new(YcsbKind::A, 100, 1000, 100);
        // Record 5 starts at byte 5000 — not 4 KiB aligned (the paper's
        // unaligned-I/O point).
        let op = wl.record_op(5, WlKind::Write);
        assert_eq!(op.offset, 5000);
        assert_ne!(op.offset % 4096, 0);
    }
}
