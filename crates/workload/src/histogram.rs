//! Log-bucketed latency histogram.
//!
//! Constant-memory percentile tracking in the spirit of HDR histograms:
//! buckets grow geometrically (16 sub-buckets per power of two), giving
//! ≤ ~6% relative error from nanoseconds to minutes — plenty for latency
//! reporting while staying allocation-free on the hot path.

/// Sub-buckets per power of two (higher = finer resolution).
const SUBBUCKETS: usize = 16;
/// Covers 2^0 .. 2^40 ns (≈ 18 minutes).
const POWERS: usize = 40;

/// A histogram of nanosecond values with geometric buckets.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; POWERS * SUBBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUBBUCKETS as u64 {
            return value as usize;
        }
        let pow = 63 - value.leading_zeros() as usize;
        let shift = pow.saturating_sub(SUBBUCKETS.trailing_zeros() as usize);
        let sub = (value >> shift) as usize - SUBBUCKETS;
        let idx = (pow - SUBBUCKETS.trailing_zeros() as usize) * SUBBUCKETS + sub + SUBBUCKETS;
        idx.min(POWERS * SUBBUCKETS - 1)
    }

    fn bucket_upper(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let pow = (idx - SUBBUCKETS) / SUBBUCKETS + SUBBUCKETS.trailing_zeros() as usize;
        let sub = (idx - SUBBUCKETS) % SUBBUCKETS;
        ((SUBBUCKETS + sub) as u64 + 1) << (pow - SUBBUCKETS.trailing_zeros() as usize)
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `p` in `[0, 1]` (upper bucket bound, ≤ ~6%
    /// relative error). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.5))
            .field("p95", &self.percentile(0.95))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.mean(), (0..16u64).sum::<u64>() / 16);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
        // ~6% relative accuracy.
        assert!(
            (p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.07,
            "p50={p50}"
        );
        assert!(
            (p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.07,
            "p99={p99}"
        );
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.percentile(0.9), c.percentile(0.9));
    }

    /// Exact percentile from a sorted sample, matching the histogram's
    /// rank convention (`rank = ceil(count * p)`, 1-based).
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((sorted.len() as f64) * p).ceil() as usize;
        sorted[rank.max(1).min(sorted.len()) - 1]
    }

    /// Differential check: every percentile the simulator reports (p50 up
    /// to p99.9) must sit within the advertised ~6–7% relative error of the
    /// exact sorted-sample answer.
    fn assert_matches_exact(name: &str, values: &[u64]) {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for &p in &[0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = exact_percentile(&sorted, p);
            let approx = h.percentile(p);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err < 0.07,
                "{name} p{p}: approx {approx} vs exact {exact} (err {err:.4})"
            );
        }
        assert_eq!(h.max(), *sorted.last().unwrap(), "{name}: max is exact");
        assert_eq!(h.min(), sorted[0], "{name}: min is exact");
    }

    /// Uniform latencies across four decades — the easy case.
    #[test]
    fn differential_uniform() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
        let values: Vec<u64> = (0..50_000)
            .map(|_| rng.gen_range(1_000u64..10_000_000))
            .collect();
        assert_matches_exact("uniform", &values);
    }

    /// Zipfian-skewed latencies (YCSB theta): a huge mass of fast ops with a
    /// long, thin tail — the shape that stresses log-bucket resolution at
    /// high percentiles.
    #[test]
    fn differential_zipfian() {
        use crate::Zipfian;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
        let zipf = Zipfian::new(1_000_000);
        let values: Vec<u64> = (0..50_000)
            .map(|_| 1_000 + zipf.next(&mut rng) * 17)
            .collect();
        assert_matches_exact("zipfian", &values);
    }

    /// Bimodal gray-device latencies: 90% of ops complete around the normal
    /// device service time, 10% hit a gray device running ~8x slower — the
    /// fault-injection shape whose second mode dominates p99/p99.9.
    #[test]
    fn differential_bimodal_gray_device() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
        let values: Vec<u64> = (0..50_000)
            .map(|_| {
                if rng.gen_range(0u32..10) == 0 {
                    rng.gen_range(700_000u64..900_000) // gray mode, ~8x
                } else {
                    rng.gen_range(80_000u64..120_000) // healthy mode
                }
            })
            .collect();
        assert_matches_exact("bimodal", &values);
    }

    proptest! {
        #[test]
        fn percentile_error_is_bounded(values in proptest::collection::vec(1u64..1_000_000_000, 1..500)) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &p in &[0.5, 0.9, 0.99] {
                let exact = sorted[(((sorted.len() as f64) * p).ceil() as usize - 1).min(sorted.len() - 1)];
                let approx = h.percentile(p);
                let err = (approx as f64 - exact as f64).abs() / exact as f64;
                prop_assert!(err < 0.07, "p{p}: approx {approx} vs exact {exact}");
            }
        }
    }
}
