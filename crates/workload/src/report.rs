//! Plain-text report tables for benchmark harnesses.
//!
//! Every figure/table harness prints the paper's reference rows next to the
//! measured rows; [`Table`] keeps that output aligned and also renders CSV
//! for downstream plotting.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (comma-separated; cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats nanoseconds as a human latency ("1.23ms").
pub fn fmt_latency(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats an IOPS figure ("820.0K").
pub fn fmt_iops(iops: f64) -> String {
    if iops >= 1e6 {
        format!("{:.2}M", iops / 1e6)
    } else if iops >= 1e3 {
        format!("{:.1}K", iops / 1e3)
    } else {
        format!("{iops:.0}")
    }
}

/// Formats bytes as GiB/MiB ("1.50GiB").
pub fn fmt_bytes(bytes: u64) -> String {
    const GIB: f64 = (1u64 << 30) as f64;
    const MIB: f64 = (1u64 << 20) as f64;
    if bytes as f64 >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB)
    } else {
        format!("{:.1}MiB", bytes as f64 / MIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["system", "iops"]);
        t.row(["Original", "181K"]);
        t.row(["Proposed (paper)", "820K"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("system"));
        assert!(lines[2].starts_with("Original"));
        let col = lines[0].find("iops").unwrap();
        assert_eq!(&lines[3][col..col + 4], "820K");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_rows_rejected() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a,b", "plain"]);
        assert_eq!(t.to_csv(), "k,v\n\"a,b\",plain\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_latency(1_110_000), "1.11ms");
        assert_eq!(fmt_latency(820), "820ns");
        assert_eq!(fmt_iops(820_000.0), "820.0K");
        assert_eq!(fmt_iops(1_500_000.0), "1.50M");
        assert_eq!(fmt_bytes(120 << 30), "120.00GiB");
        assert_eq!(fmt_bytes(21 << 20), "21.0MiB");
    }
}
