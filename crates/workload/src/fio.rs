//! fio-style workload generation.
//!
//! Mirrors the fio jobs the paper runs: block size, access pattern
//! (random/sequential, read/write/mixed), and an addressable byte range per
//! job. A [`FioJob`] yields an abstract stream of [`WlOp`]s; drivers map
//! them onto images/objects.

use rand::Rng;

/// Direction of one generated operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WlKind {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// One abstract operation over a linear byte space.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WlOp {
    /// Direction.
    pub kind: WlKind,
    /// Byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Access pattern, as fio's `rw=` parameter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessPattern {
    /// `randwrite`.
    RandWrite,
    /// `randread`.
    RandRead,
    /// `randrw` with the given read percentage (0..=100).
    RandRw {
        /// Percentage of reads.
        read_pct: u8,
    },
    /// `write` (sequential).
    SeqWrite,
    /// `read` (sequential).
    SeqRead,
}

/// One fio-style job over a byte range.
///
/// ```
/// use rablock_workload::{AccessPattern, FioJob};
/// use rand::SeedableRng;
///
/// let mut job = FioJob::new(AccessPattern::RandWrite, 4096, 30 << 20);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let op = job.next_op(&mut rng);
/// assert_eq!(op.len, 4096);
/// assert_eq!(op.offset % 4096, 0);
/// ```
#[derive(Debug, Clone)]
pub struct FioJob {
    pattern: AccessPattern,
    block_size: u64,
    range: u64,
    cursor: u64,
    issued: u64,
    /// Optional cap on operations (None = run forever).
    pub op_limit: Option<u64>,
}

impl FioJob {
    /// A job of `pattern` with `block_size`-byte operations over
    /// `[0, range)`. Random offsets are block-aligned, like fio's default.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or exceeds `range`.
    pub fn new(pattern: AccessPattern, block_size: u64, range: u64) -> Self {
        assert!(block_size > 0, "zero block size");
        assert!(block_size <= range, "block larger than range");
        FioJob {
            pattern,
            block_size,
            range,
            cursor: 0,
            issued: 0,
            op_limit: None,
        }
    }

    /// The block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Generates the next operation, or `None` past the op limit.
    pub fn next(&mut self, rng: &mut impl Rng) -> Option<WlOp> {
        if let Some(limit) = self.op_limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        Some(self.next_op(rng))
    }

    /// Generates the next operation unconditionally.
    pub fn next_op(&mut self, rng: &mut impl Rng) -> WlOp {
        let blocks = self.range / self.block_size;
        let (kind, offset) = match self.pattern {
            AccessPattern::RandWrite => (WlKind::Write, rng.gen_range(0..blocks) * self.block_size),
            AccessPattern::RandRead => (WlKind::Read, rng.gen_range(0..blocks) * self.block_size),
            AccessPattern::RandRw { read_pct } => {
                let kind = if rng.gen_range(0..100u8) < read_pct {
                    WlKind::Read
                } else {
                    WlKind::Write
                };
                (kind, rng.gen_range(0..blocks) * self.block_size)
            }
            AccessPattern::SeqWrite | AccessPattern::SeqRead => {
                let offset = (self.cursor % blocks) * self.block_size;
                self.cursor += 1;
                let kind = if matches!(self.pattern, AccessPattern::SeqWrite) {
                    WlKind::Write
                } else {
                    WlKind::Read
                };
                (kind, offset)
            }
        };
        WlOp {
            kind,
            offset,
            len: self.block_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn random_offsets_are_aligned_and_bounded() {
        let mut j = FioJob::new(AccessPattern::RandWrite, 4096, 1 << 20);
        let mut r = rng();
        for _ in 0..1000 {
            let op = j.next_op(&mut r);
            assert_eq!(op.kind, WlKind::Write);
            assert_eq!(op.offset % 4096, 0);
            assert!(op.offset + op.len <= 1 << 20);
        }
    }

    #[test]
    fn sequential_walks_in_order_and_wraps() {
        let mut j = FioJob::new(AccessPattern::SeqWrite, 4096, 16384);
        let mut r = rng();
        let offsets: Vec<u64> = (0..6).map(|_| j.next_op(&mut r).offset).collect();
        assert_eq!(offsets, vec![0, 4096, 8192, 12288, 0, 4096]);
    }

    #[test]
    fn mixed_ratio_approximately_holds() {
        let mut j = FioJob::new(AccessPattern::RandRw { read_pct: 80 }, 4096, 1 << 20);
        let mut r = rng();
        let n = 10_000;
        let reads = (0..n)
            .filter(|_| j.next_op(&mut r).kind == WlKind::Read)
            .count();
        let pct = reads as f64 / n as f64;
        assert!((0.77..0.83).contains(&pct), "read ratio {pct}");
    }

    #[test]
    fn op_limit_terminates() {
        let mut j = FioJob::new(AccessPattern::RandRead, 512, 4096);
        j.op_limit = Some(3);
        let mut r = rng();
        assert!(j.next(&mut r).is_some());
        assert!(j.next(&mut r).is_some());
        assert!(j.next(&mut r).is_some());
        assert!(j.next(&mut r).is_none());
        assert_eq!(j.issued(), 3);
    }
}
