//! Property tests for placement stability under failures.

use proptest::prelude::*;
use rablock_cluster::placement::{OsdId, OsdMap};
use rablock_storage::GroupId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Acting sets are always the right size, span distinct nodes, contain
    /// only up OSDs, and failures move only affected groups — under any
    /// sequence of failures that leaves enough nodes.
    #[test]
    fn placement_invariants_under_failures(
        nodes in 3u32..8,
        osds_per_node in 1u32..4,
        kills in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let mut map = OsdMap::new(nodes, osds_per_node, 32, 2);
        for k in kills {
            // Keep at least two distinct up nodes.
            let up_nodes: std::collections::HashSet<_> =
                map.up_osds().map(|o| o.node).collect();
            if up_nodes.len() <= 2 {
                break;
            }
            let candidates: Vec<OsdId> = map.up_osds().map(|o| o.id).collect();
            let victim = candidates[(k as usize) % candidates.len()];
            let before: Vec<_> = (0..32).map(|g| map.acting_set(GroupId(g))).collect();
            map.mark_down(victim);
            for (g, old) in before.iter().enumerate() {
                let new = map.acting_set(GroupId(g as u32));
                prop_assert_eq!(new.len(), 2);
                // Distinct nodes.
                prop_assert_ne!(map.osd(new[0]).node, map.osd(new[1]).node);
                // Only live members.
                for &o in &new {
                    prop_assert!(map.osd(o).up);
                }
                // Minimal movement: untouched groups stay put.
                if !old.contains(&victim) {
                    prop_assert_eq!(&new, old, "group {} moved needlessly", g);
                }
            }
        }
    }
}
