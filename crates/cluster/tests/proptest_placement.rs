//! Property tests for placement stability under failures and elastic
//! membership changes (weighted add/remove/reweight).

use proptest::prelude::*;
use rablock_cluster::placement::{NodeId, OsdId, OsdMap, DEFAULT_OSD_WEIGHT};
use rablock_storage::GroupId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Acting sets are always the right size, span distinct nodes, contain
    /// only up OSDs, and failures move only affected groups — under any
    /// sequence of failures that leaves enough nodes.
    #[test]
    fn placement_invariants_under_failures(
        nodes in 3u32..8,
        osds_per_node in 1u32..4,
        kills in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let mut map = OsdMap::new(nodes, osds_per_node, 32, 2);
        for k in kills {
            // Keep at least two distinct up nodes.
            let up_nodes: std::collections::HashSet<_> =
                map.up_osds().map(|o| o.node).collect();
            if up_nodes.len() <= 2 {
                break;
            }
            let candidates: Vec<OsdId> = map.up_osds().map(|o| o.id).collect();
            let victim = candidates[(k as usize) % candidates.len()];
            let before: Vec<_> = (0..32).map(|g| map.acting_set(GroupId(g))).collect();
            map.mark_down(victim);
            for (g, old) in before.iter().enumerate() {
                let new = map.acting_set(GroupId(g as u32));
                prop_assert_eq!(new.len(), 2);
                // Distinct nodes.
                prop_assert_ne!(map.osd(new[0]).node, map.osd(new[1]).node);
                // Only live members.
                for &o in &new {
                    prop_assert!(map.osd(o).up);
                }
                // Minimal movement: untouched groups stay put.
                if !old.contains(&victim) {
                    prop_assert_eq!(&new, old, "group {} moved needlessly", g);
                }
            }
        }
    }

    /// Adding one OSD to an N-OSD cluster remaps only its fair share of
    /// groups: weighted rendezvous placement moves a group only when the
    /// newcomer out-scores an incumbent, which happens for ~pg_count/(N+1)
    /// groups per acting-set slot. Allow 2x per slot plus slack for the
    /// node-dedup second slot.
    #[test]
    fn adding_one_osd_remaps_bounded_share(
        nodes in 3u32..9,
        osds_per_node in 1u32..4,
        pg_count in 64u32..257,
    ) {
        let mut map = OsdMap::new(nodes, osds_per_node, pg_count, 2);
        let before: Vec<_> = (0..pg_count).map(|g| map.acting_set(GroupId(g))).collect();
        // A brand-new node, so the newcomer competes for both slots.
        let id = map.add_osd(NodeId(nodes), DEFAULT_OSD_WEIGHT);
        let mut moved = 0u32;
        let mut gained = 0u32;
        for (g, old) in before.iter().enumerate() {
            let new = map.acting_set(GroupId(g as u32));
            prop_assert_eq!(new.len(), 2);
            if new.contains(&id) {
                gained += 1;
            }
            if &new != old {
                moved += 1;
                prop_assert!(
                    new.contains(&id),
                    "group {g} changed without involving the new OSD: {old:?} -> {new:?}"
                );
            }
        }
        let n = nodes * osds_per_node;
        let fair = pg_count / (n + 1);
        let bound = 2 * 2 * fair + 8;
        prop_assert!(
            moved <= bound,
            "one added OSD moved {moved} of {pg_count} groups (fair {fair}, bound {bound})"
        );
        prop_assert_eq!(gained, moved, "every move pulled the newcomer in");
    }

    /// Epochs are strictly monotonic over any sequence of add/remove/
    /// reweight operations, every map stays placeable (full-size acting
    /// sets on distinct nodes), and no-op reweights do not bump the epoch.
    #[test]
    fn elastic_mutations_keep_epoch_monotonic_and_maps_placeable(
        nodes in 3u32..6,
        ops in proptest::collection::vec((0u8..3, any::<u32>(), any::<u32>()), 1..24),
    ) {
        let mut map = OsdMap::new(nodes, 2, 32, 2);
        for (kind, a, b) in ops {
            let before = map.epoch;
            let in_nodes: std::collections::HashSet<_> =
                map.in_osds().map(|o| o.node).collect();
            match kind {
                0 => {
                    // Add on a (possibly new) node, with a non-zero weight.
                    let node = NodeId(a % (nodes + 4));
                    let w = (b % (4 * DEFAULT_OSD_WEIGHT)).max(1);
                    let id = map.add_osd(node, w);
                    prop_assert_eq!(id.0 as usize, map.osds.len() - 1, "dense ids");
                    prop_assert!(map.epoch > before, "add bumps the epoch");
                }
                1 => {
                    // Remove, but never below two distinct in-service nodes.
                    let victims: Vec<OsdId> = map.in_osds().map(|o| o.id).collect();
                    let victim = victims[(a as usize) % victims.len()];
                    let survivors: std::collections::HashSet<_> = map
                        .in_osds()
                        .filter(|o| o.id != victim)
                        .map(|o| o.node)
                        .collect();
                    if in_nodes.len() <= 2 || survivors.len() < 2 {
                        continue;
                    }
                    map.remove_osd(victim);
                    prop_assert!(!map.osd(victim).in_set(), "removed OSD is out");
                    prop_assert!(map.epoch > before, "remove bumps the epoch");
                }
                _ => {
                    let targets: Vec<OsdId> = map.in_osds().map(|o| o.id).collect();
                    let target = targets[(a as usize) % targets.len()];
                    // Keep two in-service nodes: never zero-weight here.
                    let w = (b % (4 * DEFAULT_OSD_WEIGHT)).max(1);
                    let changed = map.set_weight(target, w);
                    if changed {
                        prop_assert!(map.epoch > before, "reweight bumps the epoch");
                    } else {
                        prop_assert_eq!(map.epoch, before, "no-op reweight is free");
                    }
                }
            }
            for g in 0..32 {
                let set = map.acting_set(GroupId(g));
                prop_assert_eq!(set.len(), 2, "group {} lost a replica slot", g);
                prop_assert_ne!(map.osd(set[0]).node, map.osd(set[1]).node);
                for &o in &set {
                    prop_assert!(map.osd(o).in_set(), "group {} placed on an out OSD", g);
                }
            }
        }
    }
}
