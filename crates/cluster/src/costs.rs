//! CPU cost model for the simulated I/O path.
//!
//! Stage costs are calibrated once against the paper's Figure 1 roofline
//! (Original vs RTC-v1/v2/v3 on 4 cores/node) and then reused unchanged by
//! every other experiment — agreement on Figures 7–12 and Table II is the
//! reproduction result, not an input.
//!
//! Values are per-event CPU on a ~2.1 GHz Xeon core. They are deliberately
//! on the low side of Ceph's measured costs (Ceph burns several hundred µs
//! of CPU per 4 KiB replicated write end-to-end); what matters for shape is
//! the *ratio* between message/replication work, transaction/store work,
//! and maintenance work, which follows the paper's Fig. 1 decomposition.

use rablock_sim::SimDuration;

/// Stage tag: message processing (receive/decode or encode/send).
pub const MP: &str = "MP";
/// Stage tag: replication processing (primary-side op bookkeeping).
pub const RP: &str = "RP";
/// Stage tag: transaction processing (PG lock, object context, txn build).
pub const TP: &str = "TP";
/// Stage tag: object-store execution.
pub const OS: &str = "OS";
/// Stage tag: maintenance (compaction, sync, flush write-back).
pub const MT: &str = "MT";
/// Stage tag: client-side work (not part of node CPU accounting).
pub const CLIENT: &str = "client";

/// The CPU cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Receiving + decoding one message.
    pub mp_recv: SimDuration,
    /// Encoding + sending one message.
    pub mp_send: SimDuration,
    /// Receive cost of the proposed system's event-driven messenger (the
    /// prototype reuses Crimson's leaner I/O path, §V-A).
    pub mp_recv_lean: SimDuration,
    /// Send cost of the event-driven messenger.
    pub mp_send_lean: SimDuration,
    /// Per-byte copy cost through the messenger (memcpy + checksum).
    pub mp_per_byte: SimDuration,
    /// Primary-side replication bookkeeping per client op.
    pub rp_primary: SimDuration,
    /// Replica-side replication bookkeeping per repop.
    pub rp_replica: SimDuration,
    /// Transaction processing (object context, PG state, txn encode).
    pub tp: SimDuration,
    /// Completion-side transaction bookkeeping.
    pub tp_complete: SimDuration,
    /// LSM store submit: WAL encode + fsync bookkeeping + memtable inserts
    /// for the 3–4 key/value records Ceph writes per request (`data`,
    /// `object_info_t`, pg log). BlueStore burns several hundred µs of CPU
    /// per small write; this is the dominant baseline cost (§III-B).
    pub os_lsm_submit: SimDuration,
    /// COS store submit (onode lookup, in-place write issue).
    pub os_cos_submit: SimDuration,
    /// Per-byte store CPU (checksum/copy), both backends.
    pub os_per_byte: SimDuration,
    /// Store read CPU.
    pub os_read: SimDuration,
    /// NVM operation-log append (persist + index insert), per record.
    pub nvm_append: SimDuration,
    /// Per-byte NVM copy.
    pub nvm_per_byte: SimDuration,
    /// Serving a read from the operation log (index lookup + copy).
    pub log_read: SimDuration,
    /// Maintenance CPU per byte read or written (compaction merge,
    /// flush encode): ~140 MB/s per core.
    pub mt_per_byte: SimDuration,
    /// Waking a non-priority thread (signal + queue op).
    pub wake: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mp_recv: SimDuration::nanos(7_000),
            mp_send: SimDuration::nanos(6_000),
            mp_recv_lean: SimDuration::nanos(4_000),
            mp_send_lean: SimDuration::nanos(3_200),
            mp_per_byte: SimDuration::nanos(0), // folded into base for 4K-class messages
            rp_primary: SimDuration::nanos(11_000),
            rp_replica: SimDuration::nanos(4_000),
            tp: SimDuration::nanos(14_000),
            tp_complete: SimDuration::nanos(5_000),
            os_lsm_submit: SimDuration::nanos(80_000),
            os_cos_submit: SimDuration::nanos(6_000),
            os_per_byte: SimDuration::nanos(0),
            os_read: SimDuration::nanos(7_000),
            nvm_append: SimDuration::nanos(2_500),
            nvm_per_byte: SimDuration::nanos(0),
            log_read: SimDuration::nanos(3_000),
            mt_per_byte: SimDuration::nanos(7),
            wake: SimDuration::nanos(1_500),
        }
    }
}

impl CostModel {
    /// CPU for a message of `bytes` through the messenger, receive side.
    /// `lean` selects the event-driven messenger of the proposed system.
    pub fn recv(&self, bytes: u64, lean: bool) -> SimDuration {
        let base = if lean {
            self.mp_recv_lean
        } else {
            self.mp_recv
        };
        base + self.mp_per_byte * bytes
    }

    /// CPU for a message of `bytes` through the messenger, send side.
    pub fn send(&self, bytes: u64, lean: bool) -> SimDuration {
        let base = if lean {
            self.mp_send_lean
        } else {
            self.mp_send
        };
        base + self.mp_per_byte * bytes
    }

    /// CPU for one maintenance step moving `bytes` (read + written).
    pub fn maintenance(&self, bytes: u64) -> SimDuration {
        self.mt_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero_and_ordered() {
        let c = CostModel::default();
        assert!(
            c.os_cos_submit < c.os_lsm_submit,
            "COS must be cheaper per submit"
        );
        assert!(
            c.nvm_append < c.tp,
            "NVM logging beats full transaction processing"
        );
        assert!(c.recv(4096, false) >= c.mp_recv);
        assert!(
            c.recv(4096, true) < c.recv(4096, false),
            "lean messenger is cheaper"
        );
    }

    #[test]
    fn maintenance_scales_with_bytes() {
        let c = CostModel::default();
        assert_eq!(c.maintenance(1_000_000), SimDuration::nanos(7_000_000));
    }
}
