//! Client request timeout and retry policy.
//!
//! Shared between the deterministic sim driver (simulated nanoseconds, sim
//! RNG jitter) and the live driver (wall-clock nanoseconds, thread-local
//! jitter): all fields and results are plain `u64` nanoseconds, and jitter
//! enters as a caller-supplied draw in `[0, 1)` so the policy itself stays
//! deterministic and clock-agnostic.

/// Timeout, exponential backoff and retry budget for one client request.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long to wait for a reply before each retry.
    pub timeout_nanos: u64,
    /// Backoff before the first retry; doubles (times `backoff_multiplier`)
    /// per subsequent attempt.
    pub backoff_base_nanos: u64,
    /// Growth factor applied to the backoff per attempt.
    pub backoff_multiplier: f64,
    /// Fraction of the backoff added as random jitter (`0.2` = up to +20%).
    pub jitter_frac: f64,
    /// Give up (surface an error) after this many attempts total.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// 50 ms timeout, 2 ms backoff doubling per attempt with 20% jitter,
    /// 8 attempts — a few seconds of total patience.
    fn default() -> Self {
        RetryPolicy {
            timeout_nanos: 50_000_000,
            backoff_base_nanos: 2_000_000,
            backoff_multiplier: 2.0,
            jitter_frac: 0.2,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, `timeout_nanos` patience.
    pub fn no_retries(timeout_nanos: u64) -> Self {
        RetryPolicy {
            timeout_nanos,
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after attempt number `attempt` (1-based) fails,
    /// with `jitter_unit` a uniform draw in `[0, 1)`.
    pub fn backoff_nanos(&self, attempt: u32, jitter_unit: f64) -> u64 {
        debug_assert!(
            (0.0..1.0).contains(&jitter_unit),
            "jitter draw out of range"
        );
        let exp = attempt.saturating_sub(1).min(30);
        let base = self.backoff_base_nanos as f64 * self.backoff_multiplier.powi(exp as i32);
        let jitter = base * self.jitter_frac * jitter_unit;
        (base + jitter) as u64
    }

    /// Whether another attempt is allowed after `attempt` attempts failed.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            timeout_nanos: 1_000,
            backoff_base_nanos: 100,
            backoff_multiplier: 2.0,
            jitter_frac: 0.0,
            max_attempts: 5,
        };
        assert_eq!(p.backoff_nanos(1, 0.0), 100);
        assert_eq!(p.backoff_nanos(2, 0.0), 200);
        assert_eq!(p.backoff_nanos(4, 0.0), 800);
    }

    #[test]
    fn jitter_adds_bounded_fraction() {
        let p = RetryPolicy {
            backoff_base_nanos: 1_000,
            jitter_frac: 0.5,
            ..Default::default()
        };
        let lo = p.backoff_nanos(1, 0.0);
        let hi = p.backoff_nanos(1, 0.999);
        assert_eq!(lo, 1_000);
        assert!(hi > 1_400 && hi < 1_500, "jittered backoff {hi}");
    }

    #[test]
    fn attempt_budget_enforced() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        assert!(p.should_retry(1));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
        let once = RetryPolicy::no_retries(5);
        assert_eq!(once.timeout_nanos, 5);
        assert!(!once.should_retry(1));
    }
}
