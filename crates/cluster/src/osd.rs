//! The OSD daemon as a sans-io state machine.
//!
//! All protocol logic — primary-backup replication, the decoupled NVM
//! operation-log path, flushes, reads with strong consistency, peer log
//! recovery — lives here, independent of any execution substrate. Inputs
//! ([`OsdInput`]) are delivered by a driver (the deterministic simulation in
//! [`crate::sim_driver`] or the real-thread runtime in
//! [`crate::live_driver`]); outputs ([`OsdEffect`]) tell the driver what to
//! send, reply, persist, or schedule. The state machine never blocks and
//! never looks at a clock.
//!
//! The [`PipelineMode`] selects which of the paper's systems this OSD is:
//! stock Ceph (`Original`), the roofline variants (`RtcV1..V3`), the
//! ablations (`Cos`, `Ptc`), the full proposed system (`Dop`), or the
//! no-storage-processing upper bound (`Ideal`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rablock_cos::{CosObjectStore, CosOptions};
use rablock_lsm::{LsmObjectStore, LsmOptions};
use rablock_oplog::{GroupLog, LogRecord, ReadPath};
use rablock_storage::{
    FxHashMap, GroupId, MemDisk, NvmRegion, ObjectId, ObjectStore, Op, Payload, StoreError,
    StoreStats, TraceIo, Transaction,
};

use crate::msg::{ClientId, ClientReply, ClientReq, OpId, PeerMsg, PgLogEntry, ScrubEntry};
use crate::placement::{ActingSet, OsdId, OsdMap};

/// splitmix64 step: the deterministic stream fault injection draws rot
/// targets from. Self-contained (no scheduler RNG) so the same seed rots
/// the same bits under the wheel and heap schedulers alike.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-style digest over a byte slice: the checksum recovery pushes are
/// verified with and the unit replica contents are compared by.
///
/// Digests are only ever compared against digests computed by this same
/// function (never persisted, never in a report fingerprint), so the exact
/// constants are free to favor throughput: four independent FNV lanes over
/// 8-byte words break the multiply dependency chain that made the classic
/// byte-at-a-time loop the hottest function in write-path profiles (every
/// 4 KiB write is digested for its pg_log entry).
pub fn digest_bytes(data: &[u8]) -> u64 {
    const P: u64 = 0x0000_0100_0000_01B3;
    const SEED: u64 = 0xCBF2_9CE4_8422_2325;
    let mut lanes = [
        SEED,
        SEED ^ 0x9E37_79B9_7F4A_7C15,
        SEED.rotate_left(13),
        SEED.rotate_left(31),
    ];
    let mut blocks = data.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ w).wrapping_mul(P);
        }
    }
    let mut h = lanes[0];
    for &lane in &lanes[1..] {
        h = (h ^ lane).wrapping_mul(P);
    }
    let mut words = blocks.remainder().chunks_exact(8);
    for word in &mut words {
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(P);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(P);
    }
    h
}

/// Digest of one log-worthy op (offset + payload for writes, size for
/// creates) so pg_log entries from different primaries never falsely match.
fn digest_op(op: &Op) -> Option<(ObjectId, u64)> {
    match op {
        Op::Create { oid, size } => Some((*oid, digest_bytes(&size.to_le_bytes()) ^ 0x5EED)),
        Op::Write { oid, offset, data } => {
            let mut h = digest_bytes(&offset.to_le_bytes());
            h ^= digest_bytes(data.as_slice()).rotate_left(17);
            Some((*oid, h))
        }
        _ => None,
    }
}

/// Which of the paper's systems an OSD runs as.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum PipelineMode {
    /// Stock Ceph: thread-pool messenger + PG threads, BlueStore-like LSM
    /// backend.
    Original,
    /// Run-to-completion roofline variant: full path (MP+RP+TP+OS+MT) on
    /// one thread per connection.
    RtcV1,
    /// RTC without object store (MP+RP+TP): store returns instantly.
    RtcV2,
    /// RTC without transaction or store (MP+RP only).
    RtcV3,
    /// Ablation: stock threading, CPU-efficient object store backend.
    Cos,
    /// Ablation: COS + prioritized thread control (no NVM decoupling:
    /// replication still waits for the backend store).
    Ptc,
    /// The full proposed system: decoupled operation processing + PTC + COS.
    Dop,
    /// Upper bound: proposed threading with zero storage processing.
    Ideal,
}

impl PipelineMode {
    /// True for modes using the NVM operation log (top/bottom-half split).
    pub fn decoupled(self) -> bool {
        matches!(self, PipelineMode::Dop)
    }

    /// True for modes with priority/non-priority thread control.
    pub fn prioritized(self) -> bool {
        matches!(
            self,
            PipelineMode::Ptc | PipelineMode::Dop | PipelineMode::Ideal
        )
    }

    /// True for the roofline run-to-completion variants.
    pub fn run_to_completion(self) -> bool {
        matches!(
            self,
            PipelineMode::RtcV1 | PipelineMode::RtcV2 | PipelineMode::RtcV3
        )
    }

    /// True when transaction processing is skipped entirely (MP+RP only).
    pub fn null_transaction(self) -> bool {
        matches!(self, PipelineMode::RtcV3 | PipelineMode::Ideal)
    }

    /// True when the backend store is a no-op (but TP still runs).
    pub fn null_store(self) -> bool {
        matches!(self, PipelineMode::RtcV2)
    }

    /// True for modes backed by the LSM (BlueStore-like) store.
    pub fn lsm_backend(self) -> bool {
        matches!(self, PipelineMode::Original | PipelineMode::RtcV1)
    }

    /// True for modes backed by the CPU-efficient object store.
    pub fn cos_backend(self) -> bool {
        matches!(
            self,
            PipelineMode::Cos | PipelineMode::Ptc | PipelineMode::Dop
        )
    }
}

/// Static configuration of one OSD.
#[derive(Debug, Clone)]
pub struct OsdConfig {
    /// Pipeline variant.
    pub mode: PipelineMode,
    /// Backend device capacity in bytes.
    pub device_bytes: u64,
    /// NVM capacity for operation logs.
    pub nvm_bytes: u64,
    /// NVM ring bytes per logical group.
    pub ring_bytes: u64,
    /// Flush threshold (paper default 16 entries per group).
    pub flush_threshold: usize,
    /// Completed-write ids remembered per client for duplicate suppression:
    /// a retried write whose original already completed re-acks without
    /// re-applying (exactly-once under client retries).
    pub dedup_window: usize,
    /// Entries retained per group in the versioned write log (pg_log) used
    /// by peering. A peer whose history fell off this bounded tail is healed
    /// by full-object backfill instead of log replay.
    pub pg_log_limit: usize,
    /// LSM backend options (LSM modes).
    pub lsm: LsmOptions,
    /// COS backend options (COS modes).
    pub cos: CosOptions,
    /// Backfill throttle: recovery pushes allowed in flight (sent, unacked)
    /// per tick window. Deferred pushes stay in the missing set and are
    /// retried next tick, so rebalancing degrades gracefully instead of
    /// starving client I/O.
    pub max_backfill_inflight: usize,
    /// Backfill throttle: object bytes a primary may push per tick window
    /// (the bytes/sec budget, denominated in ticks). A full budget always
    /// admits at least one push so oversized objects cannot wedge recovery.
    pub backfill_bytes_per_tick: u64,
    /// Simulated nanoseconds represented by one heartbeat tick; converts
    /// throttled tick windows into the `backfill_throttled_nanos` metric.
    pub backfill_tick_nanos: u64,
}

impl Default for OsdConfig {
    fn default() -> Self {
        OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 96 << 20,
            nvm_bytes: 16 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 16,
            dedup_window: 128,
            pg_log_limit: 512,
            lsm: LsmOptions::default(),
            // Clusters checksum their data blocks: a read of rotted bytes
            // must fail retryably instead of serving garbage. (The WAF
            // benchmarks construct CosOptions directly and keep them off.)
            cos: CosOptions {
                checksums: true,
                ..CosOptions::default()
            },
            max_backfill_inflight: 16,
            backfill_bytes_per_tick: 4 << 20,
            backfill_tick_nanos: 1_000_000,
        }
    }
}

/// The backend store behind one OSD.
#[allow(clippy::large_enum_variant)]
pub enum Backend {
    /// BlueStore-like LSM store.
    Lsm(LsmObjectStore<MemDisk>),
    /// CPU-efficient object store.
    Cos(CosObjectStore<MemDisk>),
    /// No-op store (roofline variants / Ideal).
    Null,
}

impl Backend {
    fn submit(&mut self, txn: Transaction) -> Result<(), StoreError> {
        match self {
            Backend::Lsm(s) => s.submit(txn),
            Backend::Cos(s) => s.submit(txn),
            Backend::Null => Ok(()),
        }
    }

    fn read(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        match self {
            Backend::Lsm(s) => s.read(oid, offset, len),
            Backend::Cos(s) => s.read(oid, offset, len),
            Backend::Null => Ok(vec![0; len as usize]),
        }
    }

    fn take_trace(&mut self) -> Vec<TraceIo> {
        match self {
            Backend::Lsm(s) => s.take_trace(),
            Backend::Cos(s) => s.take_trace(),
            Backend::Null => Vec::new(),
        }
    }

    fn needs_maintenance(&self) -> bool {
        match self {
            Backend::Lsm(s) => s.needs_maintenance(),
            Backend::Cos(s) => s.needs_maintenance(),
            Backend::Null => false,
        }
    }

    fn maintenance(&mut self) -> rablock_storage::MaintenanceReport {
        match self {
            Backend::Lsm(s) => s.maintenance(),
            Backend::Cos(s) => s.maintenance(),
            Backend::Null => rablock_storage::MaintenanceReport::default(),
        }
    }

    /// Light-scrub digest from checksum metadata alone (COS with checksums
    /// on); `None` tells the scrubber to fall back to reading the bytes.
    fn csum_digest(&self, oid: ObjectId) -> Option<(u64, u64)> {
        match self {
            Backend::Cos(s) => s.csum_digest(oid),
            _ => None,
        }
    }

    /// Fault injection: flips one stored data bit of `oid`, bypassing
    /// checksum bookkeeping. `false` when the backend cannot rot (no real
    /// device, unmapped block, or the store does not expose injection).
    fn corrupt_data_bit(&mut self, oid: ObjectId, block: u64, byte: u64, bit: u8) -> bool {
        match self {
            Backend::Cos(s) => s.corrupt_data_bit(oid, block, byte, bit).unwrap_or(false),
            _ => false,
        }
    }

    /// Data blocks mapped for `oid` (rot targeting); 0 when unknown.
    fn mapped_blocks(&self, oid: ObjectId) -> u64 {
        match self {
            Backend::Cos(s) => s.mapped_blocks(oid),
            _ => 0,
        }
    }

    /// Store traffic statistics (WAF measurements).
    pub fn stats(&self) -> StoreStats {
        match self {
            Backend::Lsm(s) => s.stats(),
            Backend::Cos(s) => s.stats(),
            Backend::Null => StoreStats::default(),
        }
    }

    /// Resets store statistics.
    pub fn reset_stats(&mut self) {
        match self {
            Backend::Lsm(s) => s.reset_stats(),
            Backend::Cos(s) => s.reset_stats(),
            Backend::Null => {}
        }
    }
}

/// Events delivered to the OSD by its driver.
#[derive(Debug)]
pub enum OsdInput {
    /// A client request arrived.
    Client {
        /// The connection it came from.
        from: ClientId,
        /// The request.
        req: ClientReq,
    },
    /// A peer OSD message arrived.
    Peer {
        /// Sending OSD.
        from: OsdId,
        /// The message.
        msg: PeerMsg,
    },
    /// All device I/Os of a prior [`OsdEffect::StoreIo`] completed.
    StoreDurable {
        /// Token from the effect.
        token: u64,
    },
    /// A non-priority thread picked up a flush request for a group.
    FlushGroup {
        /// The group to flush.
        group: GroupId,
    },
    /// A non-priority thread picked up a store-read request.
    ReadFromStore {
        /// Token registered when the read was deferred.
        token: u64,
    },
    /// A non-priority thread picked up a deferred store submit (PTC mode:
    /// storage processing runs on non-priority threads).
    SubmitDeferred {
        /// Token registered when the submit was deferred.
        token: u64,
    },
    /// The maintenance thread ticked.
    MaintStep,
    /// The scrub scheduler picked this OSD (as primary) to scrub a group:
    /// collect per-replica object maps, compare, and repair inconsistent
    /// copies through the recovery push machinery.
    ScrubStart {
        /// The group to scrub.
        group: GroupId,
        /// Deep scrub: read and checksum-verify every byte instead of
        /// comparing metadata digests.
        deep: bool,
    },
    /// The heartbeat timer fired: emit a liveness beacon to the monitor.
    HeartbeatTick,
    /// A new cluster map arrived.
    MapUpdate(OsdMap),
}

/// Instructions the OSD hands back to its driver.
#[derive(Debug)]
pub enum OsdEffect {
    /// Send a message to a peer OSD.
    SendPeer {
        /// Destination.
        to: OsdId,
        /// The message.
        msg: PeerMsg,
    },
    /// Reply to a client.
    Reply {
        /// Destination connection.
        to: ClientId,
        /// The reply.
        msg: ClientReply,
    },
    /// Replay these device I/Os; if `wait`, deliver
    /// [`OsdInput::StoreDurable`] with `token` when they all complete.
    StoreIo {
        /// Completion token.
        token: u64,
        /// The device I/Os the store performed.
        trace: Vec<TraceIo>,
        /// Whether completion must be reported.
        wait: bool,
    },
    /// Bytes appended to the NVM operation log (for cost accounting).
    NvmWritten {
        /// Record bytes.
        bytes: u64,
    },
    /// Wake a non-priority thread to flush `group`.
    WakeFlush {
        /// The group over its threshold.
        group: GroupId,
    },
    /// Wake a non-priority thread to serve a deferred store read.
    WakeRead {
        /// Token to hand back via [`OsdInput::ReadFromStore`].
        token: u64,
    },
    /// Wake a non-priority thread to run a deferred store submit.
    WakeSubmit {
        /// Token to hand back via [`OsdInput::SubmitDeferred`].
        token: u64,
    },
    /// Wake the maintenance thread.
    WakeMaintenance,
    /// Send a heartbeat to the monitor (driver routes it and stamps the
    /// time; the state machine never looks at a clock).
    Heartbeat,
    /// One maintenance step moved this many bytes (for MT cost accounting).
    Maintained {
        /// Bytes read + written by the step.
        bytes: u64,
        /// More maintenance is pending.
        more: bool,
    },
}

/// What a pending store token is serving, as seen by the tracing layer.
///
/// A read-only classification of the OSD's internal [`StoreCtx`]; the driver
/// uses it to map device completions back to the client op they serve.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StoreTokenOp {
    /// Local persist of an in-flight primary write.
    PrimaryWrite {
        /// Issuing client.
        client: ClientId,
        /// Client op id.
        op: OpId,
    },
    /// Replica-side persist that will ack `seq` back to `primary`.
    ReplicaPersist {
        /// The primary that sent the replication op.
        primary: OsdId,
        /// Replication sequence number.
        seq: u64,
    },
    /// A client read waiting for its device I/O.
    Read {
        /// Issuing client.
        client: ClientId,
        /// Client op id.
        op: OpId,
    },
    /// A batch flush (background from any single op's perspective).
    Flush,
    /// Background I/O nobody waits for.
    Background,
}

struct WriteOp {
    client: ClientId,
    op: OpId,
    group: GroupId,
    /// The replicated transaction, kept so the primary itself can retransmit
    /// to laggard replicas from the heartbeat timer (payloads are refcounted,
    /// so this clone shares the data bytes).
    txn: Transaction,
    waiting_acks: ActingSet,
    local_done: bool,
    /// Heartbeat ticks this op has been waiting on replica acks.
    ticks: u32,
}

enum StoreCtx {
    /// Local persist of a primary write.
    WriteLocal { seq: u64 },
    /// Replica persist; ack `seq` to `primary` when durable.
    ReplicaPersist {
        primary: OsdId,
        group: GroupId,
        seq: u64,
    },
    /// A read waiting for its device I/O.
    Read {
        client: ClientId,
        op: OpId,
        data: Vec<u8>,
    },
    /// A batch flush of `group`; when durable, drain the log records whose
    /// version is at most `through_version` (the newest record exported
    /// when the batch was submitted — a plain count would mis-drain records
    /// appended or drained by another path while the flush was in flight).
    Flush {
        group: GroupId,
        through_version: u64,
        keep: bool,
    },
    /// Background I/O nobody waits for.
    Background,
}

struct DeferredSubmit {
    txn: Transaction,
    ctx: StoreCtx,
}

struct DeferredRead {
    client: ClientId,
    op: OpId,
    oid: ObjectId,
    offset: u64,
    len: u64,
}

#[derive(Default)]
struct GroupRuntime {
    flushing: bool,
    /// Reads waiting for the in-flight flush to become durable.
    waiting_reads: Vec<DeferredRead>,
}

/// Externally visible state of one placement group at its primary.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PgState {
    /// Fully replicated; no recovery in flight.
    Active,
    /// Serving I/O with fewer than `replication` members (above `min_size`).
    Degraded,
    /// The primary is collecting pg_log infos from the acting set.
    Peering,
    /// Log-replay recovery: pushing individually missing objects to peers
    /// whose logs overlap the primary's.
    Recovering,
    /// Full-object backfill: at least one peer fell off the log tail and is
    /// receiving every object of the group.
    Backfilling,
    /// A scrub found replicas that disagree (or failed their checksums);
    /// repair pushes/fetches are in flight. Clears back to Active once
    /// every damaged copy is healed.
    Inconsistent,
}

/// One scrub round at a group's primary: collect a [`ScrubEntry`] map from
/// every acting-set member (self included), compare, then repair.
struct ScrubRound {
    /// Map epoch the round runs at; stale replies are ignored and a map
    /// change aborts the round (peering supersedes it).
    epoch: u64,
    /// Deep (read everything) vs light (metadata digests only).
    deep: bool,
    /// Peers whose [`PeerMsg::ScrubMap`] has not arrived yet.
    awaiting: BTreeSet<OsdId>,
    /// Collected maps by member (the primary's own map included).
    maps: BTreeMap<OsdId, Vec<ScrubEntry>>,
    /// Maps compared, repairs cut; the round now only tracks repairs.
    compared: bool,
    /// Local damaged objects awaiting a [`PeerMsg::ScrubFetch`] heal.
    self_wait: BTreeMap<u64, ObjectId>,
    /// Objects to push to damaged/divergent peers (deferred while the
    /// object is still in `self_wait` — never push bytes we hold rotten).
    peer_repairs: BTreeMap<u64, (ObjectId, BTreeSet<OsdId>)>,
}

/// Per-group recovery bookkeeping at the primary, created on a map-epoch
/// change and dropped once every peer acked its last push.
struct PgRecovery {
    /// Map epoch this peering round belongs to; stale replies are ignored.
    epoch: u64,
    /// Peering, Recovering, or Backfilling.
    state: PgState,
    /// Peers whose [`PeerMsg::PgInfo`] has not arrived yet.
    awaiting_infos: BTreeSet<OsdId>,
    /// Collected peer logs (by peer), kept until the missing sets are cut.
    infos: BTreeMap<OsdId, Vec<PgLogEntry>>,
    /// Outstanding pushes per peer, keyed by raw object id for stable order.
    missing: BTreeMap<OsdId, BTreeMap<u64, ObjectId>>,
    /// Peers being healed by full backfill rather than log replay.
    backfill_peers: BTreeSet<OsdId>,
}

/// One OSD daemon (sans-io core).
pub struct Osd {
    /// This OSD's identity.
    pub id: OsdId,
    cfg: OsdConfig,
    backend: Backend,
    nvm: NvmRegion,
    nvm_next: u64,
    logs: FxHashMap<GroupId, GroupLog>,
    group_rt: FxHashMap<GroupId, GroupRuntime>,
    map: OsdMap,
    seq: u64,
    next_token: u64,
    inflight: FxHashMap<u64, WriteOp>,
    /// `(client, op) -> seq` for in-flight writes, so a client retry can be
    /// matched to its original operation instead of being applied again.
    inflight_ops: FxHashMap<(ClientId, OpId), u64>,
    /// Recently completed write ops per client (bounded by
    /// `cfg.dedup_window`): a retry of one of these re-acks immediately.
    completed: FxHashMap<ClientId, VecDeque<u64>>,
    /// Recently applied replication seqs per group (bounded by
    /// `cfg.dedup_window`): a duplicate `Repop`/`RepopNvm` re-acks without
    /// re-applying.
    replica_applied: FxHashMap<GroupId, VecDeque<u64>>,
    /// Largest byte extent ever written per object, per group. Lets a
    /// surviving member ship full object contents to a joiner (backfill) —
    /// the operation log alone only covers still-pending writes.
    group_extents: FxHashMap<GroupId, FxHashMap<ObjectId, u64>>,
    /// Groups whose pulled log records have not arrived yet.
    awaiting_log: BTreeSet<GroupId>,
    /// Groups whose backfill has not arrived yet: flushes and cold store
    /// reads are held back so a late backfill cannot clobber newer data.
    awaiting_backfill: BTreeSet<GroupId>,
    /// Chosen synchronization source per awaited group: a member of the
    /// *previous* acting set, i.e. an OSD that actually holds the data.
    /// After a weighted expansion an entire acting set can be fresh
    /// joiners, so pulling from the new set would "succeed" with nothing.
    pull_sources: BTreeMap<GroupId, OsdId>,
    pending_store: FxHashMap<u64, StoreCtx>,
    deferred_reads: FxHashMap<u64, DeferredRead>,
    deferred_submits: FxHashMap<u64, DeferredSubmit>,
    maint_scheduled: bool,
    /// Forced synchronous flushes because NVM filled up (paper §IV-A).
    pub nvm_full_stalls: u64,
    /// Bounded versioned write log per group (`(epoch, version, oid,
    /// digest)` per applied op): the peering currency. Volatile — rebuilt
    /// from the recovered NVM log on restart.
    pg_log: FxHashMap<GroupId, VecDeque<PgLogEntry>>,
    /// Active peering/recovery rounds for groups this OSD leads.
    recovery: BTreeMap<GroupId, PgRecovery>,
    /// Recovery pushes sent (log-replay and backfill object transfers).
    pub recovery_pushes: u64,
    /// Object bytes shipped to peers undergoing full backfill.
    pub backfill_bytes: u64,
    /// Recovery pushes deferred by the backfill throttle.
    pub backfill_queued: u64,
    /// Simulated time spent in tick windows where the throttle deferred at
    /// least one push (`backfill_tick_nanos` per such window).
    pub backfill_throttled_nanos: u64,
    /// Pushes sent and not yet acked in the current tick window, keyed by
    /// `(group, peer, raw oid)`.
    backfill_inflight: BTreeSet<(GroupId, OsdId, u64)>,
    /// Remaining push-byte budget in the current tick window.
    backfill_budget: u64,
    /// Whether the throttle deferred work since the last tick.
    backfill_deferred: bool,
    /// Active scrub rounds for groups this OSD leads.
    scrubs: BTreeMap<GroupId, ScrubRound>,
    /// Scrub starts deferred by the throttle or a recovery in flight,
    /// retried on the heartbeat; `true` = deep (deep wins over light).
    scrub_queue: BTreeMap<GroupId, bool>,
    /// Whether the throttle deferred a scrub since the last tick.
    scrub_deferred: bool,
    /// Outstanding self-heal fetches (`(group, raw oid)` → object + the
    /// peer currently asked), fed by scrub rounds and read-path checksum
    /// failures; retried with source rotation on the heartbeat.
    fetches: BTreeMap<(GroupId, u64), (ObjectId, OsdId)>,
    /// Damaged/divergent replica copies found by scrub comparisons.
    pub scrub_errors_found: u64,
    /// Copies healed by scrub repair pushes and fetches.
    pub scrub_errors_repaired: u64,
    /// Object bytes read by deep scrubs on this OSD.
    pub scrub_bytes: u64,
    /// Simulated time scrub starts spent deferred by the throttle.
    pub scrub_throttled_nanos: u64,
    /// Scrub rounds finished (repairs, if any, all acked).
    pub scrubs_completed: u64,
    /// Client/store reads that tripped a block checksum (each also triggers
    /// a self-heal fetch).
    pub read_checksum_errors: u64,
}

impl Osd {
    /// Creates an OSD with a freshly formatted backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be formatted with the given config —
    /// that is a configuration error worth failing loudly on.
    pub fn new(id: OsdId, cfg: OsdConfig, map: OsdMap) -> Self {
        let backend = if cfg.mode.lsm_backend() {
            Backend::Lsm(
                LsmObjectStore::open(MemDisk::new(cfg.device_bytes), cfg.lsm.clone())
                    .expect("LSM backend formats"),
            )
        } else if cfg.mode.cos_backend() {
            Backend::Cos(
                CosObjectStore::format(MemDisk::new(cfg.device_bytes), cfg.cos.clone())
                    .expect("COS backend formats"),
            )
        } else {
            Backend::Null
        };
        let initial_backfill_budget = cfg.backfill_bytes_per_tick;
        Osd {
            id,
            nvm: NvmRegion::new(cfg.nvm_bytes),
            nvm_next: 0,
            cfg,
            backend,
            logs: FxHashMap::default(),
            group_rt: FxHashMap::default(),
            map,
            seq: 0,
            next_token: 1,
            inflight: FxHashMap::default(),
            inflight_ops: FxHashMap::default(),
            completed: FxHashMap::default(),
            replica_applied: FxHashMap::default(),
            group_extents: FxHashMap::default(),
            awaiting_log: BTreeSet::new(),
            awaiting_backfill: BTreeSet::new(),
            pull_sources: BTreeMap::new(),
            pending_store: FxHashMap::default(),
            deferred_reads: FxHashMap::default(),
            deferred_submits: FxHashMap::default(),
            maint_scheduled: false,
            nvm_full_stalls: 0,
            pg_log: FxHashMap::default(),
            recovery: BTreeMap::new(),
            recovery_pushes: 0,
            backfill_bytes: 0,
            backfill_queued: 0,
            backfill_throttled_nanos: 0,
            backfill_inflight: BTreeSet::new(),
            backfill_budget: initial_backfill_budget,
            backfill_deferred: false,
            scrubs: BTreeMap::new(),
            scrub_queue: BTreeMap::new(),
            scrub_deferred: false,
            fetches: BTreeMap::new(),
            scrub_errors_found: 0,
            scrub_errors_repaired: 0,
            scrub_bytes: 0,
            scrub_throttled_nanos: 0,
            scrubs_completed: 0,
            read_checksum_errors: 0,
        }
    }

    /// The pipeline mode this OSD runs as.
    pub fn mode(&self) -> PipelineMode {
        self.cfg.mode
    }

    /// The backend store (statistics access).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable backend access (reset stats after warm-up).
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// NVM bytes written so far (operation-log accounting).
    pub fn nvm_bytes_written(&self) -> u64 {
        self.nvm.bytes_written()
    }

    /// Pending operation-log entries of one group (Fig. 12 diagnostics).
    pub fn log_pending(&self, group: GroupId) -> usize {
        self.logs.get(&group).map_or(0, GroupLog::pending)
    }

    /// Groups with pending log entries, sorted (timeout-flush sweeps).
    pub fn pending_groups(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self
            .logs
            .iter()
            .filter(|(g, l)| l.pending() > 0 && !self.group_rt.get(g).is_some_and(|r| r.flushing))
            .map(|(g, _)| *g)
            .collect();
        v.sort();
        v
    }

    /// Instantly provisions an object in the backend, bypassing the
    /// protocol (image-creation prefill before a measured run).
    pub fn bootstrap_object(&mut self, oid: ObjectId, size: u64) {
        self.seq += 1;
        let txn = Transaction::new(oid.group(), self.seq, vec![Op::Create { oid, size }]);
        self.note_txn(&txn);
        self.backend.submit(txn).expect("bootstrap create");
        let _ = self.backend.take_trace();
        while self.backend.needs_maintenance() {
            self.backend.maintenance();
            let _ = self.backend.take_trace();
        }
    }

    /// The current cluster map as this OSD knows it.
    pub fn map(&self) -> &OsdMap {
        &self.map
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn replicas_of(&self, group: GroupId) -> ActingSet {
        let mut set = self.map.acting_set(group);
        set.retain(|&o| o != self.id);
        set
    }

    fn log_for(&mut self, group: GroupId) -> &mut GroupLog {
        if !self.logs.contains_key(&group) {
            let base = self.nvm_next;
            assert!(
                base + self.cfg.ring_bytes <= self.nvm.capacity(),
                "{}: NVM exhausted allocating ring for {group}",
                self.id
            );
            self.nvm_next += self.cfg.ring_bytes;
            let log = GroupLog::format(
                &mut self.nvm,
                group,
                base,
                self.cfg.ring_bytes,
                self.cfg.flush_threshold,
            )
            .expect("ring formats in fresh NVM");
            self.logs.insert(group, log);
        }
        self.logs.get_mut(&group).expect("just inserted")
    }

    /// Builds the backend transaction for a client write, including the
    /// metadata records Ceph attaches to every request (`object_info_t`
    /// xattr, pg-log entry) — the "many key-value writes" of §V-B.
    fn build_write_txn(
        &mut self,
        group: GroupId,
        seq: u64,
        oid: ObjectId,
        offset: u64,
        data: Payload,
    ) -> Transaction {
        let pglog_key = format!("pglog.{}.{seq}", group.0).into_bytes();
        Transaction::new(
            group,
            seq,
            vec![
                Op::Write { oid, offset, data },
                Op::SetXattr {
                    oid,
                    key: "oi".into(),
                    value: vec![0xA5; 64],
                },
                Op::MetaPut {
                    key: pglog_key,
                    value: vec![0x5A; 180],
                },
            ],
        )
    }

    fn already_completed(&self, client: ClientId, op: OpId) -> bool {
        self.completed
            .get(&client)
            .is_some_and(|w| w.contains(&op.0))
    }

    fn inflight_seq(&self, client: ClientId, op: OpId) -> Option<u64> {
        self.inflight_ops.get(&(client, op)).copied()
    }

    /// The client op behind an in-flight primary write `seq`, if any.
    /// Read-only probe for the tracing layer.
    pub fn inflight_client_op(&self, seq: u64) -> Option<(ClientId, OpId)> {
        self.inflight.get(&seq).map(|w| (w.client, w.op))
    }

    /// Classifies what a pending store-completion `token` is serving.
    /// Read-only probe for the tracing layer; never mutates OSD state.
    pub fn store_token_op(&self, token: u64) -> Option<StoreTokenOp> {
        let ctx = self.pending_store.get(&token)?;
        Some(match *ctx {
            StoreCtx::WriteLocal { seq } => match self.inflight_client_op(seq) {
                Some((client, op)) => StoreTokenOp::PrimaryWrite { client, op },
                None => StoreTokenOp::Background,
            },
            StoreCtx::ReplicaPersist { primary, seq, .. } => {
                StoreTokenOp::ReplicaPersist { primary, seq }
            }
            StoreCtx::Read { client, op, .. } => StoreTokenOp::Read { client, op },
            StoreCtx::Flush { .. } => StoreTokenOp::Flush,
            StoreCtx::Background => StoreTokenOp::Background,
        })
    }

    /// The client op behind a deferred store read `token`, if any.
    /// Read-only probe for the tracing layer.
    pub fn deferred_read_op(&self, token: u64) -> Option<(ClientId, OpId)> {
        self.deferred_reads.get(&token).map(|d| (d.client, d.op))
    }

    /// Classifies the op behind a deferred store submit `token`, if any.
    /// Read-only probe for the tracing layer.
    pub fn deferred_submit_op(&self, token: u64) -> Option<StoreTokenOp> {
        let d = self.deferred_submits.get(&token)?;
        Some(match d.ctx {
            StoreCtx::WriteLocal { seq } => match self.inflight_client_op(seq) {
                Some((client, op)) => StoreTokenOp::PrimaryWrite { client, op },
                None => StoreTokenOp::Background,
            },
            StoreCtx::ReplicaPersist { primary, seq, .. } => {
                StoreTokenOp::ReplicaPersist { primary, seq }
            }
            StoreCtx::Read { client, op, .. } => StoreTokenOp::Read { client, op },
            StoreCtx::Flush { .. } => StoreTokenOp::Flush,
            StoreCtx::Background => StoreTokenOp::Background,
        })
    }

    /// Re-sends the replication message for an in-flight write to every
    /// replica that has not acked yet. Nothing is re-applied locally; the
    /// client will be answered by the original operation when it completes.
    fn retransmit_pending(
        &mut self,
        seq: u64,
        group: GroupId,
        txn: Transaction,
        fx: &mut Vec<OsdEffect>,
    ) {
        let Some(w) = self.inflight.get(&seq) else {
            return;
        };
        let decoupled = self.cfg.mode.decoupled();
        for &r in &w.waiting_acks {
            let msg = if decoupled {
                PeerMsg::RepopNvm {
                    group,
                    seq,
                    txn: txn.clone(),
                }
            } else {
                PeerMsg::Repop {
                    group,
                    seq,
                    txn: txn.clone(),
                }
            };
            fx.push(OsdEffect::SendPeer { to: r, msg });
        }
    }

    fn replica_already_applied(&self, group: GroupId, seq: u64) -> bool {
        self.replica_applied
            .get(&group)
            .is_some_and(|w| w.contains(&seq))
    }

    /// Forgets a provisionally noted replication seq after a failed apply,
    /// so a primary retransmit is applied for real instead of re-acked.
    fn unnote_replica_applied(&mut self, group: GroupId, seq: u64) {
        if let Some(w) = self.replica_applied.get_mut(&group) {
            w.retain(|&s| s != seq);
        }
    }

    /// Drops the pg_log entries of a version whose apply failed: claiming
    /// history we do not hold would make peering skip a push we need.
    fn pg_log_unnote(&mut self, group: GroupId, version: u64) {
        if let Some(log) = self.pg_log.get_mut(&group) {
            log.retain(|e| e.version != version);
        }
    }

    fn note_replica_applied(&mut self, group: GroupId, seq: u64) {
        let win = self.replica_applied.entry(group).or_default();
        win.push_back(seq);
        while win.len() > self.cfg.dedup_window {
            win.pop_front();
        }
    }

    /// Records the byte extents a transaction touches, so this OSD can later
    /// backfill full object contents to a joining peer.
    fn note_txn(&mut self, txn: &Transaction) {
        let extents = self.group_extents.entry(txn.group).or_default();
        for op in &txn.ops {
            let (oid, end) = match op {
                Op::Create { oid, size } => (*oid, *size),
                Op::Write { oid, offset, data } => (*oid, offset + data.len() as u64),
                _ => continue,
            };
            let e = extents.entry(oid).or_insert(0);
            *e = (*e).max(end);
        }
    }

    /// Appends one pg_log entry per log-worthy op of `txn` (version =
    /// primary-assigned replication seq), trimming to the configured bound.
    fn pg_log_note(&mut self, group: GroupId, version: u64, txn: &Transaction) {
        let epoch = self.map.epoch;
        let log = self.pg_log.entry(group).or_default();
        for op in &txn.ops {
            let Some((oid, digest)) = digest_op(op) else {
                continue;
            };
            log.push_back(PgLogEntry {
                epoch,
                version,
                oid,
                digest,
            });
            while log.len() > self.cfg.pg_log_limit {
                log.pop_front();
            }
        }
    }

    /// The newest `(epoch, version)` this OSD's pg_log holds for an object,
    /// or `(0, 0)` if the object never appears (fell off the tail or never
    /// written here). Recovery pushes are applied only when they beat this.
    fn pg_latest(&self, group: GroupId, oid: ObjectId) -> (u64, u64) {
        self.pg_log
            .get(&group)
            .map(|log| {
                log.iter()
                    .filter(|e| e.oid == oid)
                    .map(|e| (e.epoch, e.version))
                    .max()
                    .unwrap_or((0, 0))
            })
            .unwrap_or((0, 0))
    }

    /// The newest pg_log entry this OSD holds for an object, or an epoch-0 /
    /// version-0 sentinel when none survives (fell off the tail or never
    /// written here). The sentinel never beats a real entry, so receivers
    /// apply such contents only over objects with no history at all, and do
    /// not log them.
    fn newest_entry(&self, group: GroupId, oid: ObjectId) -> PgLogEntry {
        self.pg_log
            .get(&group)
            .and_then(|log| {
                log.iter()
                    .filter(|e| e.oid == oid)
                    .max_by_key(|e| (e.epoch, e.version))
                    .copied()
            })
            .unwrap_or(PgLogEntry {
                epoch: 0,
                version: 0,
                oid,
                digest: 0,
            })
    }

    /// The state of one group as seen by this OSD (meaningful at the
    /// group's primary): an active recovery round reports its phase,
    /// otherwise the acting-set size decides Active vs Degraded.
    pub fn pg_state(&self, group: GroupId) -> PgState {
        if let Some(rec) = self.recovery.get(&group) {
            return rec.state;
        }
        let scrub_repairing = self
            .scrubs
            .get(&group)
            .is_some_and(|r| r.compared && (!r.self_wait.is_empty() || !r.peer_repairs.is_empty()));
        if scrub_repairing || self.fetches.keys().any(|&(g, _)| g == group) {
            return PgState::Inconsistent;
        }
        if self.map.acting_set(group).len() < self.map.replication {
            PgState::Degraded
        } else {
            PgState::Active
        }
    }

    /// Objects this primary knows to be missing on some acting-set peer
    /// (outstanding recovery pushes). Zero once the cluster has healed.
    pub fn degraded_objects(&self) -> u64 {
        self.recovery
            .values()
            .map(|r| r.missing.values().map(|m| m.len() as u64).sum::<u64>())
            .sum()
    }

    /// Applies every pending log record to the backend without draining the
    /// log, so backend reads observe the newest bytes. Used before recovery
    /// pushes (the pushed content must be authoritative) and by post-quiesce
    /// replica-equality checks. Re-applying a record is idempotent — the log
    /// always holds the newest bytes for the ranges it covers.
    pub fn sync_backend_with_log(&mut self) {
        let mut groups: Vec<GroupId> = self.logs.keys().copied().collect();
        groups.sort();
        for group in groups {
            self.sync_group_log(group);
        }
    }

    /// Digest of an object's first `len` bytes as stored in the backend
    /// (`None` if the backend cannot serve the range). Quiesce diagnostics.
    pub fn object_digest(&mut self, oid: ObjectId, len: u64) -> Option<u64> {
        self.sync_group_log(oid.group());
        let r = self.backend.read(oid, 0, len);
        let _ = self.backend.take_trace();
        r.ok().map(|data| digest_bytes(&data))
    }

    /// The backend's *persistent* light-scrub digest of `oid`: its size
    /// plus an FNV over the per-block checksum vector, read from metadata
    /// without touching any data block. `None` when the backend does not
    /// persist checksums (LSM/null modes, checksums disabled) or does not
    /// hold the object. Sync the group log first
    /// ([`Osd::sync_backend_with_log`]) so unflushed writes are covered.
    pub fn object_csum_digest(&self, oid: ObjectId) -> Option<(u64, u64)> {
        self.backend.csum_digest(oid)
    }

    /// Raw backend bytes of an object's first `len` bytes (diagnostics).
    pub fn debug_read(&mut self, oid: ObjectId, len: u64) -> Option<Vec<u8>> {
        self.sync_group_log(oid.group());
        let r = self.backend.read(oid, 0, len);
        let _ = self.backend.take_trace();
        r.ok()
    }

    /// Re-applies the group's pending (NVM-durable, unflushed) log records
    /// to the backend so a direct backend read observes every acked write.
    /// The records stay pending — re-applying them again later is
    /// idempotent — so this never races the count-based flush completion.
    fn sync_group_log(&mut self, group: GroupId) {
        if self.logs.get(&group).is_some_and(|l| l.pending() > 0) {
            let txns: Vec<Transaction> = self.logs[&group]
                .export_records()
                .into_iter()
                .map(|r| r.txn)
                .collect();
            for txn in txns {
                self.backend.submit(txn).expect("log re-apply for read");
            }
            let _ = self.backend.take_trace();
        }
    }

    /// The byte extents this OSD tracks for one group, sorted by object.
    pub fn group_extent_map(&self, group: GroupId) -> Vec<(ObjectId, u64)> {
        let mut v: Vec<(ObjectId, u64)> = self
            .group_extents
            .get(&group)
            .map(|m| m.iter().map(|(o, l)| (*o, *l)).collect())
            .unwrap_or_default();
        v.sort_by_key(|(o, _)| o.raw());
        v
    }

    /// Reads the authoritative content of `oid` for a recovery push: the
    /// backend is first brought up to date with the group's pending log
    /// records (reads prefer the log, so the backend alone may be stale).
    fn authoritative_object(&mut self, group: GroupId, oid: ObjectId) -> Option<Vec<u8>> {
        let len = *self.group_extents.get(&group)?.get(&oid)?;
        self.sync_group_log(group);
        let r = self.backend.read(oid, 0, len);
        let _ = self.backend.take_trace();
        r.ok()
    }

    /// Sends one recovery push for `oid` to `peer`: the full authoritative
    /// content plus the primary's newest log entry for the object, so the
    /// receiver can refuse stale pushes and verify the checksum.
    ///
    /// Pushes ride the backfill throttle: at most `max_backfill_inflight`
    /// unacked pushes and `backfill_bytes_per_tick` bytes per tick window.
    /// A throttled push is deferred — it stays in the round's missing set
    /// and the heartbeat-driven retry re-offers it next window.
    fn push_object_to(
        &mut self,
        group: GroupId,
        epoch: u64,
        peer: OsdId,
        oid: ObjectId,
        backfilling: bool,
        fx: &mut Vec<OsdEffect>,
    ) {
        let key = (group, peer, oid.raw());
        if self.backfill_inflight.contains(&key) {
            // Already pushed this window; wait for the ack or the next
            // retransmit window instead of duplicating the transfer.
            return;
        }
        if self.backfill_inflight.len() >= self.cfg.max_backfill_inflight {
            self.backfill_queued += 1;
            self.backfill_deferred = true;
            return;
        }
        let Some(data) = self.authoritative_object(group, oid) else {
            // Nothing readable to push (extent unknown): drop the claim so
            // recovery can finish instead of retrying forever.
            if let Some(rec) = self.recovery.get_mut(&group) {
                if let Some(m) = rec.missing.get_mut(&peer) {
                    m.remove(&oid.raw());
                }
            }
            return;
        };
        // A full budget always admits at least one push, so an object larger
        // than the per-tick budget cannot wedge recovery forever.
        if (data.len() as u64) > self.backfill_budget
            && self.backfill_budget < self.cfg.backfill_bytes_per_tick
        {
            self.backfill_queued += 1;
            self.backfill_deferred = true;
            return;
        }
        self.backfill_budget = self.backfill_budget.saturating_sub(data.len() as u64);
        self.backfill_inflight.insert(key);
        let entry = self.newest_entry(group, oid);
        let content_digest = digest_bytes(&data);
        self.recovery_pushes += 1;
        if backfilling {
            self.backfill_bytes += data.len() as u64;
        }
        fx.push(OsdEffect::SendPeer {
            to: peer,
            msg: PeerMsg::PushObject {
                group,
                epoch,
                entry,
                data,
                content_digest,
            },
        });
    }

    /// Enters Peering for every group this OSD now leads: drops rounds for
    /// groups it no longer leads and queries each acting-set peer for its
    /// pg_log. Solo groups (no peers up) have nobody to heal and skip it.
    fn start_peering(&mut self, fx: &mut Vec<OsdEffect>) {
        let epoch = self.map.epoch;
        let stale: Vec<GroupId> = self
            .recovery
            .keys()
            .copied()
            .filter(|&g| self.map.try_primary(g) != Some(self.id))
            .collect();
        for g in stale {
            self.recovery.remove(&g);
        }
        for g in 0..self.map.pg_count {
            let group = GroupId(g);
            let set = self.map.acting_set(group);
            if set.first() != Some(&self.id) || set.len() < 2 {
                continue;
            }
            let peers: BTreeSet<OsdId> = set.into_iter().filter(|&o| o != self.id).collect();
            for &peer in &peers {
                fx.push(OsdEffect::SendPeer {
                    to: peer,
                    msg: PeerMsg::PgQuery {
                        group,
                        epoch,
                        from: self.id,
                    },
                });
            }
            self.recovery.insert(
                group,
                PgRecovery {
                    epoch,
                    state: PgState::Peering,
                    awaiting_infos: peers,
                    infos: BTreeMap::new(),
                    missing: BTreeMap::new(),
                    backfill_peers: BTreeSet::new(),
                },
            );
        }
    }

    /// All peer infos arrived: diff each peer's log against ours, cut the
    /// per-peer missing sets, and start pushing. A peer whose log shares no
    /// history with ours (empty while we have entries) fell off the log tail
    /// and gets a full backfill of every object we track for the group.
    fn finish_peering(&mut self, group: GroupId, fx: &mut Vec<OsdEffect>) {
        let Some(epoch) = self.recovery.get(&group).map(|r| r.epoch) else {
            return;
        };
        let my_log: Vec<PgLogEntry> = self
            .pg_log
            .get(&group)
            .map(|l| l.iter().copied().collect())
            .unwrap_or_default();
        // Newest entry per object on our side.
        let mut latest: BTreeMap<u64, PgLogEntry> = BTreeMap::new();
        for e in &my_log {
            let slot = latest.entry(e.oid.raw()).or_insert(*e);
            if (e.epoch, e.version) > (slot.epoch, slot.version) {
                *slot = *e;
            }
        }
        let all_extents = self.group_extent_map(group);
        let Some(rec) = self.recovery.get_mut(&group) else {
            return;
        };
        let infos = std::mem::take(&mut rec.infos);
        let mut any_backfill = false;
        let mut any_missing = false;
        for (peer, entries) in infos {
            let peer_keys: BTreeSet<(u64, u64, u64)> =
                entries.iter().map(PgLogEntry::key).collect();
            let mut need: BTreeMap<u64, ObjectId> = BTreeMap::new();
            if entries.is_empty() && !my_log.is_empty() {
                // No shared history: backfill everything we track.
                for &(oid, _) in &all_extents {
                    need.insert(oid.raw(), oid);
                }
                rec.backfill_peers.insert(peer);
                any_backfill = true;
            } else {
                // Log replay: push the objects whose newest entry the peer
                // lacks. Entries the peer has that *we* lack (e.g. a write
                // we lost to a torn NVM tail while down) are deliberately
                // left alone: overwriting them could destroy an acked write
                // the peer is authoritative for — the joiner pull on our own
                // rejoin is what heals us from the peer, never the reverse.
                for e in latest.values() {
                    if !peer_keys.contains(&e.key()) {
                        need.insert(e.oid.raw(), e.oid);
                    }
                }
            }
            if !need.is_empty() {
                any_missing = true;
                rec.missing.insert(peer, need);
            }
        }
        if !any_missing {
            self.recovery.remove(&group);
            return;
        }
        rec.state = if any_backfill {
            PgState::Backfilling
        } else {
            PgState::Recovering
        };
        let work: Vec<(OsdId, Vec<ObjectId>, bool)> = self
            .recovery
            .get(&group)
            .map(|r| {
                r.missing
                    .iter()
                    .map(|(p, m)| {
                        (
                            *p,
                            m.values().copied().collect(),
                            r.backfill_peers.contains(p),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (peer, oids, backfilling) in work {
            for oid in oids {
                self.push_object_to(group, epoch, peer, oid, backfilling, fx);
            }
        }
    }

    /// Heartbeat-driven recovery retries: lost queries are re-asked and
    /// outstanding pushes re-sent, so a dropped message can never wedge a
    /// peering round.
    fn retry_recovery(&mut self, fx: &mut Vec<OsdEffect>) {
        let rounds: Vec<(GroupId, u64, PgState)> = self
            .recovery
            .iter()
            .map(|(g, r)| (*g, r.epoch, r.state))
            .collect();
        for (group, epoch, state) in rounds {
            if state == PgState::Peering {
                let waiting: Vec<OsdId> = self.recovery[&group]
                    .awaiting_infos
                    .iter()
                    .copied()
                    .collect();
                for peer in waiting {
                    fx.push(OsdEffect::SendPeer {
                        to: peer,
                        msg: PeerMsg::PgQuery {
                            group,
                            epoch,
                            from: self.id,
                        },
                    });
                }
            } else {
                let work: Vec<(OsdId, Vec<ObjectId>, bool)> = self.recovery[&group]
                    .missing
                    .iter()
                    .map(|(p, m)| {
                        (
                            *p,
                            m.values().copied().collect(),
                            self.recovery[&group].backfill_peers.contains(p),
                        )
                    })
                    .collect();
                for (peer, oids, backfilling) in work {
                    for oid in oids {
                        self.push_object_to(group, epoch, peer, oid, backfilling, fx);
                    }
                }
            }
        }
    }

    /// Heartbeat-driven replication retransmit: an in-flight write still
    /// waiting on replica acks after two ticks has very likely lost either
    /// the repop or the ack; re-send to the laggards. This is what guarantees
    /// replicas converge even when the *client* has given up on the op.
    fn retransmit_stale_inflight(&mut self, fx: &mut Vec<OsdEffect>) {
        let mut seqs: Vec<u64> = self.inflight.keys().copied().collect();
        seqs.sort_unstable();
        let mut stale: Vec<(u64, GroupId, Transaction)> = Vec::new();
        for seq in seqs {
            let w = self.inflight.get_mut(&seq).expect("listed");
            if w.waiting_acks.is_empty() {
                continue;
            }
            w.ticks += 1;
            if w.ticks >= 2 {
                w.ticks = 0;
                stale.push((seq, w.group, w.txn.clone()));
            }
        }
        for (seq, group, txn) in stale {
            self.retransmit_pending(seq, group, txn, fx);
        }
    }

    /// Re-sends `PullLog` for every group whose pulled records or backfill
    /// have not arrived (the originals may have been dropped or cut off by a
    /// partition). Driven by the heartbeat timer.
    fn retry_pulls(&mut self, fx: &mut Vec<OsdEffect>) {
        let mut groups: Vec<GroupId> = self.awaiting_log.iter().copied().collect();
        groups.extend(self.awaiting_backfill.iter().copied());
        groups.sort();
        groups.dedup();
        for group in groups {
            // Prefer the recorded data-holding source; fall back to a
            // current acting-set peer only if the source has since died.
            let peer = self
                .pull_sources
                .get(&group)
                .copied()
                .filter(|&o| self.map.osd(o).up)
                .or_else(|| {
                    self.map
                        .acting_set(group)
                        .into_iter()
                        .find(|&o| o != self.id)
                });
            if let Some(peer) = peer {
                self.pull_sources.insert(group, peer);
                fx.push(OsdEffect::SendPeer {
                    to: peer,
                    msg: PeerMsg::PullLog {
                        group,
                        from: self.id,
                    },
                });
            }
        }
    }

    /// Starts a scrub round for `group` (primary only). A round already
    /// running keeps running; starts blocked by an active recovery, an
    /// unfinished join, or the deep-read throttle are queued and retried on
    /// the heartbeat.
    fn on_scrub_start(&mut self, group: GroupId, deep: bool, fx: &mut Vec<OsdEffect>) {
        if self.cfg.mode.null_transaction() || self.cfg.mode.null_store() {
            return; // no data to scrub
        }
        if self.map.try_primary(group) != Some(self.id) {
            return;
        }
        if let Some(rec) = self.scrubs.get(&group) {
            if !rec.deep && deep {
                // Upgrade request while a light round runs: queue the deep
                // pass instead of losing it.
                self.scrub_queue.insert(group, true);
            }
            return;
        }
        if self.recovery.contains_key(&group)
            || self.awaiting_log.contains(&group)
            || self.awaiting_backfill.contains(&group)
        {
            // Recovery owns the group right now; scrub once it settles.
            let slot = self.scrub_queue.entry(group).or_insert(deep);
            *slot |= deep;
            return;
        }
        if deep {
            // Deep scrubs read every tracked byte; charge the shared
            // recovery byte budget so scrub and backfill together stay
            // under the same ceiling. A full budget always admits one
            // group, so oversized groups cannot starve forever.
            let total: u64 = self
                .group_extents
                .get(&group)
                .map(|m| m.values().sum())
                .unwrap_or(0);
            if total > self.backfill_budget
                && self.backfill_budget < self.cfg.backfill_bytes_per_tick
            {
                let slot = self.scrub_queue.entry(group).or_insert(deep);
                *slot |= deep;
                self.scrub_deferred = true;
                return;
            }
            self.backfill_budget = self.backfill_budget.saturating_sub(total);
        }
        let epoch = self.map.epoch;
        let peers: BTreeSet<OsdId> = self
            .map
            .acting_set(group)
            .into_iter()
            .filter(|&o| o != self.id)
            .collect();
        let local = self.scrub_local_map(group, deep, fx);
        let mut maps = BTreeMap::new();
        maps.insert(self.id, local);
        for &peer in &peers {
            fx.push(OsdEffect::SendPeer {
                to: peer,
                msg: PeerMsg::ScrubRequest {
                    group,
                    epoch,
                    deep,
                    from: self.id,
                },
            });
        }
        let done = peers.is_empty();
        self.scrubs.insert(
            group,
            ScrubRound {
                epoch,
                deep,
                awaiting: peers,
                maps,
                compared: false,
                self_wait: BTreeMap::new(),
                peer_repairs: BTreeMap::new(),
            },
        );
        if done {
            // Solo group: nothing to compare against; a deep pass still
            // surfaces local rot through the read-repair fetch path.
            self.finish_scrub(group, fx);
        }
    }

    /// Builds this OSD's scrub map of `group`: one [`ScrubEntry`] per
    /// tracked object. Light scrubs use checksum metadata where the backend
    /// has it (no data reads) and fall back to digesting the bytes; deep
    /// scrubs always read everything, so rotted blocks trip their checksum
    /// and mark the entry damaged.
    fn scrub_local_map(
        &mut self,
        group: GroupId,
        deep: bool,
        fx: &mut Vec<OsdEffect>,
    ) -> Vec<ScrubEntry> {
        self.sync_group_log(group);
        let extents = self.group_extent_map(group);
        let mut entries = Vec::with_capacity(extents.len());
        for (oid, len) in extents {
            if len == 0 {
                continue;
            }
            let (epoch, version) = self.pg_latest(group, oid);
            let entry = |size, digest, damaged| ScrubEntry {
                oid_raw: oid.raw(),
                size,
                digest,
                damaged,
                epoch,
                version,
            };
            let entry = if !deep {
                match self.backend.csum_digest(oid) {
                    Some((size, digest)) => entry(size, digest, false),
                    // No checksum metadata (LSM backend): light degrades to
                    // digesting the bytes, Err meaning the copy is gone.
                    None => match self.backend.read(oid, 0, len) {
                        Ok(data) => entry(len, digest_bytes(&data), false),
                        Err(_) => entry(len, 0, true),
                    },
                }
            } else {
                self.scrub_bytes += len;
                match self.backend.read(oid, 0, len) {
                    Ok(data) => entry(len, digest_bytes(&data), false),
                    Err(_) => entry(len, 0, true),
                }
            };
            entries.push(entry);
        }
        let trace = self.backend.take_trace();
        if !trace.is_empty() {
            let token = self.token();
            self.pending_store.insert(token, StoreCtx::Background);
            fx.push(OsdEffect::StoreIo {
                token,
                trace,
                wait: false,
            });
        }
        entries
    }

    /// All scrub maps arrived: vote an authoritative `(size, digest)` per
    /// object (majority of undamaged copies; ties go to the copy held by
    /// the smallest OSD id) and cut the repair sets. Copies that are
    /// damaged, missing, or divergent are errors; objects with no good copy
    /// anywhere are counted but unrepairable and dropped so the group can
    /// return to Active.
    fn finish_scrub(&mut self, group: GroupId, fx: &mut Vec<OsdEffect>) {
        let Some(rec) = self.scrubs.get_mut(&group) else {
            return;
        };
        let maps = std::mem::take(&mut rec.maps);
        rec.compared = true;
        // Union of objects over every member's map.
        let mut all: BTreeMap<u64, Vec<(OsdId, ScrubEntry)>> = BTreeMap::new();
        for (&member, entries) in &maps {
            for e in entries {
                all.entry(e.oid_raw).or_default().push((member, *e));
            }
        }
        let members: Vec<OsdId> = maps.keys().copied().collect();
        let mut self_wait: BTreeMap<u64, ObjectId> = BTreeMap::new();
        let mut peer_repairs: BTreeMap<u64, (ObjectId, BTreeSet<OsdId>)> = BTreeMap::new();
        let mut errors = 0u64;
        for (raw, copies) in &all {
            let oid = ObjectId::from_raw(*raw);
            // Maps are collected at different instants, so a client write
            // landing mid-round leaves the copies at different pg_log
            // versions with honestly different bytes. That is replication in
            // progress, not damage: skip the object and let the next round
            // see it at rest. Same-version divergence is the real thing.
            let mut stamps = copies
                .iter()
                .filter(|(_, e)| !e.damaged)
                .map(|(_, e)| (e.epoch, e.version));
            let first = stamps.next();
            if first.is_some() && !stamps.all(|s| Some(s) == first) {
                continue;
            }
            // Vote among undamaged copies.
            let mut votes: BTreeMap<(u64, u64), Vec<OsdId>> = BTreeMap::new();
            for (member, e) in copies {
                if !e.damaged {
                    votes.entry((e.size, e.digest)).or_default().push(*member);
                }
            }
            let authoritative = votes
                .iter()
                .max_by_key(|(_, holders)| {
                    (
                        holders.len(),
                        // Tie → prefer the digest the smallest id holds
                        // (Reverse of min id sorts it last = max).
                        std::cmp::Reverse(holders.iter().min().copied()),
                    )
                })
                .map(|(key, _)| *key);
            let Some(auth) = authoritative else {
                // Every copy is damaged: nothing to heal from. Count each
                // bad copy and move on — re-writes recompute checksums and
                // heal the object from above.
                errors += copies.len() as u64;
                continue;
            };
            for &member in &members {
                let good = copies
                    .iter()
                    .any(|(m, e)| *m == member && !e.damaged && (e.size, e.digest) == auth);
                if good {
                    continue;
                }
                errors += 1;
                if member == self.id {
                    self_wait.insert(*raw, oid);
                } else {
                    peer_repairs
                        .entry(*raw)
                        .or_insert_with(|| (oid, BTreeSet::new()))
                        .1
                        .insert(member);
                }
            }
        }
        self.scrub_errors_found += errors;
        let rec = self.scrubs.get_mut(&group).expect("round exists");
        rec.self_wait = self_wait;
        rec.peer_repairs = peer_repairs;
        self.drive_scrub_repairs(group, fx);
        self.scrub_maybe_done(group);
    }

    /// Issues the round's outstanding repairs: fetches for locally damaged
    /// objects, pushes (through the throttled recovery push machinery) for
    /// peers — but never of an object still awaiting its own heal, so
    /// rotten bytes are never propagated.
    fn drive_scrub_repairs(&mut self, group: GroupId, fx: &mut Vec<OsdEffect>) {
        let Some(rec) = self.scrubs.get(&group) else {
            return;
        };
        if !rec.compared {
            return;
        }
        let epoch = rec.epoch;
        let fetch: Vec<ObjectId> = rec.self_wait.values().copied().collect();
        let push: Vec<(ObjectId, Vec<OsdId>)> = rec
            .peer_repairs
            .iter()
            .filter(|(raw, _)| !rec.self_wait.contains_key(raw))
            .map(|(_, (oid, peers))| (*oid, peers.iter().copied().collect()))
            .collect();
        for oid in fetch {
            self.request_object_fetch(group, oid, fx);
        }
        for (oid, peers) in push {
            for peer in peers {
                self.push_object_to(group, epoch, peer, oid, false, fx);
            }
        }
    }

    /// Drops a finished scrub round (maps compared, no repairs left).
    fn scrub_maybe_done(&mut self, group: GroupId) {
        let done = self
            .scrubs
            .get(&group)
            .is_some_and(|r| r.compared && r.self_wait.is_empty() && r.peer_repairs.is_empty());
        if done {
            self.scrubs.remove(&group);
            self.scrubs_completed += 1;
        }
    }

    /// Asks an acting-set peer to push `oid` back to this OSD (self-heal of
    /// a copy that failed its checksum). Deduplicated per object; the
    /// heartbeat retries with source rotation, so one rotten or dead peer
    /// cannot wedge the heal.
    fn request_object_fetch(&mut self, group: GroupId, oid: ObjectId, fx: &mut Vec<OsdEffect>) {
        let key = (group, oid.raw());
        if self.fetches.contains_key(&key) {
            return;
        }
        let Some(src) = self
            .map
            .acting_set(group)
            .into_iter()
            .find(|&o| o != self.id)
        else {
            return; // nobody to heal from; a later map/scrub retries
        };
        self.fetches.insert(key, (oid, src));
        fx.push(OsdEffect::SendPeer {
            to: src,
            msg: PeerMsg::ScrubFetch {
                group,
                epoch: self.map.epoch,
                oid,
                from: self.id,
            },
        });
    }

    /// A pushed object applied cleanly over a copy this OSD was trying to
    /// heal: settle the fetch, credit the scrub round, and release any
    /// peer repairs that were waiting on our own copy becoming good.
    fn note_object_healed(&mut self, group: GroupId, oid: ObjectId, fx: &mut Vec<OsdEffect>) {
        self.fetches.remove(&(group, oid.raw()));
        let mut drive = false;
        if let Some(rec) = self.scrubs.get_mut(&group) {
            if rec.compared && rec.self_wait.remove(&oid.raw()).is_some() {
                self.scrub_errors_repaired += 1;
                drive = true;
            }
        }
        if drive {
            self.drive_scrub_repairs(group, fx);
            self.scrub_maybe_done(group);
        }
    }

    /// Heartbeat-driven scrub progress: queued starts re-attempted (budget
    /// has replenished), un-replied map requests re-sent, repair pushes
    /// re-offered into the new throttle window, and self-heal fetches
    /// retried against the next acting-set member.
    fn retry_scrubs(&mut self, fx: &mut Vec<OsdEffect>) {
        let queued: Vec<(GroupId, bool)> =
            std::mem::take(&mut self.scrub_queue).into_iter().collect();
        for (group, deep) in queued {
            self.on_scrub_start(group, deep, fx);
        }
        let groups: Vec<GroupId> = self.scrubs.keys().copied().collect();
        for group in groups {
            let rec = &self.scrubs[&group];
            if !rec.compared {
                let (epoch, deep) = (rec.epoch, rec.deep);
                let waiting: Vec<OsdId> = rec.awaiting.iter().copied().collect();
                for peer in waiting {
                    fx.push(OsdEffect::SendPeer {
                        to: peer,
                        msg: PeerMsg::ScrubRequest {
                            group,
                            epoch,
                            deep,
                            from: self.id,
                        },
                    });
                }
            } else {
                self.drive_scrub_repairs(group, fx);
            }
        }
        let keys: Vec<(GroupId, u64)> = self.fetches.keys().copied().collect();
        for key in keys {
            let (oid, cur) = self.fetches[&key];
            let group = key.0;
            let set: Vec<OsdId> = self
                .map
                .acting_set(group)
                .into_iter()
                .filter(|&o| o != self.id)
                .collect();
            if set.is_empty() {
                continue;
            }
            let next = match set.iter().position(|&o| o == cur) {
                Some(i) => set[(i + 1) % set.len()],
                None => set[0],
            };
            self.fetches.insert(key, (oid, next));
            fx.push(OsdEffect::SendPeer {
                to: next,
                msg: PeerMsg::ScrubFetch {
                    group,
                    epoch: self.map.epoch,
                    oid,
                    from: self.id,
                },
            });
        }
    }

    /// Handles one input, returning the effects for the driver.
    pub fn handle(&mut self, input: OsdInput) -> Vec<OsdEffect> {
        let mut fx = Vec::new();
        self.handle_into(input, &mut fx);
        fx
    }

    /// [`Osd::handle`] into a caller-owned buffer, so drivers that process
    /// millions of inputs can reuse one allocation instead of paying a
    /// fresh `Vec` per event. Effects are appended; the caller clears.
    pub fn handle_into(&mut self, input: OsdInput, fx: &mut Vec<OsdEffect>) {
        match input {
            OsdInput::Client { from, req } => self.on_client(from, req, fx),
            OsdInput::Peer { from, msg } => self.on_peer(from, msg, fx),
            OsdInput::StoreDurable { token } => self.on_store_durable(token, fx),
            OsdInput::FlushGroup { group } => self.on_flush_group(group, fx),
            OsdInput::ReadFromStore { token } => self.on_read_from_store(token, fx),
            OsdInput::SubmitDeferred { token } => self.on_submit_deferred(token, fx),
            OsdInput::MaintStep => self.on_maint_step(fx),
            OsdInput::ScrubStart { group, deep } => self.on_scrub_start(group, deep, fx),
            OsdInput::HeartbeatTick => {
                fx.push(OsdEffect::Heartbeat);
                // New throttle window: account the one that just closed,
                // replenish the byte budget, and let unacked pushes
                // retransmit (they re-enter the window via retry_recovery).
                if self.backfill_deferred {
                    self.backfill_throttled_nanos += self.cfg.backfill_tick_nanos;
                    self.backfill_deferred = false;
                }
                self.backfill_budget = self.cfg.backfill_bytes_per_tick;
                self.backfill_inflight.clear();
                // Piggy-back peer-recovery retries on the liveness timer: a
                // lost PullLog/LogRecords/Backfill would otherwise wedge the
                // join forever.
                self.retry_pulls(fx);
                // Same for lost peering queries and recovery pushes, and for
                // replication messages of writes stuck on laggard replicas.
                self.retry_recovery(fx);
                self.retransmit_stale_inflight(fx);
                // Scrub rides the same timer: account a throttled window,
                // then re-drive queued starts, map requests, repairs and
                // self-heal fetches into the replenished budget.
                if self.scrub_deferred {
                    self.scrub_throttled_nanos += self.cfg.backfill_tick_nanos;
                    self.scrub_deferred = false;
                }
                self.retry_scrubs(fx);
            }
            OsdInput::MapUpdate(map) => self.on_map_update(map, fx),
        }
    }

    fn on_client(&mut self, from: ClientId, req: ClientReq, fx: &mut Vec<OsdEffect>) {
        match req {
            ClientReq::Write {
                op,
                oid,
                offset,
                data,
            } => {
                let group = oid.group();
                if self.already_completed(from, op) {
                    fx.push(OsdEffect::Reply {
                        to: from,
                        msg: ClientReply::Done { op },
                    });
                    return;
                }
                if let Some(seq) = self.inflight_seq(from, op) {
                    // Retry of an op still replicating: the original peer
                    // message may have been lost, so rebuild the identical
                    // transaction and retransmit to laggard replicas only.
                    let txn = self.build_write_txn(group, seq, oid, offset, data);
                    self.retransmit_pending(seq, group, txn, fx);
                    return;
                }
                if self.below_write_quorum(group, from, op, fx) {
                    return;
                }
                self.seq += 1;
                let seq = self.seq;
                let txn = self.build_write_txn(group, seq, oid, offset, data);
                self.note_txn(&txn);
                self.pg_log_note(group, seq, &txn);
                if self.cfg.mode.decoupled() {
                    self.write_decoupled(from, op, group, seq, txn, fx);
                } else {
                    self.write_coupled(from, op, group, seq, txn, fx);
                }
            }
            ClientReq::Create { op, oid, size } => {
                let group = oid.group();
                if self.already_completed(from, op) {
                    fx.push(OsdEffect::Reply {
                        to: from,
                        msg: ClientReply::Done { op },
                    });
                    return;
                }
                if let Some(seq) = self.inflight_seq(from, op) {
                    let txn = Transaction::new(group, seq, vec![Op::Create { oid, size }]);
                    self.retransmit_pending(seq, group, txn, fx);
                    return;
                }
                if self.below_write_quorum(group, from, op, fx) {
                    return;
                }
                self.seq += 1;
                let seq = self.seq;
                let txn = Transaction::new(group, seq, vec![Op::Create { oid, size }]);
                self.note_txn(&txn);
                self.pg_log_note(group, seq, &txn);
                if self.cfg.mode.decoupled() {
                    self.write_decoupled(from, op, group, seq, txn, fx);
                } else {
                    self.write_coupled(from, op, group, seq, txn, fx);
                }
            }
            ClientReq::Read {
                op,
                oid,
                offset,
                len,
            } => {
                self.on_client_read(from, op, oid, offset, len, fx);
            }
        }
    }

    /// The `min_size` quorum gate (Ceph semantics): mutations are refused
    /// with a retryable [`StoreError::Degraded`] while too few acting-set
    /// members are up to accept the write safely. Never panics — losing
    /// nodes degrades service instead of crashing placement.
    fn below_write_quorum(
        &mut self,
        group: GroupId,
        from: ClientId,
        op: OpId,
        fx: &mut Vec<OsdEffect>,
    ) -> bool {
        if self.map.acting_set(group).len() >= self.map.min_size {
            return false;
        }
        fx.push(OsdEffect::Reply {
            to: from,
            msg: ClientReply::Error {
                op,
                error: StoreError::Degraded,
            },
        });
        true
    }

    /// Stock write path: replicate and persist before acking (Fig. 3-a).
    fn write_coupled(
        &mut self,
        from: ClientId,
        op: OpId,
        group: GroupId,
        seq: u64,
        txn: Transaction,
        fx: &mut Vec<OsdEffect>,
    ) {
        let replicas = self.replicas_of(group);
        for &r in &replicas {
            fx.push(OsdEffect::SendPeer {
                to: r,
                msg: PeerMsg::Repop {
                    group,
                    seq,
                    txn: txn.clone(),
                },
            });
        }
        let local_done = self.cfg.mode.null_transaction() || self.cfg.mode.null_store();
        self.inflight.insert(
            seq,
            WriteOp {
                client: from,
                op,
                group,
                txn: txn.clone(),
                waiting_acks: replicas,
                local_done,
                ticks: 0,
            },
        );
        self.inflight_ops.insert((from, op), seq);
        if local_done {
            self.try_complete_write(seq, fx);
            return;
        }
        if self.cfg.mode.prioritized() {
            // PTC: the priority thread never does storage processing; hand
            // the transaction to a non-priority thread (§IV-B).
            let token = self.token();
            self.deferred_submits.insert(
                token,
                DeferredSubmit {
                    txn,
                    ctx: StoreCtx::WriteLocal { seq },
                },
            );
            fx.push(OsdEffect::WakeSubmit { token });
            return;
        }
        if let Err(error) = self.backend.submit(txn) {
            self.inflight.remove(&seq);
            self.inflight_ops.remove(&(from, op));
            fx.push(OsdEffect::Reply {
                to: from,
                msg: ClientReply::Error { op, error },
            });
            return;
        }
        let token = self.token();
        let trace = self.backend.take_trace();
        self.pending_store
            .insert(token, StoreCtx::WriteLocal { seq });
        fx.push(OsdEffect::StoreIo {
            token,
            trace,
            wait: true,
        });
        self.kick_maintenance(fx);
    }

    /// Decoupled write path (Fig. 3-b): log to NVM, replicate, ack; flush
    /// later in batches.
    fn write_decoupled(
        &mut self,
        from: ClientId,
        op: OpId,
        group: GroupId,
        seq: u64,
        txn: Transaction,
        fx: &mut Vec<OsdEffect>,
    ) {
        let replicas = self.replicas_of(group);
        for &r in &replicas {
            fx.push(OsdEffect::SendPeer {
                to: r,
                msg: PeerMsg::RepopNvm {
                    group,
                    seq,
                    txn: txn.clone(),
                },
            });
        }
        let (bytes, stall) = self.log_append_with_fallback(group, txn.clone(), fx);
        fx.push(OsdEffect::NvmWritten { bytes });
        let local_done = match stall {
            None => true,
            Some(token) => {
                // Synchronous-flush backpressure: the ack waits until the
                // forced flush is durable.
                self.pending_store
                    .insert(token, StoreCtx::WriteLocal { seq });
                false
            }
        };
        self.inflight.insert(
            seq,
            WriteOp {
                client: from,
                op,
                group,
                txn,
                waiting_acks: replicas,
                local_done,
                ticks: 0,
            },
        );
        self.inflight_ops.insert((from, op), seq);
        let needs_flush = {
            let log = self.log_for(group);
            log.pending() >= log.flush_threshold
        };
        if needs_flush && !self.rt(group).flushing {
            fx.push(OsdEffect::WakeFlush { group });
        }
        self.try_complete_write(seq, fx);
    }

    /// Appends to the group log; when NVM is full, forces a synchronous
    /// flush first (the paper's degenerate full-NVM case: "flushing needs
    /// to be synchronously done before handling I/O operations"). Returns
    /// the NVM bytes written plus, on a stall, the store token the caller
    /// must wait on before acknowledging — that wait is the backpressure
    /// that keeps a log-ahead system device-bound under sustained load.
    fn log_append_with_fallback(
        &mut self,
        group: GroupId,
        txn: Transaction,
        fx: &mut Vec<OsdEffect>,
    ) -> (u64, Option<u64>) {
        // Oversized writes bypass the log entirely: a record that cannot
        // fit the ring is persisted synchronously to the backend (real
        // journals cap entry sizes the same way).
        let estimated = txn.user_bytes() + 2048;
        if estimated + 64 >= self.cfg.ring_bytes {
            self.backend.submit(txn).expect("oversized bypass submit");
            let token = self.token();
            let trace = self.backend.take_trace();
            self.pending_store.insert(token, StoreCtx::Background);
            fx.push(OsdEffect::StoreIo {
                token,
                trace,
                wait: true,
            });
            self.kick_maintenance(fx);
            return (0, Some(token));
        }
        // Take the log out to satisfy the borrow checker across the
        // flush-retry path.
        self.log_for(group);
        let mut log = self.logs.remove(&group).expect("ensured above");
        let mut stall_token = None;
        let bytes = match log.append(&mut self.nvm, txn.clone()) {
            Ok(outcome) => outcome.nvm_bytes,
            Err(StoreError::NoSpace) => {
                self.nvm_full_stalls += 1;
                let txns = log
                    .drain_for_flush(&mut self.nvm, usize::MAX)
                    .expect("drain succeeds");
                for t in txns {
                    self.backend.submit(t).expect("flush submit");
                }
                let token = self.token();
                let trace = self.backend.take_trace();
                self.pending_store.insert(token, StoreCtx::Background);
                fx.push(OsdEffect::StoreIo {
                    token,
                    trace,
                    wait: true,
                });
                stall_token = Some(token);
                log.append(&mut self.nvm, txn)
                    .expect("append succeeds after full drain")
                    .nvm_bytes
            }
            Err(e) => panic!("{}: unexpected op-log error: {e}", self.id),
        };
        self.logs.insert(group, log);
        (bytes, stall_token)
    }

    fn rt(&mut self, group: GroupId) -> &mut GroupRuntime {
        self.group_rt.entry(group).or_default()
    }

    fn on_client_read(
        &mut self,
        from: ClientId,
        op: OpId,
        oid: ObjectId,
        offset: u64,
        len: u64,
        fx: &mut Vec<OsdEffect>,
    ) {
        if self.cfg.mode.null_transaction() {
            // No storage processing: answer immediately (Ideal / RTC-v3).
            fx.push(OsdEffect::Reply {
                to: from,
                msg: ClientReply::Data {
                    op,
                    data: vec![0; len as usize].into(),
                },
            });
            return;
        }
        if self.cfg.mode.decoupled() {
            let group = oid.group();
            let path = self
                .logs
                .get(&group)
                .map_or(ReadPath::Store, |log| log.read_path(oid, offset, len));
            match path {
                ReadPath::FromLog(data) => {
                    fx.push(OsdEffect::Reply {
                        to: from,
                        msg: ClientReply::Data { op, data },
                    });
                }
                ReadPath::Store => {
                    if self.awaiting_backfill.contains(&group) {
                        // The backend may still miss data the backfill will
                        // bring; park the read until it arrives.
                        let dr = DeferredRead {
                            client: from,
                            op,
                            oid,
                            offset,
                            len,
                        };
                        self.rt(group).waiting_reads.push(dr);
                        return;
                    }
                    let token = self.token();
                    self.deferred_reads.insert(
                        token,
                        DeferredRead {
                            client: from,
                            op,
                            oid,
                            offset,
                            len,
                        },
                    );
                    fx.push(OsdEffect::WakeRead { token });
                }
                ReadPath::FlushThenStore => {
                    let dr = DeferredRead {
                        client: from,
                        op,
                        oid,
                        offset,
                        len,
                    };
                    self.rt(group).waiting_reads.push(dr);
                    if !self.rt(group).flushing {
                        fx.push(OsdEffect::WakeFlush { group });
                    }
                }
            }
            return;
        }
        if self.cfg.mode.prioritized() {
            // PTC: store reads happen on non-priority threads too.
            let token = self.token();
            self.deferred_reads.insert(
                token,
                DeferredRead {
                    client: from,
                    op,
                    oid,
                    offset,
                    len,
                },
            );
            fx.push(OsdEffect::WakeRead { token });
            return;
        }
        // Stock thread-pool / RTC modes: read the backend inline.
        self.read_store_now(
            DeferredRead {
                client: from,
                op,
                oid,
                offset,
                len,
            },
            fx,
        );
    }

    fn read_store_now(&mut self, dr: DeferredRead, fx: &mut Vec<OsdEffect>) {
        match self.backend.read(dr.oid, dr.offset, dr.len) {
            Ok(data) => {
                let trace = self.backend.take_trace();
                if trace
                    .iter()
                    .any(|t| matches!(t.kind, rablock_storage::TraceKind::Read))
                {
                    let token = self.token();
                    self.pending_store.insert(
                        token,
                        StoreCtx::Read {
                            client: dr.client,
                            op: dr.op,
                            data,
                        },
                    );
                    fx.push(OsdEffect::StoreIo {
                        token,
                        trace,
                        wait: true,
                    });
                } else {
                    fx.push(OsdEffect::Reply {
                        to: dr.client,
                        msg: ClientReply::Data {
                            op: dr.op,
                            data: data.into(),
                        },
                    });
                }
            }
            Err(error) => {
                // A failed read may still have touched the device (e.g. the
                // block whose checksum tripped); drop the partial trace.
                let _ = self.backend.take_trace();
                if matches!(error, StoreError::ChecksumMismatch) {
                    // Read-path verification caught rot: the client gets a
                    // retryable error (and redirects to another replica);
                    // this OSD heals itself in the background.
                    self.read_checksum_errors += 1;
                    self.request_object_fetch(dr.oid.group(), dr.oid, fx);
                }
                fx.push(OsdEffect::Reply {
                    to: dr.client,
                    msg: ClientReply::Error { op: dr.op, error },
                });
            }
        }
    }

    fn on_peer(&mut self, from: OsdId, msg: PeerMsg, fx: &mut Vec<OsdEffect>) {
        match msg {
            PeerMsg::Repop { group, seq, txn } => {
                if self.replica_already_applied(group, seq) {
                    // Primary retransmit after a lost ack: re-ack only.
                    fx.push(OsdEffect::SendPeer {
                        to: from,
                        msg: PeerMsg::RepAck {
                            group,
                            seq,
                            from: self.id,
                        },
                    });
                    return;
                }
                self.note_replica_applied(group, seq);
                if self.cfg.mode.null_transaction() || self.cfg.mode.null_store() {
                    fx.push(OsdEffect::SendPeer {
                        to: from,
                        msg: PeerMsg::RepAck {
                            group,
                            seq,
                            from: self.id,
                        },
                    });
                    return;
                }
                self.note_txn(&txn);
                self.pg_log_note(group, seq, &txn);
                let ctx = StoreCtx::ReplicaPersist {
                    primary: from,
                    group,
                    seq,
                };
                if self.cfg.mode.prioritized() {
                    let token = self.token();
                    self.deferred_submits
                        .insert(token, DeferredSubmit { txn, ctx });
                    fx.push(OsdEffect::WakeSubmit { token });
                    return;
                }
                match self.backend.submit(txn) {
                    Ok(()) => {
                        let token = self.token();
                        let trace = self.backend.take_trace();
                        self.pending_store.insert(token, ctx);
                        fx.push(OsdEffect::StoreIo {
                            token,
                            trace,
                            wait: true,
                        });
                        self.kick_maintenance(fx);
                    }
                    Err(error) => {
                        // A failed apply must not kill the OSD: withdraw the
                        // provisional bookkeeping and NACK so the primary
                        // can mark this peer missing and re-drive recovery.
                        self.unnote_replica_applied(group, seq);
                        self.pg_log_unnote(group, seq);
                        fx.push(OsdEffect::SendPeer {
                            to: from,
                            msg: PeerMsg::RepNack {
                                group,
                                seq,
                                from: self.id,
                                error,
                            },
                        });
                    }
                }
            }
            PeerMsg::RepopNvm { group, seq, txn } => {
                if self.replica_already_applied(group, seq) {
                    fx.push(OsdEffect::SendPeer {
                        to: from,
                        msg: PeerMsg::RepAck {
                            group,
                            seq,
                            from: self.id,
                        },
                    });
                    return;
                }
                self.note_replica_applied(group, seq);
                self.note_txn(&txn);
                self.pg_log_note(group, seq, &txn);
                let (bytes, stall) = self.log_append_with_fallback(group, txn, fx);
                fx.push(OsdEffect::NvmWritten { bytes });
                match stall {
                    None => fx.push(OsdEffect::SendPeer {
                        to: from,
                        msg: PeerMsg::RepAck {
                            group,
                            seq,
                            from: self.id,
                        },
                    }),
                    Some(token) => {
                        // Backpressure on the replica too: ack only after
                        // the forced flush lands.
                        self.pending_store.insert(
                            token,
                            StoreCtx::ReplicaPersist {
                                primary: from,
                                group,
                                seq,
                            },
                        );
                    }
                }
                let needs_flush = {
                    let log = self.log_for(group);
                    log.pending() >= log.flush_threshold
                };
                if needs_flush && !self.rt(group).flushing {
                    fx.push(OsdEffect::WakeFlush { group });
                }
            }
            PeerMsg::RepAck {
                seq, from: replica, ..
            } => {
                if let Some(wop) = self.inflight.get_mut(&seq) {
                    wop.waiting_acks.retain(|&o| o != replica);
                }
                self.try_complete_write(seq, fx);
            }
            PeerMsg::PullLog {
                group,
                from: requester,
            } => {
                if self.awaiting_log.contains(&group) || self.awaiting_backfill.contains(&group) {
                    // Not authoritative yet: this OSD is itself still
                    // synchronizing the group. Answering now would hand the
                    // requester an empty "complete" backfill. Stay silent —
                    // the requester's pull retry re-drives the transfer once
                    // our own synchronization lands.
                    return;
                }
                // Bring the backend up to date with the group's pending
                // records first, so the shipped contents include every
                // write this survivor has acked.
                self.sync_group_log(group);
                // Backfill first: full object contents, so the joiner
                // catches up on everything flushed before the failure. The
                // joiner applies these before importing the pending records
                // below.
                let mut extents: Vec<(ObjectId, u64)> = self
                    .group_extents
                    .get(&group)
                    .map(|m| m.iter().map(|(o, l)| (*o, *l)).collect())
                    .unwrap_or_default();
                extents.sort_by_key(|(o, _)| o.raw());
                let mut objects = Vec::new();
                for (oid, len) in extents {
                    if let Ok(data) = self.backend.read(oid, 0, len) {
                        objects.push((oid, data));
                    }
                }
                let trace = self.backend.take_trace();
                if !trace.is_empty() {
                    let token = self.token();
                    self.pending_store.insert(token, StoreCtx::Background);
                    fx.push(OsdEffect::StoreIo {
                        token,
                        trace,
                        wait: false,
                    });
                }
                fx.push(OsdEffect::SendPeer {
                    to: requester,
                    msg: PeerMsg::Backfill { group, objects },
                });
                let records: Vec<Vec<u8>> = self
                    .logs
                    .get(&group)
                    .map(|l| l.export_records().iter().map(LogRecord::encode).collect())
                    .unwrap_or_default();
                fx.push(OsdEffect::SendPeer {
                    to: requester,
                    msg: PeerMsg::LogRecords { group, records },
                });
            }
            PeerMsg::LogRecords { group, records } => {
                if !self.awaiting_log.remove(&group) {
                    // Duplicate or unsolicited response: the first import
                    // won; re-importing could resurrect stale data.
                    return;
                }
                if !self.awaiting_backfill.contains(&group) {
                    self.pull_sources.remove(&group);
                }
                let decoded: Vec<LogRecord> = records
                    .iter()
                    .map(|raw| LogRecord::decode(raw).expect("peer sends valid records").0)
                    .collect();
                for r in &decoded {
                    self.note_txn(&r.txn);
                }
                let total: u64 = records.iter().map(|r| r.len() as u64).sum();
                self.log_for(group);
                let mut log = self.logs.remove(&group).expect("ensured");
                if log.pending() == 0 {
                    log.import_records(&mut self.nvm, decoded)
                        .expect("import into empty log");
                    fx.push(OsdEffect::NvmWritten { bytes: total });
                } else {
                    // Writes already landed here before the pulled records
                    // arrived, so the log holds newer data. Apply the pulled
                    // (older) records straight to the backend: reads prefer
                    // the log, and the eventual flush overwrites with the
                    // newer bytes.
                    for r in decoded {
                        self.backend.submit(r.txn).expect("pulled-record apply");
                    }
                    let trace = self.backend.take_trace();
                    if !trace.is_empty() {
                        let token = self.token();
                        self.pending_store.insert(token, StoreCtx::Background);
                        fx.push(OsdEffect::StoreIo {
                            token,
                            trace,
                            wait: false,
                        });
                    }
                }
                self.logs.insert(group, log);
            }
            PeerMsg::Backfill { group, objects } => {
                if !self.awaiting_backfill.remove(&group) {
                    return; // duplicate or unsolicited
                }
                if !self.awaiting_log.contains(&group) {
                    self.pull_sources.remove(&group);
                }
                for (oid, data) in objects {
                    self.seq += 1;
                    let size = data.len() as u64;
                    let txn = Transaction::new(
                        group,
                        self.seq,
                        vec![
                            Op::Create { oid, size },
                            Op::Write {
                                oid,
                                offset: 0,
                                data: data.into(),
                            },
                        ],
                    );
                    self.note_txn(&txn);
                    self.backend.submit(txn).expect("backfill apply");
                }
                let trace = self.backend.take_trace();
                if !trace.is_empty() {
                    let token = self.token();
                    self.pending_store.insert(token, StoreCtx::Background);
                    fx.push(OsdEffect::StoreIo {
                        token,
                        trace,
                        wait: false,
                    });
                }
                self.kick_maintenance(fx);
                // Flushes and cold reads were held back while waiting; let
                // them go now.
                let needs_flush = self
                    .logs
                    .get(&group)
                    .is_some_and(|l| l.pending() >= l.flush_threshold);
                let has_readers = !self.rt(group).waiting_reads.is_empty();
                if (needs_flush || has_readers) && !self.rt(group).flushing {
                    fx.push(OsdEffect::WakeFlush { group });
                }
            }
            PeerMsg::PgQuery {
                group,
                epoch,
                from: requester,
            } => {
                let entries: Vec<PgLogEntry> = self
                    .pg_log
                    .get(&group)
                    .map(|l| l.iter().copied().collect())
                    .unwrap_or_default();
                fx.push(OsdEffect::SendPeer {
                    to: requester,
                    msg: PeerMsg::PgInfo {
                        group,
                        epoch,
                        from: self.id,
                        entries,
                    },
                });
            }
            PeerMsg::PgInfo {
                group,
                epoch,
                from: peer,
                entries,
            } => {
                let finish = match self.recovery.get_mut(&group) {
                    Some(rec) if rec.epoch == epoch && rec.state == PgState::Peering => {
                        if rec.awaiting_infos.remove(&peer) {
                            rec.infos.insert(peer, entries);
                        }
                        rec.awaiting_infos.is_empty()
                    }
                    // Stale epoch or no round in flight: a retransmitted
                    // reply from a superseded peering; drop it.
                    _ => false,
                };
                if finish {
                    self.finish_peering(group, fx);
                }
            }
            PeerMsg::PushObject {
                group,
                epoch,
                entry,
                data,
                content_digest,
            } => {
                if digest_bytes(&data) != content_digest {
                    // Corrupted in flight; the primary re-pushes on its next
                    // heartbeat because no ack will arrive.
                    return;
                }
                if self.awaiting_backfill.contains(&group) || self.awaiting_log.contains(&group) {
                    // A full-state pull is in flight for this group; its
                    // responses apply straight to the backend and would roll
                    // back anything this push lands first. Stay silent — the
                    // primary re-pushes on its next heartbeat, after the
                    // pull has settled.
                    return;
                }
                let oid = entry.oid;
                let latest = self.pg_latest(group, oid);
                let pushed = (entry.epoch, entry.version);
                if latest != (0, 0) {
                    if pushed == (0, 0) {
                        // Synthesized backfill push against real logged
                        // history: our entries postdate anything off the
                        // primary's log tail. Ack so the primary stops
                        // counting us missing.
                        fx.push(OsdEffect::SendPeer {
                            to: from,
                            msg: PeerMsg::PushAck {
                                group,
                                epoch,
                                oid,
                                from: self.id,
                            },
                        });
                        return;
                    }
                    if latest > pushed {
                        // We logged a write newer than this snapshot, so
                        // applying it would roll that write back — but we
                        // can't blindly ack either: holding newer entries
                        // doesn't prove we hold the *older* block this push
                        // carries (the dropped write that made the primary
                        // push may be exactly the one we're missing). If
                        // our bytes already match the pushed content there
                        // is nothing to heal: ack so the push loop ends —
                        // without this, a primary that lost its log tail to
                        // a torn NVM write keeps pushing forever, because
                        // its newest entry can never catch up to ours.
                        // Otherwise stay silent; the heartbeat retry
                        // re-reads the primary's content, and once the
                        // refreshed snapshot covers our history it applies
                        // below.
                        let matches = self
                            .authoritative_object(group, oid)
                            .is_some_and(|local| digest_bytes(&local) == content_digest);
                        if matches {
                            // Our copy reads clean and matches: any heal we
                            // were waiting on for it is moot.
                            self.note_object_healed(group, oid, fx);
                            fx.push(OsdEffect::SendPeer {
                                to: from,
                                msg: PeerMsg::PushAck {
                                    group,
                                    epoch,
                                    oid,
                                    from: self.id,
                                },
                            });
                        }
                        return;
                    }
                    // latest <= pushed: the snapshot was read after every
                    // write we hold, so applying it can only heal.
                }
                if self.cfg.mode.decoupled() && self.rt(group).flushing {
                    // A flush is mid-air for this group: completion will
                    // remove a *count* of oldest records, so draining the
                    // log inline here would make it discard newer ones.
                    // Stay silent; the primary re-pushes on its next
                    // heartbeat and flush windows are short.
                    return;
                }
                if self.logs.get(&group).is_some_and(|l| l.pending() > 0) {
                    // Pending (older, per the guard above) records for this
                    // group would otherwise flush over the pushed bytes
                    // later — and a full-object push is far too large for
                    // the NVM ring to ride behind them in log order. Drain
                    // them to the backend first, then apply the push on top.
                    let mut log = self.logs.remove(&group).expect("checked above");
                    let drained = log
                        .drain_for_flush(&mut self.nvm, usize::MAX)
                        .expect("drain before push apply");
                    for t in drained {
                        self.backend.submit(t).expect("pre-push flush submit");
                    }
                    self.logs.insert(group, log);
                }
                self.seq += 1;
                let size = data.len() as u64;
                let txn = Transaction::new(
                    group,
                    self.seq,
                    vec![
                        Op::Create { oid, size },
                        Op::Write {
                            oid,
                            offset: 0,
                            data: data.into(),
                        },
                    ],
                );
                self.note_txn(&txn);
                if entry.version != 0 {
                    // Adopt the pushed history so a later peering round sees
                    // this object as up to date. Backfill pushes (version 0)
                    // carry no real log entry and are deliberately not
                    // logged.
                    let log = self.pg_log.entry(group).or_default();
                    log.push_back(entry);
                    while log.len() > self.cfg.pg_log_limit {
                        log.pop_front();
                    }
                }
                match self.backend.submit(txn) {
                    Ok(()) => {
                        let trace = self.backend.take_trace();
                        if !trace.is_empty() {
                            let token = self.token();
                            self.pending_store.insert(token, StoreCtx::Background);
                            fx.push(OsdEffect::StoreIo {
                                token,
                                trace,
                                wait: false,
                            });
                        }
                    }
                    Err(_) => {
                        // Could not apply (e.g. no space): stay silent so
                        // the primary keeps counting us missing and
                        // retries.
                        let _ = self.backend.take_trace();
                        self.pg_log_unnote(group, entry.version);
                        return;
                    }
                }
                // A full-object apply rewrites every block (and its
                // checksums): whatever heal was pending for this copy is
                // complete.
                self.note_object_healed(group, oid, fx);
                fx.push(OsdEffect::SendPeer {
                    to: from,
                    msg: PeerMsg::PushAck {
                        group,
                        epoch,
                        oid,
                        from: self.id,
                    },
                });
            }
            PeerMsg::PushAck {
                group,
                epoch,
                oid,
                from: peer,
            } => {
                self.backfill_inflight.remove(&(group, peer, oid.raw()));
                // Scrub repairs ride the same push machinery: an ack from a
                // peer we were repairing settles that copy.
                let mut scrub_done = false;
                if let Some(rec) = self.scrubs.get_mut(&group) {
                    if rec.epoch == epoch && rec.compared {
                        if let Some((_, peers)) = rec.peer_repairs.get_mut(&oid.raw()) {
                            if peers.remove(&peer) {
                                self.scrub_errors_repaired += 1;
                                if peers.is_empty() {
                                    rec.peer_repairs.remove(&oid.raw());
                                }
                                scrub_done = true;
                            }
                        }
                    }
                }
                if scrub_done {
                    self.scrub_maybe_done(group);
                }
                let done = match self.recovery.get_mut(&group) {
                    Some(rec) if rec.epoch == epoch => {
                        if let Some(m) = rec.missing.get_mut(&peer) {
                            m.remove(&oid.raw());
                            if m.is_empty() {
                                rec.missing.remove(&peer);
                                rec.backfill_peers.remove(&peer);
                            }
                        }
                        rec.missing.is_empty()
                    }
                    _ => false,
                };
                if done {
                    // Every peer acked its last push: the group is healed.
                    self.recovery.remove(&group);
                } else if let Some(rec) = self.recovery.get(&group) {
                    // The ack freed a throttle slot: offer the group's
                    // remaining missing work into it right away instead of
                    // waiting out the tick.
                    let epoch = rec.epoch;
                    let work: Vec<(OsdId, Vec<ObjectId>, bool)> = rec
                        .missing
                        .iter()
                        .map(|(p, m)| {
                            (
                                *p,
                                m.values().copied().collect(),
                                rec.backfill_peers.contains(p),
                            )
                        })
                        .collect();
                    for (p, oids, backfilling) in work {
                        for o in oids {
                            self.push_object_to(group, epoch, p, o, backfilling, fx);
                        }
                    }
                }
            }
            PeerMsg::ScrubRequest {
                group,
                epoch,
                deep,
                from: requester,
            } => {
                if self.cfg.mode.null_transaction() || self.cfg.mode.null_store() {
                    return;
                }
                if self.awaiting_log.contains(&group) || self.awaiting_backfill.contains(&group) {
                    // Mid-join: our map would be hollow and every absent
                    // object would look damaged. Stay silent; the primary
                    // re-requests on its heartbeat once we have the data.
                    return;
                }
                let entries = self.scrub_local_map(group, deep, fx);
                fx.push(OsdEffect::SendPeer {
                    to: requester,
                    msg: PeerMsg::ScrubMap {
                        group,
                        epoch,
                        from: self.id,
                        entries,
                    },
                });
            }
            PeerMsg::ScrubMap {
                group,
                epoch,
                from: peer,
                entries,
            } => {
                let finish = match self.scrubs.get_mut(&group) {
                    Some(rec) if rec.epoch == epoch && !rec.compared => {
                        if rec.awaiting.remove(&peer) {
                            rec.maps.insert(peer, entries);
                        }
                        rec.awaiting.is_empty()
                    }
                    // Stale epoch, duplicate, or no round: drop it.
                    _ => false,
                };
                if finish {
                    self.finish_scrub(group, fx);
                }
            }
            PeerMsg::ScrubFetch {
                group,
                epoch,
                oid,
                from: requester,
            } => {
                if self.awaiting_log.contains(&group) || self.awaiting_backfill.contains(&group) {
                    return; // not authoritative; requester rotates sources
                }
                // Serve the heal through the throttled push machinery; if
                // our own copy turns out rotten too, the push is silently
                // skipped and the requester's rotation finds another peer.
                self.push_object_to(group, epoch, requester, oid, false, fx);
            }
            PeerMsg::RepNack {
                group,
                seq,
                from: replica,
                error: _,
            } => {
                // The replica could not apply our repop. Stop waiting for its
                // ack (the write completes degraded) and schedule a recovery
                // push of the affected objects so it converges later.
                let oids: Vec<ObjectId> = self
                    .inflight
                    .get(&seq)
                    .map(|w| {
                        w.txn
                            .ops
                            .iter()
                            .filter_map(|op| digest_op(op).map(|(o, _)| o))
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(wop) = self.inflight.get_mut(&seq) {
                    wop.waiting_acks.retain(|&o| o != replica);
                }
                self.try_complete_write(seq, fx);
                if oids.is_empty() || self.map.try_primary(group) != Some(self.id) {
                    return;
                }
                let epoch = self.map.epoch;
                let rec = self.recovery.entry(group).or_insert_with(|| PgRecovery {
                    epoch,
                    state: PgState::Recovering,
                    awaiting_infos: BTreeSet::new(),
                    infos: BTreeMap::new(),
                    missing: BTreeMap::new(),
                    backfill_peers: BTreeSet::new(),
                });
                let slot = rec.missing.entry(replica).or_default();
                for oid in &oids {
                    slot.insert(oid.raw(), *oid);
                }
                let epoch = rec.epoch;
                for oid in oids {
                    self.push_object_to(group, epoch, replica, oid, false, fx);
                }
            }
        }
    }

    fn try_complete_write(&mut self, seq: u64, fx: &mut Vec<OsdEffect>) {
        let done = self
            .inflight
            .get(&seq)
            .is_some_and(|w| w.local_done && w.waiting_acks.is_empty());
        if done {
            let w = self.inflight.remove(&seq).expect("checked above");
            self.inflight_ops.remove(&(w.client, w.op));
            let win = self.completed.entry(w.client).or_default();
            win.push_back(w.op.0);
            while win.len() > self.cfg.dedup_window {
                win.pop_front();
            }
            fx.push(OsdEffect::Reply {
                to: w.client,
                msg: ClientReply::Done { op: w.op },
            });
        }
    }

    fn on_store_durable(&mut self, token: u64, fx: &mut Vec<OsdEffect>) {
        let Some(ctx) = self.pending_store.remove(&token) else {
            return;
        };
        match ctx {
            StoreCtx::WriteLocal { seq } => {
                if let Some(w) = self.inflight.get_mut(&seq) {
                    w.local_done = true;
                }
                self.try_complete_write(seq, fx);
            }
            StoreCtx::ReplicaPersist {
                primary,
                group,
                seq,
            } => {
                fx.push(OsdEffect::SendPeer {
                    to: primary,
                    msg: PeerMsg::RepAck {
                        group,
                        seq,
                        from: self.id,
                    },
                });
            }
            StoreCtx::Read { client, op, data } => {
                fx.push(OsdEffect::Reply {
                    to: client,
                    msg: ClientReply::Data {
                        op,
                        data: data.into(),
                    },
                });
            }
            StoreCtx::Flush {
                group,
                through_version,
                keep,
            } => {
                if keep {
                    // Map-change safety flush: the records stay in the log
                    // for peer synchronization, and no flush window was
                    // opened — clearing `flushing` here would let a second
                    // window overlap one still in flight.
                    return;
                }
                self.log_for(group);
                let mut log = self.logs.remove(&group).expect("ensured");
                log.drain_through_version(&mut self.nvm, through_version)
                    .expect("drain flushed records");
                self.logs.insert(group, log);
                self.rt(group).flushing = false;
                // Serve reads that were blocked behind the flush.
                let waiting = std::mem::take(&mut self.rt(group).waiting_reads);
                for dr in waiting {
                    self.read_store_now(dr, fx);
                }
                // Re-arm if the log refilled while flushing.
                let refilled = self
                    .logs
                    .get(&group)
                    .is_some_and(|l| l.pending() >= l.flush_threshold);
                if refilled {
                    fx.push(OsdEffect::WakeFlush { group });
                }
            }
            StoreCtx::Background => {}
        }
    }

    fn on_flush_group(&mut self, group: GroupId, fx: &mut Vec<OsdEffect>) {
        if self.rt(group).flushing {
            return;
        }
        if self.awaiting_backfill.contains(&group) {
            // Flushing now could later be clobbered by the in-flight
            // backfill; hold off — the backfill's arrival re-arms the flush.
            return;
        }
        let Some(log) = self.logs.get(&group) else {
            return;
        };
        let records = log.pending();
        if records == 0 {
            // Nothing to flush; still serve any queued reads.
            let waiting = std::mem::take(&mut self.rt(group).waiting_reads);
            for dr in waiting {
                self.read_store_now(dr, fx);
            }
            return;
        }
        // Submit the batch to the backend; the log entries are drained only
        // once the store writes are durable (§IV-A-3: remove after flush).
        let txns: Vec<Transaction> = self.logs[&group]
            .export_records()
            .into_iter()
            .map(|r| r.txn)
            .collect();
        for txn in txns {
            self.backend.submit(txn).expect("flush submit");
        }
        let through_version = self.logs[&group].version();
        let token = self.token();
        let trace = self.backend.take_trace();
        self.pending_store.insert(
            token,
            StoreCtx::Flush {
                group,
                through_version,
                keep: false,
            },
        );
        self.rt(group).flushing = true;
        fx.push(OsdEffect::StoreIo {
            token,
            trace,
            wait: true,
        });
        self.kick_maintenance(fx);
    }

    fn on_submit_deferred(&mut self, token: u64, fx: &mut Vec<OsdEffect>) {
        let Some(DeferredSubmit { txn, ctx }) = self.deferred_submits.remove(&token) else {
            return;
        };
        if let Err(error) = self.backend.submit(txn) {
            let _ = self.backend.take_trace();
            match ctx {
                StoreCtx::ReplicaPersist {
                    primary,
                    group,
                    seq,
                } => {
                    // Same contract as the inline replica path: withdraw the
                    // provisional bookkeeping and NACK so the primary marks
                    // us missing instead of the OSD dying.
                    self.unnote_replica_applied(group, seq);
                    self.pg_log_unnote(group, seq);
                    fx.push(OsdEffect::SendPeer {
                        to: primary,
                        msg: PeerMsg::RepNack {
                            group,
                            seq,
                            from: self.id,
                            error,
                        },
                    });
                }
                StoreCtx::WriteLocal { seq } => {
                    // Primary-side apply failure: fail the op back to the
                    // client instead of leaving it in flight forever.
                    if let Some(w) = self.inflight.remove(&seq) {
                        self.inflight_ops.remove(&(w.client, w.op));
                        self.pg_log_unnote(w.group, seq);
                        fx.push(OsdEffect::Reply {
                            to: w.client,
                            msg: ClientReply::Error { op: w.op, error },
                        });
                    }
                }
                _ => {}
            }
            return;
        }
        let io_token = self.token();
        let trace = self.backend.take_trace();
        self.pending_store.insert(io_token, ctx);
        fx.push(OsdEffect::StoreIo {
            token: io_token,
            trace,
            wait: true,
        });
        self.kick_maintenance(fx);
    }

    fn on_read_from_store(&mut self, token: u64, fx: &mut Vec<OsdEffect>) {
        if let Some(dr) = self.deferred_reads.remove(&token) {
            self.read_store_now(dr, fx);
        }
    }

    fn kick_maintenance(&mut self, fx: &mut Vec<OsdEffect>) {
        if !self.maint_scheduled && self.backend.needs_maintenance() {
            self.maint_scheduled = true;
            fx.push(OsdEffect::WakeMaintenance);
        }
    }

    fn on_maint_step(&mut self, fx: &mut Vec<OsdEffect>) {
        self.maint_scheduled = false;
        if !self.backend.needs_maintenance() {
            return;
        }
        let report = self.backend.maintenance();
        let token = self.token();
        let trace = self.backend.take_trace();
        self.pending_store.insert(token, StoreCtx::Background);
        fx.push(OsdEffect::StoreIo {
            token,
            trace,
            wait: false,
        });
        let more = self.backend.needs_maintenance();
        fx.push(OsdEffect::Maintained {
            bytes: report.bytes_read + report.bytes_written,
            more,
        });
        if more {
            self.maint_scheduled = true;
            fx.push(OsdEffect::WakeMaintenance);
        }
    }

    /// Fault injection: flips `flips` bits in committed backend data blocks
    /// of objects whose raw id falls in `[lo, hi)`. Targets are drawn from
    /// a self-contained splitmix64 stream over `seed`, so the damage is a
    /// pure function of (state, seed) — identical on every scheduler.
    /// Returns how many flips landed (0 when the backend holds nothing in
    /// range or does not expose injection).
    pub fn inject_data_rot(&mut self, lo: u64, hi: u64, flips: u32, seed: u64) -> u64 {
        let mut groups: Vec<GroupId> = self.group_extents.keys().copied().collect();
        groups.sort();
        let mut candidates: Vec<(ObjectId, u64)> = Vec::new();
        for g in groups {
            let mut oids: Vec<ObjectId> = self.group_extents[&g]
                .keys()
                .copied()
                .filter(|o| (lo..hi).contains(&o.raw()))
                .collect();
            oids.sort_by_key(|o| o.raw());
            for oid in oids {
                let blocks = self.backend.mapped_blocks(oid);
                if blocks > 0 {
                    candidates.push((oid, blocks));
                }
            }
        }
        if candidates.is_empty() {
            return 0;
        }
        let mut s = seed;
        let mut landed = 0;
        for _ in 0..flips {
            let (oid, blocks) = candidates[(splitmix64(&mut s) % candidates.len() as u64) as usize];
            let block = splitmix64(&mut s) % blocks;
            let r = splitmix64(&mut s);
            if self
                .backend
                .corrupt_data_bit(oid, block, r >> 8, (r & 7) as u8)
            {
                landed += 1;
            }
        }
        landed
    }

    /// Fault injection: flips `flips` bits in this OSD's NVM operation-log
    /// rings (committed record bytes). The in-memory record mirror stays
    /// clean, so the damage is latent until a crash makes recovery re-read
    /// the ring — where the record CRC rejects the rotted suffix. Returns
    /// how many flips landed (0 when no ring holds queued records).
    pub fn inject_nvm_rot(&mut self, flips: u32, seed: u64) -> u64 {
        let mut groups: Vec<GroupId> = self
            .logs
            .iter()
            .filter(|(_, l)| l.nvm_used() > 0)
            .map(|(g, _)| *g)
            .collect();
        groups.sort();
        if groups.is_empty() {
            return 0;
        }
        let mut s = seed;
        let mut landed = 0;
        for _ in 0..flips {
            let g = groups[(splitmix64(&mut s) % groups.len() as u64) as usize];
            let r = splitmix64(&mut s);
            let log = self.logs.get(&g).expect("listed above");
            if log
                .rot_bit(&mut self.nvm, r >> 8, (r & 7) as u8)
                .unwrap_or(false)
            {
                landed += 1;
            }
        }
        landed
    }

    /// Simulated crash-restart. All volatile state is dropped; the NVM
    /// region survives (counters reset, contents kept) and each group's
    /// operation log is recovered by the checksum-validating scan, cutting
    /// off a torn tail if `torn_tail` corrupted one (safe: a record torn
    /// mid-append was never acknowledged). Recovered pending records are
    /// drained into the backend immediately — they predate the crash, and
    /// leaving them in the log would let stale entries answer reads after
    /// the node rejoins and newer data exists elsewhere. The backend itself
    /// models durable storage and survives untouched, as does the extent
    /// map (reconstructable from the backend in a real system). `seq` is
    /// also kept: a real OSD recovers it from its log and pg metadata.
    ///
    /// Returns the NVM bytes discarded by torn-tail truncation.
    pub fn restart_after_crash(&mut self, torn_tail: bool) -> u64 {
        self.inflight.clear();
        self.inflight_ops.clear();
        self.completed.clear();
        self.replica_applied.clear();
        self.awaiting_log.clear();
        self.awaiting_backfill.clear();
        self.pull_sources.clear();
        self.pending_store.clear();
        self.deferred_reads.clear();
        self.deferred_submits.clear();
        self.group_rt.clear();
        self.maint_scheduled = false;
        // Volatile recovery state dies with the process; the pg_log is
        // rebuilt below from whatever survived in the durable NVM ring.
        self.recovery.clear();
        self.pg_log.clear();
        self.backfill_inflight.clear();
        self.backfill_budget = self.cfg.backfill_bytes_per_tick;
        self.backfill_deferred = false;
        self.scrubs.clear();
        self.scrub_queue.clear();
        self.scrub_deferred = false;
        self.fetches.clear();
        self.nvm.reboot();
        let mut groups: Vec<GroupId> = self.logs.keys().copied().collect();
        groups.sort();
        let mut discarded_total = 0;
        for group in groups {
            let old = self.logs.remove(&group).expect("listed above");
            let (base, len) = (old.nvm_base(), old.nvm_region_len());
            if torn_tail {
                let _ = old.tear_tail(&mut self.nvm);
            }
            let (mut log, discarded) = GroupLog::recover_truncating(
                &mut self.nvm,
                group,
                base,
                len,
                self.cfg.flush_threshold,
            )
            .expect("log recovers after reboot");
            discarded_total += discarded;
            if log.pending() > 0 {
                let txns = log
                    .drain_for_flush(&mut self.nvm, usize::MAX)
                    .expect("restart drain");
                for txn in txns {
                    self.note_txn(&txn);
                    self.pg_log_note(group, txn.seq, &txn);
                    self.backend.submit(txn).expect("restart drain submit");
                }
                let _ = self.backend.take_trace();
            }
            self.logs.insert(group, log);
        }
        discarded_total
    }

    /// §IV-A-4 failure handling: on a map change, surviving members flush
    /// their logs *without* removing entries (step ④), and a newly joined
    /// member pulls the log from the surviving primary (steps ⑥–⑦).
    fn on_map_update(&mut self, map: OsdMap, fx: &mut Vec<OsdEffect>) {
        if map.epoch <= self.map.epoch {
            return;
        }
        let old = std::mem::replace(&mut self.map, map);
        // A new epoch re-peers everything; in-flight scrub rounds are stale
        // (their repairs would race recovery pushes) and abort here. Heals
        // of our own copies stay queued when we still serve the group —
        // rot does not go away with a map change.
        self.scrubs.clear();
        self.scrub_queue.clear();
        let fetch_keys: Vec<(GroupId, u64)> = self.fetches.keys().copied().collect();
        for key in fetch_keys {
            if !self.map.acting_set(key.0).contains(&self.id) {
                self.fetches.remove(&key);
            }
        }
        if !self.cfg.mode.null_transaction() && !self.cfg.mode.null_store() {
            // Every epoch change re-peers the groups this OSD now leads;
            // stale rounds for groups it lost are dropped inside.
            self.start_peering(fx);
        }
        if !self.cfg.mode.decoupled() {
            return;
        }
        let mut groups: Vec<GroupId> = self.logs.keys().copied().collect();
        groups.sort();
        for group in groups {
            let new_set = self.map.acting_set(group);
            if !new_set.contains(&self.id) {
                continue;
            }
            let old_set = old.acting_set(group);
            if old_set.contains(&self.id) {
                // Survivor: persist pending data but keep the log so the
                // replacement can synchronize from it.
                let txns: Vec<Transaction> = self.logs[&group]
                    .export_records()
                    .into_iter()
                    .map(|r| r.txn)
                    .collect();
                if txns.is_empty() {
                    continue;
                }
                for txn in txns {
                    self.backend.submit(txn).expect("recovery flush");
                }
                let through_version = self.logs[&group].version();
                let token = self.token();
                let trace = self.backend.take_trace();
                self.pending_store.insert(
                    token,
                    StoreCtx::Flush {
                        group,
                        through_version,
                        keep: true,
                    },
                );
                fx.push(OsdEffect::StoreIo {
                    token,
                    trace,
                    wait: true,
                });
            }
        }
        // Newly responsible groups: pull logs from the surviving primary.
        let my_groups: Vec<GroupId> = (0..self.map.pg_count).map(GroupId).collect();
        for group in my_groups {
            let new_set = self.map.acting_set(group);
            if !new_set.contains(&self.id) {
                continue;
            }
            let old_set = old.acting_set(group);
            if old.osds.get(self.id.0 as usize).map(|o| o.up) == Some(true)
                && old_set.contains(&self.id)
            {
                continue; // already a member
            }
            // Synchronize from an OSD that actually holds the group's data:
            // a still-up member of the *previous* acting set (a drained OSD
            // stays up exactly so it can serve as this handoff source).
            // After a large expansion every new-set peer can be a fresh
            // joiner with nothing, so the new set is only a fallback.
            let peer = old_set
                .into_iter()
                .find(|&o| o != self.id && self.map.osd(o).up)
                .or_else(|| new_set.into_iter().find(|&o| o != self.id));
            if let Some(peer) = peer {
                self.awaiting_log.insert(group);
                self.awaiting_backfill.insert(group);
                self.pull_sources.insert(group, peer);
                fx.push(OsdEffect::SendPeer {
                    to: peer,
                    msg: PeerMsg::PullLog {
                        group,
                        from: self.id,
                    },
                });
            }
        }
    }
}

impl std::fmt::Debug for Osd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Osd")
            .field("id", &self.id)
            .field("mode", &self.cfg.mode)
            .field("inflight", &self.inflight.len())
            .field("groups", &self.logs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> OsdMap {
        OsdMap::new(2, 1, 8, 2)
    }

    fn osd(mode: PipelineMode, id: u32) -> Osd {
        let cfg = OsdConfig {
            mode,
            device_bytes: 32 << 20,
            nvm_bytes: 4 << 20,
            ring_bytes: 128 << 10,
            flush_threshold: 4,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        Osd::new(OsdId(id), cfg, map())
    }

    fn a_group_with_primary(o: &Osd) -> GroupId {
        (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) == o.id)
            .expect("some group has this primary")
    }

    fn oid_in(group: GroupId, i: u64) -> ObjectId {
        ObjectId::new(group, i)
    }

    fn write_req(op: u64, oid: ObjectId) -> ClientReq {
        ClientReq::Write {
            op: OpId(op),
            oid,
            offset: 0,
            data: vec![7; 4096].into(),
        }
    }

    fn tokens_of(fx: &[OsdEffect]) -> Vec<u64> {
        fx.iter()
            .filter_map(|e| match e {
                OsdEffect::StoreIo {
                    token, wait: true, ..
                } => Some(*token),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn coupled_write_completes_after_local_persist_and_ack() {
        let mut o = osd(PipelineMode::Original, 0);
        let g = a_group_with_primary(&o);
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid_in(g, 1)),
        });
        // Repop sent, local store submitted, no reply yet.
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::Repop { .. },
                ..
            }
        )));
        assert!(!fx.iter().any(|e| matches!(e, OsdEffect::Reply { .. })));
        let toks = tokens_of(&fx);
        assert_eq!(toks.len(), 1);
        // Local durable alone: still waiting for the replica.
        let fx = o.handle(OsdInput::StoreDurable { token: toks[0] });
        assert!(!fx.iter().any(|e| matches!(e, OsdEffect::Reply { .. })));
        // Replica ack: now the client gets its reply.
        let replica = o.map().acting_set(g)[1];
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::RepAck {
                group: g,
                seq: 1,
                from: replica,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Done { .. },
                ..
            }
        )));
    }

    #[test]
    fn replica_acks_only_after_durable() {
        let mut o = osd(PipelineMode::Original, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        let txn = Transaction::new(
            g,
            5,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![1; 4096].into(),
            }],
        );
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::Repop {
                group: g,
                seq: 5,
                txn,
            },
        });
        assert!(!fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::RepAck { .. },
                ..
            }
        )));
        let toks = tokens_of(&fx);
        let fx = o.handle(OsdInput::StoreDurable { token: toks[0] });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::RepAck { seq: 5, .. },
                ..
            }
        )));
    }

    #[test]
    fn decoupled_write_acks_without_store() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid_in(g, 1)),
        });
        // NVM logged + RepopNvm sent; no store I/O on the write path.
        assert!(fx.iter().any(|e| matches!(e, OsdEffect::NvmWritten { .. })));
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::RepopNvm { .. },
                ..
            }
        )));
        assert!(tokens_of(&fx).is_empty());
        // One replica ack completes the op.
        let replica = o.map().acting_set(g)[1];
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::RepAck {
                group: g,
                seq: 1,
                from: replica,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Done { .. },
                ..
            }
        )));
    }

    #[test]
    fn decoupled_replica_acks_immediately_from_nvm() {
        let mut o = osd(PipelineMode::Dop, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        let txn = Transaction::new(
            g,
            5,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![1; 4096].into(),
            }],
        );
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::RepopNvm {
                group: g,
                seq: 5,
                txn,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::RepAck { .. },
                ..
            }
        )));
        assert_eq!(o.log_pending(g), 1);
    }

    #[test]
    fn flush_cycle_drains_log_after_durable() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        let mut wake = None;
        for i in 0..4 {
            let fx = o.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
            for e in fx {
                if let OsdEffect::WakeFlush { group } = e {
                    wake = Some(group);
                }
            }
        }
        assert_eq!(wake, Some(g), "threshold of 4 reached");
        assert_eq!(o.log_pending(g), 4);
        let fx = o.handle(OsdInput::FlushGroup { group: g });
        let toks = tokens_of(&fx);
        assert_eq!(toks.len(), 1);
        assert_eq!(o.log_pending(g), 4, "entries stay until durable");
        o.handle(OsdInput::StoreDurable { token: toks[0] });
        assert_eq!(o.log_pending(g), 0, "drained after durable");
    }

    #[test]
    fn decoupled_read_served_from_log() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        let oid = oid_in(g, 1);
        o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: ClientReq::Read {
                op: OpId(2),
                oid,
                offset: 100,
                len: 200,
            },
        });
        let reply = fx.iter().find_map(|e| match e {
            OsdEffect::Reply {
                msg: ClientReply::Data { data, .. },
                ..
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(
            reply,
            Some(vec![7u8; 200].into()),
            "read served from the operation log"
        );
    }

    #[test]
    fn decoupled_read_of_cold_object_defers_to_store() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        let oid = oid_in(g, 9);
        // Write then flush so the log is empty, store has the data.
        o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        let fx = o.handle(OsdInput::FlushGroup { group: g });
        for t in tokens_of(&fx) {
            o.handle(OsdInput::StoreDurable { token: t });
        }
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: ClientReq::Read {
                op: OpId(2),
                oid,
                offset: 0,
                len: 4096,
            },
        });
        let token = fx.iter().find_map(|e| match e {
            OsdEffect::WakeRead { token } => Some(*token),
            _ => None,
        });
        let token = token.expect("cold read goes via non-priority thread");
        let fx = o.handle(OsdInput::ReadFromStore { token });
        let toks = tokens_of(&fx);
        let fx = if toks.is_empty() {
            fx
        } else {
            o.handle(OsdInput::StoreDurable { token: toks[0] })
        };
        let reply = fx.iter().find_map(|e| match e {
            OsdEffect::Reply {
                msg: ClientReply::Data { data, .. },
                ..
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(reply, Some(vec![7u8; 4096].into()));
    }

    #[test]
    fn rtc_v3_skips_storage_entirely() {
        let mut o = osd(PipelineMode::RtcV3, 0);
        let g = a_group_with_primary(&o);
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid_in(g, 1)),
        });
        assert!(tokens_of(&fx).is_empty(), "no store I/O in RTC-v3");
        let replica = o.map().acting_set(g)[1];
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::RepAck {
                group: g,
                seq: 1,
                from: replica,
            },
        });
        assert!(fx.iter().any(|e| matches!(e, OsdEffect::Reply { .. })));
    }

    #[test]
    fn maintenance_reschedules_until_clean() {
        let mut o = osd(PipelineMode::Original, 0);
        let g = a_group_with_primary(&o);
        // Pump enough writes to trigger LSM maintenance.
        let mut woke = false;
        for i in 0..200 {
            let fx = o.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i % 4)),
            });
            woke |= fx.iter().any(|e| matches!(e, OsdEffect::WakeMaintenance));
            for t in tokens_of(&fx) {
                o.handle(OsdInput::StoreDurable { token: t });
            }
        }
        assert!(woke, "LSM backend requested maintenance");
        let mut steps = 0;
        loop {
            let fx = o.handle(OsdInput::MaintStep);
            steps += 1;
            let more = fx
                .iter()
                .any(|e| matches!(e, OsdEffect::Maintained { more: true, .. }));
            if !more || steps > 100 {
                break;
            }
        }
        assert!(steps >= 1, "maintenance ran");
        assert!(!o.backend().needs_maintenance(), "backend eventually clean");
    }

    #[test]
    fn nvm_exhaustion_forces_synchronous_flush() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        // Huge flush threshold so nothing drains; tiny ring fills up.
        for (_, log) in o.logs.iter_mut() {
            log.flush_threshold = usize::MAX;
        }
        let mut i = 0;
        while o.nvm_full_stalls == 0 && i < 200 {
            let fx = o.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
            // Raise the threshold on the lazily created log too.
            if let Some(log) = o.logs.get_mut(&g) {
                log.flush_threshold = usize::MAX;
            }
            for t in tokens_of(&fx) {
                o.handle(OsdInput::StoreDurable { token: t });
            }
            i += 1;
        }
        assert!(
            o.nvm_full_stalls > 0,
            "ring filled and forced a stall flush"
        );
        assert!(o.log_pending(g) <= 1, "stall drained the log");
    }

    #[test]
    fn retried_write_applies_exactly_once() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        let oid = oid_in(g, 1);
        let repops = |fx: &[OsdEffect]| {
            fx.iter()
                .filter(|e| {
                    matches!(
                        e,
                        OsdEffect::SendPeer {
                            msg: PeerMsg::RepopNvm { .. },
                            ..
                        }
                    )
                })
                .count()
        };
        // First attempt: logged once, replicated once.
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        assert_eq!(repops(&fx), 1);
        assert_eq!(o.log_pending(g), 1);
        // Retry while the replica ack is outstanding (the original repop may
        // have been dropped): retransmit only, no second application.
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        assert_eq!(
            repops(&fx),
            1,
            "replication retransmitted to the laggard replica"
        );
        assert!(!fx.iter().any(|e| matches!(e, OsdEffect::NvmWritten { .. })));
        assert!(!fx.iter().any(|e| matches!(e, OsdEffect::Reply { .. })));
        assert_eq!(o.log_pending(g), 1, "no second log entry");
        // The ack completes the original op.
        let replica = o.map().acting_set(g)[1];
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::RepAck {
                group: g,
                seq: 1,
                from: replica,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Done { .. },
                ..
            }
        )));
        // A late retry after completion: re-acked from the dedup window.
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        assert_eq!(repops(&fx), 0);
        assert_eq!(o.log_pending(g), 1, "still exactly one application");
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Done { .. },
                ..
            }
        )));
    }

    #[test]
    fn duplicate_replication_reacks_without_reapplying() {
        let mut o = osd(PipelineMode::Dop, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        let txn = Transaction::new(
            g,
            5,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![1; 4096].into(),
            }],
        );
        o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::RepopNvm {
                group: g,
                seq: 5,
                txn: txn.clone(),
            },
        });
        assert_eq!(o.log_pending(g), 1);
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::RepopNvm {
                group: g,
                seq: 5,
                txn,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::SendPeer {
                msg: PeerMsg::RepAck { seq: 5, .. },
                ..
            }
        )));
        assert_eq!(o.log_pending(g), 1, "duplicate not re-logged");
    }

    #[test]
    fn restart_truncates_torn_tail_and_drains_log() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        for i in 0..3 {
            o.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
        }
        assert_eq!(o.log_pending(g), 3);
        let discarded = o.restart_after_crash(true);
        assert!(discarded > 0, "torn tail was cut off by the checksum scan");
        assert_eq!(
            o.log_pending(g),
            0,
            "recovered records drained into the backend"
        );
        // A surviving record's data is readable from the backend.
        let fx = o.handle(OsdInput::Client {
            from: ClientId(2),
            req: ClientReq::Read {
                op: OpId(9),
                oid: oid_in(g, 0),
                offset: 0,
                len: 4096,
            },
        });
        let token = fx
            .iter()
            .find_map(|e| match e {
                OsdEffect::WakeRead { token } => Some(*token),
                _ => None,
            })
            .expect("cold read defers to the store");
        let fx = o.handle(OsdInput::ReadFromStore { token });
        let toks = tokens_of(&fx);
        let fx = if toks.is_empty() {
            fx
        } else {
            o.handle(OsdInput::StoreDurable { token: toks[0] })
        };
        let reply = fx.iter().find_map(|e| match e {
            OsdEffect::Reply {
                msg: ClientReply::Data { data, .. },
                ..
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(reply, Some(vec![7u8; 4096].into()));
    }

    #[test]
    fn heartbeat_tick_emits_beacon() {
        let mut o = osd(PipelineMode::Dop, 0);
        let fx = o.handle(OsdInput::HeartbeatTick);
        assert!(fx.iter().any(|e| matches!(e, OsdEffect::Heartbeat)));
    }

    #[test]
    fn survivor_keeps_log_and_new_member_pulls_it() {
        // Three nodes so replication 2 survives one failure.
        let map3 = OsdMap::new(3, 1, 8, 2);
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 32 << 20,
            nvm_bytes: 4 << 20,
            ring_bytes: 128 << 10,
            flush_threshold: 16,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        // Find a group and its acting set.
        let g = GroupId(0);
        let set = map3.acting_set(g);
        let (primary, secondary) = (set[0], set[1]);
        let spare = (0..3).map(OsdId).find(|o| !set.contains(o)).unwrap();
        let mut prim = Osd::new(primary, cfg.clone(), map3.clone());
        // Log a few writes at the primary.
        for i in 0..3 {
            prim.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
        }
        assert_eq!(prim.log_pending(g), 3);
        // Secondary dies; map moves the group to include the spare.
        let mut new_map = map3.clone();
        new_map.mark_down(secondary);
        let new_set = new_map.acting_set(g);
        assert!(new_set.contains(&spare), "spare takes over");
        let fx = prim.handle(OsdInput::MapUpdate(new_map.clone()));
        // Survivor flushed-but-kept its log.
        assert_eq!(prim.log_pending(g), 3, "entries kept for peer sync");
        assert!(fx
            .iter()
            .any(|e| matches!(e, OsdEffect::StoreIo { wait: true, .. })));
        // Spare joins: pulls the log.
        let mut joiner = Osd::new(spare, cfg, map3.clone());
        let fx = joiner.handle(OsdInput::MapUpdate(new_map));
        let pull = fx.iter().find_map(|e| match e {
            OsdEffect::SendPeer {
                to,
                msg: PeerMsg::PullLog { group, .. },
            } => Some((*to, *group)),
            _ => None,
        });
        let (peer, group) = pull.expect("joiner pulls the log");
        assert_eq!(group, g);
        // Route the pull to the survivor and the records back.
        let fx = prim.handle(OsdInput::Peer {
            from: peer,
            msg: PeerMsg::PullLog {
                group: g,
                from: spare,
            },
        });
        let records = fx
            .into_iter()
            .find_map(|e| match e {
                OsdEffect::SendPeer {
                    msg: PeerMsg::LogRecords { records, .. },
                    ..
                } => Some(records),
                _ => None,
            })
            .expect("survivor exports records");
        assert_eq!(records.len(), 3);
        joiner.handle(OsdInput::Peer {
            from: primary,
            msg: PeerMsg::LogRecords { group: g, records },
        });
        assert_eq!(
            joiner.log_pending(g),
            3,
            "log replicated to the replacement"
        );
        // The joiner can now serve a strongly consistent read from its log.
        let fx = joiner.handle(OsdInput::Client {
            from: ClientId(9),
            req: ClientReq::Read {
                op: OpId(99),
                oid: oid_in(g, 2),
                offset: 0,
                len: 4096,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Data { .. },
                ..
            }
        )));
    }

    #[test]
    fn replica_apply_failure_nacks_instead_of_panicking() {
        let mut o = osd(PipelineMode::Original, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        // A zero-length write is rejected by every backend.
        let bad = Transaction::new(
            g,
            5,
            vec![Op::Write {
                oid,
                offset: 0,
                data: Vec::new().into(),
            }],
        );
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::Repop {
                group: g,
                seq: 5,
                txn: bad,
            },
        });
        assert!(
            fx.iter().any(|e| matches!(
                e,
                OsdEffect::SendPeer {
                    to: OsdId(0),
                    msg: PeerMsg::RepNack { seq: 5, .. },
                }
            )),
            "failed apply NACKs back to the primary: {fx:?}"
        );
        // The failed seq was un-noted: a retransmit with a good payload is
        // applied for real (store I/O), not re-acked from the dedup window.
        let good = Transaction::new(
            g,
            5,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![3; 4096].into(),
            }],
        );
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::Repop {
                group: g,
                seq: 5,
                txn: good,
            },
        });
        assert_eq!(tokens_of(&fx).len(), 1, "retransmit applied: {fx:?}");
    }

    #[test]
    fn rep_nack_completes_write_degraded_and_pushes_recovery() {
        let mut o = osd(PipelineMode::Original, 0);
        let g = a_group_with_primary(&o);
        let oid = oid_in(g, 1);
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid),
        });
        let toks = tokens_of(&fx);
        o.handle(OsdInput::StoreDurable { token: toks[0] });
        // Replica refuses the repop: the write completes without it and the
        // primary immediately pushes the object to heal the divergence.
        let replica = o.map().acting_set(g)[1];
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::RepNack {
                group: g,
                seq: 1,
                from: replica,
                error: StoreError::NoSpace,
            },
        });
        assert!(fx.iter().any(|e| matches!(
            e,
            OsdEffect::Reply {
                msg: ClientReply::Done { .. },
                ..
            }
        )));
        let push = fx.iter().find_map(|e| match e {
            OsdEffect::SendPeer {
                to,
                msg: PeerMsg::PushObject { entry, .. },
            } => Some((*to, *entry)),
            _ => None,
        });
        let (to, entry) = push.expect("recovery push follows the NACK");
        assert_eq!(to, replica);
        assert_eq!(entry.oid, oid);
        assert!(o.degraded_objects() > 0);
        // The replica's ack for the push clears the recovery round.
        let fx = o.handle(OsdInput::Peer {
            from: replica,
            msg: PeerMsg::PushAck {
                group: g,
                epoch: o.map().epoch,
                oid,
                from: replica,
            },
        });
        assert!(fx.is_empty(), "{fx:?}");
        assert_eq!(o.degraded_objects(), 0);
        assert_eq!(o.pg_state(g), PgState::Active);
    }

    #[test]
    fn peering_backfills_a_peer_with_no_shared_history() {
        let map3 = OsdMap::new(3, 1, 8, 2);
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 32 << 20,
            nvm_bytes: 4 << 20,
            ring_bytes: 128 << 10,
            flush_threshold: 16,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        let g = GroupId(0);
        let set = map3.acting_set(g);
        let (primary, secondary) = (set[0], set[1]);
        let spare = (0..3).map(OsdId).find(|o| !set.contains(o)).unwrap();
        let mut prim = Osd::new(primary, cfg.clone(), map3.clone());
        let mut peer = Osd::new(secondary, cfg, map3.clone());
        for i in 0..3 {
            prim.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
        }
        // Epoch bump that keeps the acting set: the primary re-peers.
        let mut new_map = map3.clone();
        new_map.mark_down(spare);
        let fx = prim.handle(OsdInput::MapUpdate(new_map.clone()));
        let query = fx.iter().find_map(|e| match e {
            OsdEffect::SendPeer {
                to,
                msg: PeerMsg::PgQuery { group, epoch, .. },
            } if *group == g => Some((*to, *epoch)),
            _ => None,
        });
        let (to, epoch) = query.expect("primary queries the acting set");
        assert_eq!(to, secondary);
        assert_eq!(epoch, new_map.epoch);
        assert_eq!(prim.pg_state(g), PgState::Peering);
        // The secondary answers with an empty log (it has nothing): the
        // primary backfills every object it tracks.
        let fx = prim.handle(OsdInput::Peer {
            from: secondary,
            msg: PeerMsg::PgInfo {
                group: g,
                epoch,
                from: secondary,
                entries: Vec::new(),
            },
        });
        assert_eq!(prim.pg_state(g), PgState::Backfilling);
        let pushes: Vec<PeerMsg> = fx
            .iter()
            .filter_map(|e| match e {
                OsdEffect::SendPeer {
                    to,
                    msg: msg @ PeerMsg::PushObject { .. },
                } if *to == secondary => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(pushes.len(), 3, "all three objects pushed: {fx:?}");
        assert!(prim.backfill_bytes > 0);
        // Applying the pushes at the peer acks each one back; feeding the
        // acks to the primary ends the round.
        peer.handle(OsdInput::MapUpdate(new_map));
        for push in pushes {
            let fx = peer.handle(OsdInput::Peer {
                from: primary,
                msg: push,
            });
            let ack = fx
                .into_iter()
                .find_map(|e| match e {
                    OsdEffect::SendPeer {
                        msg: msg @ PeerMsg::PushAck { .. },
                        ..
                    } => Some(msg),
                    _ => None,
                })
                .expect("peer acks an applied push");
            prim.handle(OsdInput::Peer {
                from: secondary,
                msg: ack,
            });
        }
        assert_eq!(prim.pg_state(g), PgState::Active);
        assert_eq!(prim.degraded_objects(), 0);
        // The pushed bytes are now readable at the peer.
        assert_eq!(
            peer.object_digest(oid_in(g, 1), 4096),
            prim.object_digest(oid_in(g, 1), 4096),
        );
    }

    #[test]
    fn backfill_throttle_caps_inflight_pushes_and_drains_on_ack() {
        let map3 = OsdMap::new(3, 1, 8, 2);
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 32 << 20,
            nvm_bytes: 4 << 20,
            ring_bytes: 128 << 10,
            flush_threshold: 16,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            max_backfill_inflight: 1,
            ..OsdConfig::default()
        };
        let g = GroupId(0);
        let set = map3.acting_set(g);
        let (primary, secondary) = (set[0], set[1]);
        let spare = (0..3).map(OsdId).find(|o| !set.contains(o)).unwrap();
        let mut prim = Osd::new(primary, cfg, map3.clone());
        for i in 0..3 {
            prim.handle(OsdInput::Client {
                from: ClientId(1),
                req: write_req(i, oid_in(g, i)),
            });
        }
        let mut new_map = map3.clone();
        new_map.mark_down(spare);
        prim.handle(OsdInput::MapUpdate(new_map));
        let epoch = prim.map().epoch;
        let count_pushes = |fx: &[OsdEffect]| {
            fx.iter()
                .filter_map(|e| match e {
                    OsdEffect::SendPeer {
                        msg: PeerMsg::PushObject { entry, .. },
                        ..
                    } => Some(entry.oid),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        // Empty peer log: three objects need backfill, but the throttle
        // admits only one push into the window; the rest are queued.
        let fx = prim.handle(OsdInput::Peer {
            from: secondary,
            msg: PeerMsg::PgInfo {
                group: g,
                epoch,
                from: secondary,
                entries: Vec::new(),
            },
        });
        let first = count_pushes(&fx);
        assert_eq!(first.len(), 1, "inflight cap of 1: {fx:?}");
        assert!(prim.backfill_queued >= 2, "deferred work is counted");
        assert_eq!(prim.pg_state(g), PgState::Backfilling);
        // The tick closes the throttled window (accruing throttled time) and
        // the retransmit sweep again offers everything — still one push.
        let throttled_before = prim.backfill_throttled_nanos;
        let fx = prim.handle(OsdInput::HeartbeatTick);
        assert!(prim.backfill_throttled_nanos > throttled_before);
        assert_eq!(count_pushes(&fx).len(), 1, "still capped after tick");
        // An ack frees the slot mid-window: the next object goes out
        // immediately without waiting for the tick.
        let fx = prim.handle(OsdInput::Peer {
            from: secondary,
            msg: PeerMsg::PushAck {
                group: g,
                epoch,
                oid: first[0],
                from: secondary,
            },
        });
        let next = count_pushes(&fx);
        assert_eq!(next.len(), 1, "ack drains the queue: {fx:?}");
        assert_ne!(next[0], first[0], "a different object rides the slot");
    }

    #[test]
    fn push_with_bad_checksum_is_dropped() {
        let mut o = osd(PipelineMode::Dop, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::PushObject {
                group: g,
                epoch: 1,
                entry: PgLogEntry {
                    epoch: 1,
                    version: 4,
                    oid,
                    digest: 9,
                },
                data: vec![5; 4096],
                content_digest: 0xDEAD, // wrong
            },
        });
        assert!(fx.is_empty(), "corrupt push ignored: {fx:?}");
        assert_eq!(o.object_digest(oid, 4096), None, "nothing applied");
    }

    #[test]
    fn stale_push_with_divergent_content_is_dropped_not_acked() {
        let mut o = osd(PipelineMode::Dop, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        // The replica applies a current write at (epoch 1, version 7)...
        let txn = Transaction::new(
            g,
            7,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![9; 4096].into(),
            }],
        );
        o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::RepopNvm {
                group: g,
                seq: 7,
                txn,
            },
        });
        // ...then an older push with *different* bytes arrives. Acking it
        // would clear the primary's missing mark while the replicas still
        // diverge, so it must be dropped silently — the primary's heartbeat
        // retry re-reads fresh content and pushes again.
        let stale = vec![1u8; 4096];
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::PushObject {
                group: g,
                epoch: 1,
                entry: PgLogEntry {
                    epoch: 1,
                    version: 3,
                    oid,
                    digest: 1,
                },
                content_digest: digest_bytes(&stale),
                data: stale,
            },
        });
        assert!(fx.is_empty(), "divergent stale push dropped: {fx:?}");
        // The newer log record survives: reads serve fill 9, not fill 1.
        let fx = o.handle(OsdInput::Client {
            from: ClientId(2),
            req: ClientReq::Read {
                op: OpId(1),
                oid,
                offset: 0,
                len: 4096,
            },
        });
        let data = fx.iter().find_map(|e| match e {
            OsdEffect::Reply {
                msg: ClientReply::Data { data, .. },
                ..
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(data, Some(vec![9u8; 4096].into()));
    }

    #[test]
    fn stale_push_with_matching_content_is_acked_but_not_applied() {
        let mut o = osd(PipelineMode::Dop, 1);
        let g = (0..8)
            .map(GroupId)
            .find(|&g| o.map().primary(g) != o.id)
            .unwrap();
        let oid = oid_in(g, 1);
        // The replica holds (epoch 1, version 7) with fill 9.
        let txn = Transaction::new(
            g,
            7,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![9; 4096].into(),
            }],
        );
        o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::RepopNvm {
                group: g,
                seq: 7,
                txn,
            },
        });
        // An older-versioned push whose bytes already match the local object
        // (a torn-tail-restarted primary can never out-version the replica
        // even when content agrees). It must be acked — without the ack the
        // primary retries forever and the PG wedges in Recovering — but the
        // newer local record must not be rolled back.
        let same = vec![9u8; 4096];
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::PushObject {
                group: g,
                epoch: 1,
                entry: PgLogEntry {
                    epoch: 1,
                    version: 3,
                    oid,
                    digest: digest_bytes(&same),
                },
                content_digest: digest_bytes(&same),
                data: same,
            },
        });
        assert!(
            fx.iter().any(|e| matches!(
                e,
                OsdEffect::SendPeer {
                    msg: PeerMsg::PushAck { .. },
                    ..
                }
            )),
            "matching stale push acked: {fx:?}"
        );
        // Version 7 stays newest: a later same-object push at version 5
        // with divergent bytes is still rejected.
        let stale = vec![1u8; 4096];
        let fx = o.handle(OsdInput::Peer {
            from: OsdId(0),
            msg: PeerMsg::PushObject {
                group: g,
                epoch: 1,
                entry: PgLogEntry {
                    epoch: 1,
                    version: 5,
                    oid,
                    digest: 1,
                },
                content_digest: digest_bytes(&stale),
                data: stale,
            },
        });
        assert!(fx.is_empty(), "divergent push after ack dropped: {fx:?}");
    }

    #[test]
    fn writes_below_min_size_quorum_return_degraded() {
        // Replication 3 => min_size 2.
        let mut map3 = OsdMap::new(3, 1, 8, 3);
        assert_eq!(map3.min_size, 2);
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 32 << 20,
            nvm_bytes: 4 << 20,
            ring_bytes: 128 << 10,
            flush_threshold: 16,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        map3.mark_down(OsdId(1));
        map3.mark_down(OsdId(2));
        let mut o = Osd::new(OsdId(0), cfg, map3);
        let g = GroupId(0);
        assert_eq!(o.pg_state(g), PgState::Degraded);
        let fx = o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid_in(g, 1)),
        });
        let err = fx.iter().find_map(|e| match e {
            OsdEffect::Reply {
                msg: ClientReply::Error { error, .. },
                ..
            } => Some(error.clone()),
            _ => None,
        });
        assert_eq!(err, Some(StoreError::Degraded));
        assert!(
            !fx.iter()
                .any(|e| matches!(e, OsdEffect::SendPeer { .. } | OsdEffect::NvmWritten { .. })),
            "rejected write neither logged nor replicated: {fx:?}"
        );
    }

    #[test]
    fn heartbeat_retransmits_stale_inflight_writes() {
        let mut o = osd(PipelineMode::Dop, 0);
        let g = a_group_with_primary(&o);
        o.handle(OsdInput::Client {
            from: ClientId(1),
            req: write_req(1, oid_in(g, 1)),
        });
        // The repop (or its ack) was lost; after two heartbeat ticks the
        // primary re-sends it on its own, without any client retry.
        let fx = o.handle(OsdInput::HeartbeatTick);
        assert!(
            !fx.iter().any(|e| matches!(
                e,
                OsdEffect::SendPeer {
                    msg: PeerMsg::RepopNvm { .. },
                    ..
                }
            )),
            "first tick only ages the op"
        );
        let fx = o.handle(OsdInput::HeartbeatTick);
        assert!(
            fx.iter().any(|e| matches!(
                e,
                OsdEffect::SendPeer {
                    msg: PeerMsg::RepopNvm { seq: 1, .. },
                    ..
                }
            )),
            "second tick retransmits: {fx:?}"
        );
    }
}
