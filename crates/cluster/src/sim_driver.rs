//! Deterministic cluster simulation driver.
//!
//! Maps the sans-io OSD core onto the `rablock-sim` kernel: real OSD state
//! machines (real backends, real NVM logs) execute inside simulated threads
//! on simulated cores, with every CPU slice tagged (MP/RP/TP/OS/MT), every
//! store I/O replayed against a timed NVMe model, and every message paying
//! network latency. This is the machine all paper figures run on.
//!
//! Thread layouts by [`PipelineMode`]:
//!
//! * `Original`/`Cos` — messenger threads relay to PG threads (the stock
//!   thread-pool: every request hops threads several times).
//! * `RtcV1..V3` — run-to-completion threads own connections end to end.
//! * `Ptc`/`Dop`/`Ideal` — priority threads pinned to dedicated cores handle
//!   MP/RP (and NVM logging); non-priority threads share the remaining
//!   cores for flushes and store reads; maintenance runs at low priority.

use std::collections::{BTreeMap, HashMap};

use rablock_sim::{
    Ctx, Device, DeviceProfile, DeviceStats, IoRequest, Link, Priority, SimDuration,
    SimRng, SimTime, Simulation, SsdState, ThreadCfg, ThreadId,
};
use rablock_storage::{GroupId, ObjectId, StoreStats, TraceKind};

use crate::costs::{CostModel, CLIENT, MP, MT, OS, RP, TP};
use crate::msg::{ClientId, ClientReply, ClientReq, OpId, PeerMsg};
use crate::osd::{Osd, OsdConfig, OsdEffect, OsdInput, PipelineMode};
use crate::placement::{OsdId, OsdMap};

/// One operation a connection wants to issue.
#[derive(Clone, Debug)]
pub enum WorkItem {
    /// Write `len` bytes at `offset` (payload filled with `fill`).
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Fill byte for the payload.
        fill: u8,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
}

/// A per-connection workload generator (fio job / YCSB client).
pub trait ConnWorkload: Send {
    /// The next operation, or `None` when the connection is done.
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem>;
}

impl<F: FnMut(&mut SimRng) -> Option<WorkItem> + Send> ConnWorkload for F {
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem> {
        self(rng)
    }
}

/// Cluster-level simulation configuration.
pub struct ClusterSimConfig {
    /// Which of the paper's systems to run.
    pub mode: PipelineMode,
    /// Storage nodes.
    pub nodes: u32,
    /// OSD daemons per node.
    pub osds_per_node: u32,
    /// Logical cores per storage node.
    pub cores_per_node: usize,
    /// SSD wear state for the device model.
    pub ssd_state: SsdState,
    /// Logical groups (PGs).
    pub pg_count: u32,
    /// Replication factor.
    pub replication: usize,
    /// Per-OSD configuration template (backend sizes, flush threshold …).
    pub osd: OsdConfig,
    /// Messenger threads per OSD (Original/Cos).
    pub messenger_threads: usize,
    /// PG threads per OSD (Original/Cos).
    pub pg_threads: usize,
    /// RTC threads per OSD (RtcV1..V3).
    pub rtc_threads: usize,
    /// Priority threads per OSD (Ptc/Dop/Ideal).
    pub priority_threads: usize,
    /// Non-priority threads per OSD (Ptc/Dop/Ideal).
    pub non_priority_threads: usize,
    /// CPU cost model.
    pub costs: CostModel,
    /// One-way network latency and bandwidth.
    pub link: Link,
    /// RNG seed.
    pub seed: u64,
    /// Queue depth per connection (closed loop); ignored when `pacing` set.
    pub queue_depth: usize,
    /// Open-loop pacing: fixed inter-arrival per connection.
    pub pacing: Option<SimDuration>,
    /// Periodic flush sweep interval (decoupled mode timeout flushes).
    pub flush_sweep: SimDuration,
    /// Cost charged when a core switches between threads.
    pub ctx_switch: SimDuration,
}

impl ClusterSimConfig {
    /// A small but faithful default cluster: 4 nodes × 2 OSDs, 10 cores
    /// per node, replication 2 — the paper's testbed scaled to laptop size.
    pub fn defaults(mode: PipelineMode) -> Self {
        ClusterSimConfig {
            mode,
            nodes: 4,
            osds_per_node: 2,
            cores_per_node: 10,
            ssd_state: SsdState::Steady,
            pg_count: 32,
            replication: 2,
            osd: OsdConfig { mode, ..OsdConfig::default() },
            messenger_threads: 2,
            pg_threads: 4,
            rtc_threads: 4,
            priority_threads: 2,
            non_priority_threads: 4,
            costs: CostModel::default(),
            link: Link::gbe_100(),
            seed: 0x5EED,
            queue_depth: 16,
            pacing: None,
            flush_sweep: SimDuration::millis(2),
            ctx_switch: SimDuration::nanos(1_200),
        }
    }
}

/// Simulation events.
enum Ev {
    /// (Client thread) issue more work on a connection.
    ClientKick { conn: usize },
    /// (Client thread) a reply arrived for a connection.
    ClientDone { conn: usize, reply: ClientReply },
    /// (Messenger thread) relay an inbound client request (Original/Cos).
    MsgrClientIn { osd: usize, from: ClientId, req: ClientReq },
    /// (Messenger thread) relay an inbound peer message (Original/Cos).
    MsgrPeerIn { osd: usize, from: OsdId, msg: PeerMsg },
    /// (Messenger thread) relay an outbound reply (Original/Cos).
    MsgrReplyOut { osd: usize, to: ClientId, reply: ClientReply },
    /// (Messenger thread) relay an outbound peer message (Original/Cos).
    MsgrPeerOut { osd: usize, to: OsdId, msg: PeerMsg },
    /// (Logic thread) process an OSD input; `charge_mp` if the messenger
    /// work happens in the same item (non-relay modes).
    OsdIn { osd: usize, input: OsdInput, charge_mp: Option<u64> },
    /// (Any) one device I/O of a store token completed.
    IoDone { osd: usize, token: u64 },
    /// (Flusher thread) periodic timeout flush of pending groups.
    FlushSweep { osd: usize },
    /// (Maintenance thread) drip-feed one background I/O to the device —
    /// models the compaction I/O throttling every real LSM applies so
    /// background bursts do not jam the foreground queue.
    BgIo { osd: usize, ios: Vec<rablock_storage::TraceIo>, pos: usize },
    /// (Any thread) an OSD fails: the monitor publishes a new map and every
    /// survivor receives it (§IV-A-4 steps ②–⑤).
    FailOsd { osd: usize },
}

struct OsdThreads {
    /// Frontend (messenger/RTC/priority) threads.
    msgr: Vec<ThreadId>,
    /// Logic threads (PG threads for relay modes; same as msgr otherwise).
    logic: Vec<ThreadId>,
    /// Non-priority threads (flush / deferred reads), empty for stock modes.
    flusher: Vec<ThreadId>,
    /// Maintenance thread.
    maint: ThreadId,
    /// Device id of this OSD's NVMe SSD.
    device: usize,
    node: usize,
}

#[derive(Clone, Debug, Default)]
struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    fn record(&mut self, d: SimDuration) {
        if self.samples.len() < 4_000_000 {
            self.samples.push(d.as_nanos());
        }
    }

    fn percentile(&self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
        SimDuration::nanos(s[idx])
    }

    fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::nanos(self.samples.iter().sum::<u64>() / self.samples.len() as u64)
    }
}

#[derive(Default)]
struct RtcGate {
    busy: bool,
    deferred: std::collections::VecDeque<Ev>,
}

struct ConnState {
    id: ClientId,
    thread: ThreadId,
    workload: Box<dyn ConnWorkload>,
    outstanding: HashMap<u64, (bool, SimTime, usize)>, // op -> (is_write, issued, target osd)
    next_op: u64,
    exhausted: bool,
}

/// Aggregated results of one measured window.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured wall-clock (simulated) duration.
    pub duration: SimDuration,
    /// Completed writes (and creates) in the window.
    pub writes_done: u64,
    /// Completed reads in the window.
    pub reads_done: u64,
    /// Write IOPS.
    pub write_iops: f64,
    /// Read IOPS.
    pub read_iops: f64,
    /// Mean / p50 / p95 / p99 write latency.
    pub write_lat: [SimDuration; 4],
    /// Mean / p50 / p95 / p99 read latency.
    pub read_lat: [SimDuration; 4],
    /// CPU usage per storage node (% of one core, paper convention).
    pub node_cpu_pct: Vec<f64>,
    /// CPU usage per stage tag across the cluster.
    pub tag_cpu_pct: BTreeMap<&'static str, f64>,
    /// CPU usage per thread class across the cluster.
    pub class_cpu_pct: BTreeMap<&'static str, f64>,
    /// Context switches charged in the window.
    pub context_switches: u64,
    /// Aggregated backend store statistics (WAF).
    pub store: StoreStats,
    /// Aggregated device statistics.
    pub device: DeviceStats,
    /// Total NVM bytes written (operation logs).
    pub nvm_bytes: u64,
    /// Forced synchronous flushes because NVM filled up.
    pub nvm_full_stalls: u64,
}

impl SimReport {
    /// Total client IOPS.
    pub fn total_iops(&self) -> f64 {
        self.write_iops + self.read_iops
    }

    /// Mean CPU usage per node.
    pub fn mean_node_cpu(&self) -> f64 {
        if self.node_cpu_pct.is_empty() {
            0.0
        } else {
            self.node_cpu_pct.iter().sum::<f64>() / self.node_cpu_pct.len() as f64
        }
    }
}

struct World {
    mode: PipelineMode,
    relay: bool,
    /// Proposed-system event-driven messenger (cheaper MP).
    lean: bool,
    costs: CostModel,
    map: OsdMap,
    osds: Vec<Osd>,
    threads: Vec<OsdThreads>,
    conns: Vec<ConnState>,
    /// Egress link per storage node, plus one shared client-side link.
    links: Vec<Link>,
    io_wait: HashMap<(usize, u64), usize>,
    /// OSDs that have failed (their events are dropped).
    dead: Vec<bool>,
    /// Run-to-completion gating: a busy RTC thread defers new client
    /// requests until the in-flight operation replies (paper §III-B).
    rtc_gate: HashMap<ThreadId, RtcGate>,
    write_lat: LatencyRecorder,
    read_lat: LatencyRecorder,
    writes_done: u64,
    reads_done: u64,
    queue_depth: usize,
    pacing: Option<SimDuration>,
    flush_sweep: SimDuration,
    pg_count: u32,
}

impl World {
    fn frontend_thread(&self, osd: usize, conn_hint: u64) -> ThreadId {
        let t = &self.threads[osd].msgr;
        t[(conn_hint as usize) % t.len()]
    }

    fn logic_thread(&self, osd: usize, group: GroupId) -> ThreadId {
        let t = &self.threads[osd].logic;
        t[group.0 as usize % t.len()]
    }

    fn flusher_thread(&self, osd: usize, hint: u64) -> ThreadId {
        let t = &self.threads[osd].flusher;
        if t.is_empty() {
            self.logic_thread(osd, GroupId(hint as u32 % self.pg_count))
        } else {
            t[hint as usize % t.len()]
        }
    }

    fn net_delay(&mut self, from_node: usize, now: SimTime, bytes: u64) -> SimDuration {
        let arrive = self.links[from_node].transfer(now, bytes);
        arrive.duration_since(now)
    }

    fn client_link(&self) -> usize {
        self.links.len() - 1
    }

    /// Dispatches an input to an OSD's logic thread.
    fn to_logic(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        osd: usize,
        group_hint: GroupId,
        input: OsdInput,
        charge_mp: Option<u64>,
        delay: SimDuration,
    ) {
        let thread = self.logic_thread(osd, group_hint);
        ctx.send_after(thread, Ev::OsdIn { osd, input, charge_mp }, delay);
    }

    #[allow(dead_code)] // kept: useful for future routing policies
    fn group_of_input(input: &OsdInput) -> GroupId {
        match input {
            OsdInput::Client { req, .. } => req.oid().group(),
            OsdInput::Peer { msg, .. } => match msg {
                PeerMsg::Repop { group, .. }
                | PeerMsg::RepopNvm { group, .. }
                | PeerMsg::RepAck { group, .. }
                | PeerMsg::PullLog { group, .. }
                | PeerMsg::LogRecords { group, .. } => *group,
            },
            OsdInput::FlushGroup { group } => *group,
            _ => GroupId(0),
        }
    }

    /// Charges stage CPU for processing `input` on the current thread.
    fn charge_input(&self, ctx: &mut Ctx<'_, Ev>, input: &OsdInput, charge_mp: Option<u64>) {
        let c = &self.costs;
        if let Some(bytes) = charge_mp {
            let lean = self.lean;
            ctx.spend(MP, c.recv(bytes, lean));
        }
        match input {
            OsdInput::Client { req, .. } => match req {
                ClientReq::Write { .. } | ClientReq::Create { .. } => {
                    ctx.spend(RP, c.rp_primary);
                    if self.mode.null_transaction() {
                        // MP+RP only.
                    } else if self.mode.decoupled() {
                        ctx.spend(RP, c.nvm_append);
                    } else if self.mode.prioritized() {
                        // PTC: TP/OS charged when the non-priority thread
                        // runs the deferred submit.
                    } else {
                        ctx.spend(TP, c.tp);
                        if !self.mode.null_store() {
                            let submit = if self.mode.lsm_backend() {
                                c.os_lsm_submit
                            } else {
                                c.os_cos_submit
                            };
                            ctx.spend(OS, submit);
                        }
                    }
                }
                ClientReq::Read { .. } => {
                    if self.mode.null_transaction() {
                        // immediate reply
                    } else if self.mode.decoupled() {
                        ctx.spend(RP, c.log_read);
                    } else if self.mode.prioritized() {
                        ctx.spend(RP, c.wake);
                    } else {
                        ctx.spend(TP, c.tp);
                        ctx.spend(OS, c.os_read);
                    }
                }
            },
            OsdInput::Peer { msg, .. } => match msg {
                PeerMsg::Repop { .. } => {
                    ctx.spend(RP, c.rp_replica);
                    if !self.mode.null_transaction()
                        && !self.mode.null_store()
                        && !self.mode.prioritized()
                    {
                        ctx.spend(TP, c.tp);
                        let submit = if self.mode.lsm_backend() {
                            c.os_lsm_submit
                        } else {
                            c.os_cos_submit
                        };
                        ctx.spend(OS, submit);
                    }
                }
                PeerMsg::RepopNvm { .. } => {
                    ctx.spend(RP, c.rp_replica);
                    ctx.spend(RP, c.nvm_append);
                }
                PeerMsg::RepAck { .. } => ctx.spend(RP, c.tp_complete),
                PeerMsg::PullLog { .. } | PeerMsg::LogRecords { .. } => ctx.spend(TP, c.tp),
            },
            OsdInput::StoreDurable { .. } => ctx.spend(TP, c.tp_complete),
            OsdInput::FlushGroup { .. } => {
                // Per-record costs are charged via the StoreIo trace below.
            }
            OsdInput::ReadFromStore { .. } => ctx.spend(OS, c.os_read),
            OsdInput::SubmitDeferred { .. } => {
                ctx.spend(TP, c.tp);
                let submit = if self.mode.lsm_backend() { c.os_lsm_submit } else { c.os_cos_submit };
                ctx.spend(OS, submit);
            }
            OsdInput::MaintStep => {}
            OsdInput::MapUpdate(_) => ctx.spend(TP, c.tp),
        }
    }

    fn apply_effects(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        thread: ThreadId,
        osd: usize,
        effects: Vec<OsdEffect>,
        flush_batch: bool,
    ) {
        let node = self.threads[osd].node;
        for effect in effects {
            match effect {
                OsdEffect::SendPeer { to, msg } => {
                    let off_priority = self.mode.prioritized()
                        && !self.threads[osd].msgr.contains(&thread);
                    if self.relay || off_priority {
                        // Hand to a messenger/priority thread for the send
                        // side (§IV-B: sends go through the owning thread).
                        let t = self.frontend_thread(osd, to.0 as u64);
                        ctx.send(t, Ev::MsgrPeerOut { osd, to, msg });
                    } else {
                        ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                        let delay = self.net_delay(node, ctx.now(), msg.wire_bytes());
                        let dest = to.0 as usize;
                        let from = self.osds[osd].id;
                        let group = match &msg {
                            PeerMsg::Repop { group, .. }
                            | PeerMsg::RepopNvm { group, .. }
                            | PeerMsg::RepAck { group, .. }
                            | PeerMsg::PullLog { group, .. }
                            | PeerMsg::LogRecords { group, .. } => *group,
                        };
                        let bytes = msg.wire_bytes();
                        self.to_logic(
                            ctx,
                            dest,
                            group,
                            OsdInput::Peer { from, msg },
                            Some(bytes),
                            delay,
                        );
                    }
                }
                OsdEffect::Reply { to, msg } => {
                    if self.mode.run_to_completion() {
                        if let Some(gate) = self.rtc_gate.get_mut(&thread) {
                            gate.busy = false;
                            if let Some(ev) = gate.deferred.pop_front() {
                                ctx.send(thread, ev);
                            }
                        }
                    }
                    let off_priority = self.mode.prioritized()
                        && !self.threads[osd].msgr.contains(&thread);
                    if self.relay || off_priority {
                        let t = self.frontend_thread(osd, to.0 as u64);
                        ctx.send(t, Ev::MsgrReplyOut { osd, to, reply: msg });
                    } else {
                        ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                        let delay = self.net_delay(node, ctx.now(), msg.wire_bytes());
                        let conn = to.0 as usize;
                        let ct = self.conns[conn].thread;
                        ctx.send_after(ct, Ev::ClientDone { conn, reply: msg }, delay);
                    }
                }
                OsdEffect::StoreIo { token, trace, wait } => {
                    let dev = self.threads[osd].device;
                    if !wait {
                        // Background work (compaction, write-back): throttle
                        // the I/Os so they interleave with foreground ops,
                        // as RocksDB's rate limiter does.
                        let ios: Vec<_> = trace
                            .into_iter()
                            .filter(|io| !matches!(io.kind, TraceKind::Flush))
                            .collect();
                        if !ios.is_empty() {
                            ctx.send(thread, Ev::BgIo { osd, ios, pos: 0 });
                        }
                        continue;
                    }
                    let mut ios = 0usize;
                    for io in &trace {
                        let req = match io.kind {
                            TraceKind::Read => IoRequest::read(io.bytes),
                            TraceKind::Write => IoRequest::write(io.bytes),
                            TraceKind::Flush => continue,
                        };
                        ios += 1;
                        ctx.submit_io(dev, req, thread, Ev::IoDone { osd, token });
                        if flush_batch && io.kind == TraceKind::Write {
                            // Amortized per-record store CPU for batch flushes.
                            ctx.spend(OS, self.costs.os_cos_submit);
                        }
                    }
                    if ios == 0 {
                        ctx.send(thread, Ev::IoDone { osd, token });
                        self.io_wait.insert((osd, token), 1);
                    } else {
                        self.io_wait.insert((osd, token), ios);
                    }
                }
                OsdEffect::NvmWritten { bytes } => {
                    ctx.spend(RP, self.costs.nvm_per_byte * bytes);
                }
                OsdEffect::WakeFlush { group } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, group.0 as u64);
                    ctx.send(t, Ev::OsdIn { osd, input: OsdInput::FlushGroup { group }, charge_mp: None });
                }
                OsdEffect::WakeRead { token } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, token);
                    ctx.send(t, Ev::OsdIn { osd, input: OsdInput::ReadFromStore { token }, charge_mp: None });
                }
                OsdEffect::WakeSubmit { token } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, token);
                    ctx.send(t, Ev::OsdIn { osd, input: OsdInput::SubmitDeferred { token }, charge_mp: None });
                }
                OsdEffect::WakeMaintenance => {
                    let t = self.threads[osd].maint;
                    ctx.send(t, Ev::OsdIn { osd, input: OsdInput::MaintStep, charge_mp: None });
                }
                OsdEffect::Maintained { bytes, .. } => {
                    ctx.spend(MT, self.costs.maintenance(bytes));
                }
            }
        }
    }

    fn issue_client_ops(&mut self, ctx: &mut Ctx<'_, Ev>, conn: usize) {
        loop {
            let open_loop = self.pacing.is_some();
            let budget = if open_loop {
                1
            } else {
                self.queue_depth.saturating_sub(self.conns[conn].outstanding.len())
            };
            if budget == 0 || self.conns[conn].exhausted {
                return;
            }
            let item = {
                let c = &mut self.conns[conn];
                c.workload.next(ctx.rng())
            };
            let Some(item) = item else {
                self.conns[conn].exhausted = true;
                return;
            };
            let (req, is_write) = {
                let c = &mut self.conns[conn];
                let op = OpId(c.next_op);
                c.next_op += 1;
                match item {
                    WorkItem::Write { oid, offset, len, fill } => (
                        ClientReq::Write { op, oid, offset, data: vec![fill; len as usize] },
                        true,
                    ),
                    WorkItem::Read { oid, offset, len } => {
                        (ClientReq::Read { op, oid, offset, len }, false)
                    }
                }
            };
            let group = req.oid().group();
            let primary = self.map.primary(group);
            let osd = primary.0 as usize;
            let bytes = req.wire_bytes();
            ctx.spend(CLIENT, SimDuration::micros(2));
            let client_link = self.client_link();
            let delay = {
                let arrive = self.links[client_link].transfer(ctx.now(), bytes);
                arrive.duration_since(ctx.now())
            };
            let from = self.conns[conn].id;
            self.conns[conn]
                .outstanding
                .insert(req.op().0, (is_write, ctx.now(), osd));
            if self.relay {
                let t = self.frontend_thread(osd, conn as u64);
                ctx.send_after(t, Ev::MsgrClientIn { osd, from, req }, delay);
            } else {
                // Route by group so replication acks (also routed by group)
                // return to the thread that owns the operation.
                let t = self.logic_thread(osd, group);
                ctx.send_after(
                    t,
                    Ev::OsdIn { osd, input: OsdInput::Client { from, req }, charge_mp: Some(bytes) },
                    delay,
                );
            }
            if open_loop {
                let pace = self.pacing.expect("open loop");
                let thread = self.conns[conn].thread;
                ctx.send_after(thread, Ev::ClientKick { conn }, pace);
                return;
            }
        }
    }
}

impl rablock_sim::Handler<Ev> for World {
    fn handle(&mut self, thread: ThreadId, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::ClientKick { conn } => {
                self.issue_client_ops(ctx, conn);
            }
            Ev::ClientDone { conn, reply } => {
                ctx.spend(CLIENT, SimDuration::micros(1));
                let op = reply.op().0;
                if let Some((is_write, issued, _)) = self.conns[conn].outstanding.remove(&op) {
                    let lat = ctx.now().duration_since(issued);
                    if is_write {
                        self.write_lat.record(lat);
                        self.writes_done += 1;
                    } else {
                        self.read_lat.record(lat);
                        self.reads_done += 1;
                    }
                }
                if let ClientReply::Error { error, .. } = &reply {
                    panic!("client observed error: {error}");
                }
                if self.pacing.is_none() {
                    self.issue_client_ops(ctx, conn);
                }
            }
            Ev::MsgrClientIn { osd, from, req } => {
                ctx.spend(MP, self.costs.recv(req.wire_bytes(), self.lean));
                let group = req.oid().group();
                self.to_logic(ctx, osd, group, OsdInput::Client { from, req }, None, SimDuration::ZERO);
            }
            Ev::MsgrPeerIn { osd, from, msg } => {
                ctx.spend(MP, self.costs.recv(msg.wire_bytes(), self.lean));
                let group = match &msg {
                    PeerMsg::Repop { group, .. }
                    | PeerMsg::RepopNvm { group, .. }
                    | PeerMsg::RepAck { group, .. }
                    | PeerMsg::PullLog { group, .. }
                    | PeerMsg::LogRecords { group, .. } => *group,
                };
                self.to_logic(ctx, osd, group, OsdInput::Peer { from, msg }, None, SimDuration::ZERO);
            }
            Ev::MsgrReplyOut { osd, to, reply } => {
                ctx.spend(MP, self.costs.send(reply.wire_bytes(), self.lean));
                let node = self.threads[osd].node;
                let delay = self.net_delay(node, ctx.now(), reply.wire_bytes());
                let conn = to.0 as usize;
                let ct = self.conns[conn].thread;
                ctx.send_after(ct, Ev::ClientDone { conn, reply }, delay);
            }
            Ev::MsgrPeerOut { osd, to, msg } => {
                ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                let node = self.threads[osd].node;
                let bytes = msg.wire_bytes();
                let delay = self.net_delay(node, ctx.now(), bytes);
                let dest = to.0 as usize;
                let t = self.frontend_thread(dest, self.osds[osd].id.0 as u64);
                let from = self.osds[osd].id;
                ctx.send_after(t, Ev::MsgrPeerIn { osd: dest, from, msg }, delay);
            }
            Ev::OsdIn { osd, input, charge_mp } => {
                if self.dead[osd] {
                    return; // failed OSDs process nothing
                }
                if self.mode.run_to_completion() && matches!(input, OsdInput::Client { .. }) {
                    let gate = self.rtc_gate.entry(thread).or_default();
                    if gate.busy {
                        gate.deferred.push_back(Ev::OsdIn { osd, input, charge_mp });
                        return;
                    }
                    gate.busy = true;
                }
                self.charge_input(ctx, &input, charge_mp);
                let flush_batch = matches!(input, OsdInput::FlushGroup { .. });
                let effects = self.osds[osd].handle(input);
                self.apply_effects(ctx, thread, osd, effects, flush_batch);
            }
            Ev::FailOsd { osd } => {
                self.dead[osd] = true;
                self.map.mark_down(OsdId(osd as u32));
                // Abandon in-flight ops addressed to the dead OSD (a real
                // client would time out and retry against the new primary).
                for conn in 0..self.conns.len() {
                    let thread = self.conns[conn].thread;
                    let before = self.conns[conn].outstanding.len();
                    self.conns[conn].outstanding.retain(|_, (_, _, target)| *target != osd);
                    if self.conns[conn].outstanding.len() != before {
                        ctx.send(thread, Ev::ClientKick { conn });
                    }
                }
                // Broadcast the new map to every survivor's logic threads.
                for peer in 0..self.osds.len() {
                    if self.dead[peer] {
                        continue;
                    }
                    let t = self.logic_thread(peer, GroupId(0));
                    let map = self.map.clone();
                    ctx.send(t, Ev::OsdIn { osd: peer, input: OsdInput::MapUpdate(map), charge_mp: None });
                }
            }
            Ev::IoDone { osd, token } => {
                if self.dead[osd] {
                    return;
                }
                // Background (wait:false) I/Os also land here; only tracked
                // tokens owe a StoreDurable to the state machine.
                let Some(remaining) = self.io_wait.get_mut(&(osd, token)) else {
                    return;
                };
                *remaining -= 1;
                if *remaining == 0 {
                    self.io_wait.remove(&(osd, token));
                    self.charge_input(ctx, &OsdInput::StoreDurable { token }, None);
                    let effects = self.osds[osd].handle(OsdInput::StoreDurable { token });
                    self.apply_effects(ctx, thread, osd, effects, false);
                }
            }
            Ev::BgIo { osd, ios, pos } => {
                let dev = self.threads[osd].device;
                let io = ios[pos];
                let req = match io.kind {
                    TraceKind::Read => IoRequest::read(io.bytes),
                    TraceKind::Write => IoRequest::write(io.bytes),
                    TraceKind::Flush => unreachable!("filtered at enqueue"),
                };
                // Fire-and-forget: completion tokens 0 are ignored by IoDone.
                ctx.submit_io(dev, req, thread, Ev::IoDone { osd, token: 0 });
                // ~640 MB/s throttle for 64 KiB chunks.
                let delay = SimDuration::nanos(1 + io.bytes * 100_000 / (64 << 10));
                if pos + 1 < ios.len() {
                    ctx.send_after(thread, Ev::BgIo { osd, ios, pos: pos + 1 }, delay);
                }
            }
            Ev::FlushSweep { osd } => {
                let pending = self.osds[osd].pending_groups();
                for group in pending {
                    let effects = self.osds[osd].handle(OsdInput::FlushGroup { group });
                    self.apply_effects(ctx, thread, osd, effects, true);
                }
                ctx.send_after(thread, Ev::FlushSweep { osd }, self.flush_sweep);
            }
        }
    }
}

/// A fully wired simulated cluster.
pub struct ClusterSim {
    sim: Simulation<Ev>,
    world: World,
    node_cores: Vec<std::ops::Range<usize>>,
    class_threads: BTreeMap<&'static str, Vec<ThreadId>>,
    conn_count: usize,
}

impl ClusterSim {
    /// Builds the cluster: nodes, cores, threads, devices, OSDs, and one
    /// client connection per entry of `workloads`.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (more pinned priority threads
    /// than cores, zero threads, …).
    pub fn new(cfg: ClusterSimConfig, workloads: Vec<Box<dyn ConnWorkload>>) -> Self {
        assert!(!workloads.is_empty(), "at least one connection required");
        let mut sim: Simulation<Ev> = Simulation::new(cfg.seed);
        sim.set_context_switch_cost(cfg.ctx_switch);
        let map = OsdMap::new(cfg.nodes, cfg.osds_per_node, cfg.pg_count, cfg.replication);

        let mut node_cores = Vec::new();
        let mut threads: Vec<OsdThreads> = Vec::new();
        let mut class_threads: BTreeMap<&'static str, Vec<ThreadId>> = BTreeMap::new();
        let mut osds = Vec::new();

        for node in 0..cfg.nodes as usize {
            let cores = sim.add_cores(cfg.cores_per_node);
            node_cores.push(cores.clone());
            let all: Vec<_> = cores.clone().collect();
            // Dedicated cores for priority threads come off the front.
            let mut next_dedicated = cores.start;
            for local in 0..cfg.osds_per_node as usize {
                let osd_idx = node * cfg.osds_per_node as usize + local;
                let (msgr, logic, flusher): (Vec<_>, Vec<_>, Vec<_>) = match cfg.mode {
                    PipelineMode::Original | PipelineMode::Cos => {
                        let msgr: Vec<_> = (0..cfg.messenger_threads)
                            .map(|i| {
                                sim.add_thread(ThreadCfg::new(
                                    format!("n{node}.osd{osd_idx}.msgr{i}"),
                                    all.clone(),
                                    Priority::Normal,
                                ))
                            })
                            .collect();
                        let logic: Vec<_> = (0..cfg.pg_threads)
                            .map(|i| {
                                sim.add_thread(ThreadCfg::new(
                                    format!("n{node}.osd{osd_idx}.pg{i}"),
                                    all.clone(),
                                    Priority::Normal,
                                ))
                            })
                            .collect();
                        class_threads.entry("msgr").or_default().extend(&msgr);
                        class_threads.entry("pg").or_default().extend(&logic);
                        (msgr, logic, Vec::new())
                    }
                    PipelineMode::RtcV1 | PipelineMode::RtcV2 | PipelineMode::RtcV3 => {
                        let rtc: Vec<_> = (0..cfg.rtc_threads)
                            .map(|i| {
                                sim.add_thread(ThreadCfg::new(
                                    format!("n{node}.osd{osd_idx}.rtc{i}"),
                                    all.clone(),
                                    Priority::Normal,
                                ))
                            })
                            .collect();
                        class_threads.entry("rtc").or_default().extend(&rtc);
                        (rtc.clone(), rtc, Vec::new())
                    }
                    PipelineMode::Ptc | PipelineMode::Dop | PipelineMode::Ideal => {
                        let prio: Vec<_> = (0..cfg.priority_threads)
                            .map(|i| {
                                let core = next_dedicated;
                                next_dedicated += 1;
                                assert!(
                                    core < cores.end,
                                    "not enough cores on node {node} to pin priority threads"
                                );
                                sim.add_thread(ThreadCfg::new(
                                    format!("n{node}.osd{osd_idx}.prio{i}"),
                                    vec![core],
                                    Priority::High,
                                ))
                            })
                            .collect();
                        class_threads.entry("priority").or_default().extend(&prio);
                        (prio.clone(), prio, Vec::new()) // flusher filled below
                    }
                };
                threads.push(OsdThreads {
                    msgr,
                    logic,
                    flusher,
                    maint: 0, // fixed up below
                    device: 0,
                    node,
                });
                let _ = osd_idx;
            }
            // Non-priority threads share the remaining (non-dedicated) cores
            // plus, at lower priority, the dedicated ones ("leave it to the
            // OS scheduler" in the paper).
            if matches!(cfg.mode, PipelineMode::Ptc | PipelineMode::Dop | PipelineMode::Ideal) {
                let shared: Vec<_> = (next_dedicated..cores.end).collect();
                assert!(!shared.is_empty(), "no shared cores left on node {node}");
                for local in 0..cfg.osds_per_node as usize {
                    let osd_idx = node * cfg.osds_per_node as usize + local;
                    let mut aff = shared.clone();
                    aff.extend(cores.start..next_dedicated);
                    let flusher: Vec<_> = (0..cfg.non_priority_threads)
                        .map(|i| {
                            sim.add_thread(ThreadCfg::new(
                                format!("n{node}.osd{osd_idx}.nprio{i}"),
                                aff.clone(),
                                Priority::Normal,
                            ))
                        })
                        .collect();
                    class_threads.entry("non-priority").or_default().extend(&flusher);
                    threads[osd_idx].flusher = flusher;
                }
            }
            // Maintenance threads: low priority on the node's shared cores.
            for local in 0..cfg.osds_per_node as usize {
                let osd_idx = node * cfg.osds_per_node as usize + local;
                let maint = sim.add_thread(ThreadCfg::new(
                    format!("n{node}.osd{osd_idx}.maint"),
                    all.clone(),
                    Priority::Low,
                ));
                class_threads.entry("maint").or_default().push(maint);
                threads[osd_idx].maint = maint;
            }
        }

        // Devices: one NVMe SSD model per OSD (the paper partitions each
        // physical SSD across OSDs; per-OSD devices with proportional
        // capability are equivalent for queueing purposes).
        for t in threads.iter_mut() {
            let dev = sim.add_device(Device::new(
                format!("nvme.osd{}", osds.len()),
                DeviceProfile::nvme_pm1725a(cfg.ssd_state),
            ));
            t.device = dev;
        }

        for id in 0..(cfg.nodes * cfg.osds_per_node) {
            osds.push(Osd::new(OsdId(id), cfg.osd.clone(), map.clone()));
        }

        // Client threads: one core per two connections on client "nodes".
        let conn_count = workloads.len();
        let client_cores = sim.add_cores(conn_count.div_ceil(2).max(1));
        let client_core_list: Vec<_> = client_cores.collect();
        let mut conns = Vec::new();
        for (i, workload) in workloads.into_iter().enumerate() {
            let core = client_core_list[i % client_core_list.len()];
            let thread = sim.add_thread(ThreadCfg::new(
                format!("client{i}"),
                vec![core],
                Priority::Normal,
            ));
            class_threads.entry("client").or_default().push(thread);
            conns.push(ConnState {
                id: ClientId(i as u32),
                thread,
                workload,
                outstanding: HashMap::new(),
                next_op: 1,
                exhausted: false,
            });
        }

        let links = (0..cfg.nodes as usize + 1).map(|_| cfg.link.clone()).collect();

        let world = World {
            mode: cfg.mode,
            relay: matches!(cfg.mode, PipelineMode::Original | PipelineMode::Cos),
            lean: cfg.mode.prioritized(),
            costs: cfg.costs.clone(),
            map,
            osds,
            threads,
            conns,
            links,
            io_wait: HashMap::new(),
            dead: vec![false; (cfg.nodes * cfg.osds_per_node) as usize],
            rtc_gate: HashMap::new(),
            write_lat: LatencyRecorder::default(),
            read_lat: LatencyRecorder::default(),
            writes_done: 0,
            reads_done: 0,
            queue_depth: cfg.queue_depth,
            pacing: cfg.pacing,
            flush_sweep: cfg.flush_sweep,
            pg_count: cfg.pg_count,
        };

        let mut this = ClusterSim { sim, world, node_cores, class_threads, conn_count };
        // Kick every connection at t=0 and start flush sweeps.
        for conn in 0..this.conn_count {
            let t = this.world.conns[conn].thread;
            this.sim.schedule(SimTime::ZERO, t, Ev::ClientKick { conn });
        }
        if this.world.mode.decoupled() {
            for osd in 0..this.world.osds.len() {
                let t = this.world.threads[osd].flusher[0];
                this.sim
                    .schedule(SimTime::ZERO + cfg.flush_sweep, t, Ev::FlushSweep { osd });
            }
        }
        this
    }

    /// Creates every object of `objects` on all replicas directly in the
    /// backends (instant provisioning, like creating RBD images before the
    /// measured run).
    pub fn prefill(&mut self, objects: &[(ObjectId, u64)]) {
        for &(oid, size) in objects {
            let set = self.world.map.acting_set(oid.group());
            for osd in set {
                self.world.osds[osd.0 as usize].bootstrap_object(oid, size);
            }
        }
    }

    /// The cluster map (object routing in workload builders).
    pub fn map(&self) -> &OsdMap {
        &self.world.map
    }

    /// Schedules an OSD failure at absolute time `at` (§IV-A-4 scenario
    /// injection). The monitor reaction, map distribution, survivor
    /// flush-but-keep, and replacement log-pull all run inside the
    /// simulation.
    pub fn fail_osd(&mut self, at: rablock_sim::SimTime, osd: OsdId) {
        // Deliver on the first client thread — the handler only mutates
        // driver state and broadcasts.
        let t = self.world.conns[0].thread;
        self.sim.schedule(at, t, Ev::FailOsd { osd: osd.0 as usize });
    }

    /// Pending op-log entries of one group on one OSD (recovery tests).
    pub fn log_pending(&self, osd: OsdId, group: GroupId) -> usize {
        self.world.osds[osd.0 as usize].log_pending(group)
    }

    /// Runs for `warmup`, discards all statistics, then runs for `measure`
    /// and reports.
    pub fn run(&mut self, warmup: SimDuration, measure: SimDuration) -> SimReport {
        let t0 = SimTime::ZERO + warmup;
        self.sim.run_until(&mut self.world, t0);
        // Reset every counter.
        self.sim.metrics_mut().reset_window(t0);
        for i in 0..self.sim.device_count() {
            self.sim.device_mut(i).reset_stats();
        }
        for osd in &mut self.world.osds {
            osd.backend_mut().reset_stats();
        }
        self.world.write_lat = LatencyRecorder::default();
        self.world.read_lat = LatencyRecorder::default();
        self.world.writes_done = 0;
        self.world.reads_done = 0;

        let t1 = t0 + measure;
        self.sim.run_until(&mut self.world, t1);
        self.report(measure)
    }

    fn report(&self, duration: SimDuration) -> SimReport {
        let now = self.sim.now();
        let metrics = self.sim.metrics();
        let win = now.saturating_since(metrics.window_start()).as_nanos().max(1);
        let node_cpu_pct = self
            .node_cores
            .iter()
            .map(|r| metrics.cores_busy(r.clone()) as f64 / win as f64 * 100.0)
            .collect();
        let mut tag_cpu_pct = BTreeMap::new();
        for (tag, ns) in metrics.tags() {
            tag_cpu_pct.insert(tag, ns as f64 / win as f64 * 100.0);
        }
        let mut class_cpu_pct = BTreeMap::new();
        for (class, ids) in &self.class_threads {
            let ns: u64 = ids.iter().map(|&t| metrics.thread_busy(t)).sum();
            class_cpu_pct.insert(*class, ns as f64 / win as f64 * 100.0);
        }
        let mut store = StoreStats::default();
        for osd in &self.world.osds {
            let s = osd.backend().stats();
            store.user_bytes += s.user_bytes;
            store.wal_bytes += s.wal_bytes;
            store.flush_bytes += s.flush_bytes;
            store.compaction_bytes += s.compaction_bytes;
            store.data_bytes += s.data_bytes;
            store.metadata_bytes += s.metadata_bytes;
            store.superblock_bytes += s.superblock_bytes;
            store.read_bytes += s.read_bytes;
            store.transactions += s.transactions;
        }
        let mut device = DeviceStats::default();
        for i in 0..self.sim.device_count() {
            let d = self.sim.device(i).stats();
            device.reads += d.reads;
            device.writes += d.writes;
            device.flushes += d.flushes;
            device.bytes_read += d.bytes_read;
            device.bytes_written += d.bytes_written;
            device.total_latency_ns += d.total_latency_ns;
        }
        let secs = duration.as_secs_f64();
        let w = &self.world;
        SimReport {
            duration,
            writes_done: w.writes_done,
            reads_done: w.reads_done,
            write_iops: w.writes_done as f64 / secs,
            read_iops: w.reads_done as f64 / secs,
            write_lat: [
                w.write_lat.mean(),
                w.write_lat.percentile(0.50),
                w.write_lat.percentile(0.95),
                w.write_lat.percentile(0.99),
            ],
            read_lat: [
                w.read_lat.mean(),
                w.read_lat.percentile(0.50),
                w.read_lat.percentile(0.95),
                w.read_lat.percentile(0.99),
            ],
            node_cpu_pct,
            tag_cpu_pct,
            class_cpu_pct,
            context_switches: metrics.context_switches,
            store,
            device,
            nvm_bytes: w.osds.iter().map(Osd::nvm_bytes_written).sum(),
            nvm_full_stalls: w.osds.iter().map(|o| o.nvm_full_stalls).sum(),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rablock_cos::CosOptions;
    use rablock_lsm::LsmOptions;

    pub(crate) fn run_mode_pub(mode: PipelineMode, conns: usize) -> SimReport {
        run_mode(mode, conns)
    }

    pub(crate) fn small_cfg_pub(mode: PipelineMode) -> ClusterSimConfig {
        small_cfg(mode)
    }

    pub(crate) fn objects_pub(n: u64) -> Vec<(ObjectId, u64)> {
        objects(n)
    }

    pub(crate) fn randwrite_conn_pub(objs: u64, seed: u64) -> Box<dyn ConnWorkload> {
        randwrite_conn(objs, seed)
    }

    fn small_cfg(mode: PipelineMode) -> ClusterSimConfig {
        let mut cfg = ClusterSimConfig::defaults(mode);
        cfg.nodes = 2;
        cfg.osds_per_node = 1;
        cfg.cores_per_node = 6;
        cfg.priority_threads = 3;
        cfg.non_priority_threads = 3;
        cfg.pg_count = 24;
        cfg.osd = OsdConfig {
            mode,
            device_bytes: 64 << 20,
            nvm_bytes: 8 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 16,
            lsm: LsmOptions { memtable_bytes: 1 << 20, ..LsmOptions::default() },
            cos: CosOptions { partitions: 2, onode_slots: 1024, ..CosOptions::default() },
        };
        cfg.queue_depth = 8;
        cfg
    }

    fn objects(n: u64) -> Vec<(ObjectId, u64)> {
        // 1 MiB objects: small enough that every OSD can hold every object
        // in these 2-OSD test clusters.
        (0..n).map(|i| (ObjectId::new(GroupId((i % 24) as u32), i), 1 << 20)).collect()
    }

    fn randwrite_conn(objs: u64, seed_offset: u64) -> Box<dyn ConnWorkload> {
        let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(seed_offset + 1);
        Box::new(move |_rng: &mut SimRng| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (x >> 16) % objs;
            let block = (x >> 40) % 256; // within the 1 MiB object, 4 KiB blocks
            Some(WorkItem::Write {
                oid: ObjectId::new(GroupId((i % 24) as u32), i),
                offset: block * 4096,
                len: 4096,
                fill: (x % 251) as u8,
            })
        })
    }

    fn run_mode(mode: PipelineMode, conns: usize) -> SimReport {
        let cfg = small_cfg(mode);
        let workloads: Vec<Box<dyn ConnWorkload>> =
            (0..conns).map(|c| randwrite_conn(32, c as u64)).collect();
        let mut sim = ClusterSim::new(cfg, workloads);
        sim.prefill(&objects(32));
        sim.run(SimDuration::millis(30), SimDuration::millis(80))
    }

    #[test]
    fn dop_cluster_completes_writes() {
        let r = run_mode(PipelineMode::Dop, 4);
        assert!(r.writes_done > 500, "writes done: {}", r.writes_done);
        assert!(r.write_iops > 10_000.0, "iops: {}", r.write_iops);
        assert!(r.nvm_bytes > 0, "NVM log used");
        assert!(r.mean_node_cpu() > 10.0, "some CPU burned: {}", r.mean_node_cpu());
    }

    #[test]
    fn original_cluster_completes_writes_with_lsm_waf() {
        let r = run_mode(PipelineMode::Original, 4);
        assert!(r.writes_done > 200, "writes done: {}", r.writes_done);
        assert!(r.store.waf() > 1.5, "LSM waf: {}", r.store.waf());
        assert!(r.tag_cpu_pct.contains_key("MT") || r.store.compaction_bytes == 0);
    }

    #[test]
    fn proposed_beats_original_on_random_writes() {
        let orig = run_mode(PipelineMode::Original, 6);
        let dop = run_mode(PipelineMode::Dop, 6);
        assert!(
            dop.write_iops > orig.write_iops * 1.5,
            "proposed {} vs original {}",
            dop.write_iops,
            orig.write_iops
        );
        assert!(
            dop.write_lat[0] < orig.write_lat[0],
            "proposed latency {} vs original {}",
            dop.write_lat[0],
            orig.write_lat[0]
        );
    }

    #[test]
    fn ablation_order_matches_table_ii() {
        let orig = run_mode(PipelineMode::Original, 6).write_iops;
        let cos = run_mode(PipelineMode::Cos, 6).write_iops;
        let ptc = run_mode(PipelineMode::Ptc, 6).write_iops;
        let dop = run_mode(PipelineMode::Dop, 6).write_iops;
        assert!(cos > orig, "COS {cos} > Original {orig}");
        assert!(ptc >= cos * 0.9, "PTC {ptc} vs COS {cos}");
        assert!(dop > ptc, "DOP {dop} > PTC {ptc}");
    }

    #[test]
    fn reads_return_written_data() {
        // Write then read the same blocks; verify the data round-trips
        // through the whole simulated cluster.
        let cfg = small_cfg(PipelineMode::Dop);
        let mut counter = 0u64;
        let wl: Box<dyn ConnWorkload> = Box::new(move |_rng: &mut SimRng| {
            let i = counter;
            counter += 1;
            let oid = ObjectId::new(GroupId((i / 8 % 24) as u32), i / 8 % 16);
            if i < 64 {
                Some(WorkItem::Write { oid, offset: (i % 8) * 4096, len: 4096, fill: (i % 251) as u8 })
            } else if i < 128 {
                let j = i - 64;
                let oid = ObjectId::new(GroupId((j / 8 % 24) as u32), j / 8 % 16);
                Some(WorkItem::Read { oid, offset: (j % 8) * 4096, len: 4096 })
            } else {
                None
            }
        });
        let mut sim = ClusterSim::new(cfg, vec![wl]);
        sim.prefill(&objects(16));
        let r = sim.run(SimDuration::ZERO, SimDuration::millis(200));
        assert_eq!(r.writes_done + r.reads_done, 128, "all ops completed");
        assert_eq!(r.reads_done, 64);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_mode(PipelineMode::Dop, 3);
        let b = run_mode(PipelineMode::Dop, 3);
        assert_eq!(a.writes_done, b.writes_done);
        assert_eq!(a.context_switches, b.context_switches);
        assert_eq!(a.nvm_bytes, b.nvm_bytes);
    }

    #[test]
    fn rtc_gating_limits_per_thread_concurrency() {
        let v2 = run_mode(PipelineMode::RtcV2, 6);
        let v3 = run_mode(PipelineMode::RtcV3, 6);
        // v3 strips TP/OS relative to v2: strictly less work, >= IOPS.
        assert!(v3.write_iops >= v2.write_iops * 0.95, "v3 {} vs v2 {}", v3.write_iops, v2.write_iops);
        // Both complete and stay below the Ideal unbounded pipeline.
        assert!(v2.writes_done > 100);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::tests::*;
    use super::*;

    #[test]
    #[ignore]
    fn dump_unloaded_latency() {
        use super::tests::*;
        for mode in [PipelineMode::Ptc, PipelineMode::Dop] {
            let mut cfg = small_cfg_pub(mode);
            cfg.queue_depth = 1;
            let workloads: Vec<Box<dyn ConnWorkload>> = vec![randwrite_conn_pub(32, 0)];
            let mut sim = ClusterSim::new(cfg, workloads);
            sim.prefill(&objects_pub(32));
            let r = sim.run(SimDuration::millis(10), SimDuration::millis(50));
            println!("== {mode:?} qd1: iops={:.0} lat_mean={} p50={} p95={}",
                r.write_iops, r.write_lat[0], r.write_lat[1], r.write_lat[2]);
        }
    }

    #[test]
    #[ignore]
    fn dump_scaling() {
        for conns in [3, 6, 12, 24] {
            let r = run_mode_pub(PipelineMode::Dop, conns);
            println!("== conns={conns}: iops={:.0} lat={} prio_cpu={:?}", r.write_iops, r.write_lat[0],
                r.class_cpu_pct.get("priority"));
        }
    }

    #[test]
    #[ignore]
    fn dump_mode_reports() {
        for mode in [PipelineMode::Original, PipelineMode::Cos, PipelineMode::Ptc, PipelineMode::Dop] {
            let r = run_mode_pub(mode, 6);
            println!("== {mode:?}: iops={:.0} lat_mean={} p95={} cpu/node={:?} tags={:?} classes={:?} ctx={} dev_writes={} dev_lat={} stalls={}",
                r.write_iops, r.write_lat[0], r.write_lat[2], r.node_cpu_pct, r.tag_cpu_pct, r.class_cpu_pct, r.context_switches,
                r.device.writes, r.device.mean_latency(), r.nvm_full_stalls);
        }
    }
}
