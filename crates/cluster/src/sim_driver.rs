//! Deterministic cluster simulation driver.
//!
//! Maps the sans-io OSD core onto the `rablock-sim` kernel: real OSD state
//! machines (real backends, real NVM logs) execute inside simulated threads
//! on simulated cores, with every CPU slice tagged (MP/RP/TP/OS/MT), every
//! store I/O replayed against a timed NVMe model, and every message paying
//! network latency. This is the machine all paper figures run on.
//!
//! Thread layouts by [`PipelineMode`]:
//!
//! * `Original`/`Cos` — messenger threads relay to PG threads (the stock
//!   thread-pool: every request hops threads several times).
//! * `RtcV1..V3` — run-to-completion threads own connections end to end.
//! * `Ptc`/`Dop`/`Ideal` — priority threads pinned to dedicated cores handle
//!   MP/RP (and NVM logging); non-priority threads share the remaining
//!   cores for flushes and store reads; maintenance runs at low priority.

use std::collections::{BTreeMap, HashMap};

use rablock_sim::{
    chrome_trace_json, AttributionReport, Component, Ctx, Device, DeviceProfile, DeviceStats,
    FaultEvent, FaultPlan, IoRequest, LatSummary, Link, Priority, Recorder, RotMedia,
    SchedulerKind, SimDuration, SimRng, SimTime, Simulation, SsdState, ThreadCfg, ThreadId,
    TimeSeries, TraceId, Track,
};
use rablock_storage::{GroupId, ObjectId, StoreError, StoreStats, TraceKind};

use crate::costs::{CostModel, CLIENT, MP, MT, OS, RP, TP};
use crate::invariants::{HistoryChecker, ReplicaListing};
use crate::msg::{ClientId, ClientReply, ClientReq, MonMsg, OpId, PeerMsg};
use crate::osd::{Osd, OsdConfig, OsdEffect, OsdInput, PgState, PipelineMode, StoreTokenOp};
use crate::placement::{Monitor, OsdId, OsdMap};
use crate::retry::RetryPolicy;

/// Pseudo-node index of the monitor in fault-plan partition queries: the
/// monitor runs on no storage node, so plans that want to cut an OSD off
/// from the monitor (false-positive failure detection) partition the OSD's
/// node against this index.
pub const MON_NODE: usize = usize::MAX;

/// One operation a connection wants to issue.
#[derive(Clone, Debug)]
pub enum WorkItem {
    /// Write `len` bytes at `offset` (payload filled with `fill`).
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Fill byte for the payload.
        fill: u8,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
}

/// A per-connection workload generator (fio job / YCSB client).
pub trait ConnWorkload: Send {
    /// The next operation, or `None` when the connection is done.
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem>;
}

impl<F: FnMut(&mut SimRng) -> Option<WorkItem> + Send> ConnWorkload for F {
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem> {
        self(rng)
    }
}

/// Cluster-level simulation configuration.
pub struct ClusterSimConfig {
    /// Which of the paper's systems to run.
    pub mode: PipelineMode,
    /// Storage nodes.
    pub nodes: u32,
    /// OSD daemons per node.
    pub osds_per_node: u32,
    /// Logical cores per storage node.
    pub cores_per_node: usize,
    /// SSD wear state for the device model.
    pub ssd_state: SsdState,
    /// Logical groups (PGs).
    pub pg_count: u32,
    /// Replication factor.
    pub replication: usize,
    /// Per-OSD configuration template (backend sizes, flush threshold …).
    pub osd: OsdConfig,
    /// Messenger threads per OSD (Original/Cos).
    pub messenger_threads: usize,
    /// PG threads per OSD (Original/Cos).
    pub pg_threads: usize,
    /// RTC threads per OSD (RtcV1..V3).
    pub rtc_threads: usize,
    /// Priority threads per OSD (Ptc/Dop/Ideal).
    pub priority_threads: usize,
    /// Non-priority threads per OSD (Ptc/Dop/Ideal).
    pub non_priority_threads: usize,
    /// CPU cost model.
    pub costs: CostModel,
    /// One-way network latency and bandwidth.
    pub link: Link,
    /// RNG seed.
    pub seed: u64,
    /// Queue depth per connection (closed loop); ignored when `pacing` set.
    pub queue_depth: usize,
    /// Open-loop pacing: fixed inter-arrival per connection.
    pub pacing: Option<SimDuration>,
    /// Periodic flush sweep interval (decoupled mode timeout flushes).
    pub flush_sweep: SimDuration,
    /// Cost charged when a core switches between threads.
    pub ctx_switch: SimDuration,
    /// Deterministic fault-injection plan (drops, dups, partitions, crashes,
    /// gray devices). Empty by default.
    pub faults: FaultPlan,
    /// Client timeout/retry policy. `None` keeps the legacy client that
    /// waits forever (no fault tolerance, no timer overhead).
    pub retry: Option<RetryPolicy>,
    /// Heartbeat emission period. `None` disables heartbeat failure
    /// detection (the map only changes through direct injection).
    pub heartbeat_period: Option<SimDuration>,
    /// Missed-heartbeat window after which the monitor marks an OSD down.
    pub heartbeat_grace: SimDuration,
    /// Check the no-lost-acked-write / read-your-writes invariants on every
    /// completed operation (fault-injection runs).
    pub check_history: bool,
    /// Event-queue implementation for the DES engine. Results are
    /// bit-identical across kinds; only wall-clock speed differs.
    pub scheduler: SchedulerKind,
    /// Scheduled cluster-map churn: admin weight changes applied at the
    /// monitor at fixed times (grow-under-load, drains, rebalances). Empty
    /// by default. The backfill/recovery throttle knobs themselves live on
    /// the per-OSD template (`osd.max_backfill_inflight`,
    /// `osd.backfill_bytes_per_tick`).
    pub churn: Vec<ChurnOp>,
    /// OSD ids that start weighted *out* of placement: fully provisioned
    /// and heartbeating but holding no data until a churn op weaves them
    /// in. This is how grow scenarios pre-provision their final topology.
    pub initially_out: Vec<u32>,
    /// Flap dampening: rejoining this many times within `flap_window`
    /// holds an OSD out for `flap_holdout`. 0 disables dampening.
    pub flap_threshold: u32,
    /// See `flap_threshold`.
    pub flap_window: SimDuration,
    /// See `flap_threshold`.
    pub flap_holdout: SimDuration,
    /// Per-op span tracing + latency attribution. Purely observational:
    /// fingerprints are byte-identical with tracing on or off.
    pub trace: bool,
    /// How many worst ops the slow-op ring keeps (with full span trees)
    /// when tracing is on.
    pub slow_op_ring: usize,
    /// Windowed time-series sampling cadence. `None` disables the sampler.
    /// Sampling happens *between* engine slices, never through events, so it
    /// cannot perturb the run.
    pub telemetry_window: Option<SimDuration>,
    /// Background scrub cadence: every interval, each group's primary is
    /// asked to scrub. `None` disables scrubbing entirely.
    pub scrub_interval: Option<SimDuration>,
    /// Every Nth scrub round is a *deep* scrub (full data read + per-block
    /// checksum verify); the others are light (metadata/digest compare).
    /// 0 makes every round light.
    pub scrub_deep_every: u64,
    /// Worker threads driving the space-parallel engine. The simulation is
    /// always partitioned into `nodes + 1` domains (clients + monitor in
    /// domain 0, one domain per storage node); `shards` only chooses how
    /// many OS threads execute those domains, so every metric is
    /// byte-identical for any value — parallelism changes wall-clock only.
    pub shards: usize,
    /// Conservative-synchronization lookahead override for the LBTS window.
    /// `None` uses the floor the network model guarantees: every
    /// cross-domain message pays at least `link.lookahead()` of latency.
    /// Tests force 1 ns here to maximize synchronization rounds.
    pub lookahead: Option<SimDuration>,
}

/// One scheduled admin map mutation (elastic-operations churn).
#[derive(Debug, Clone, Copy)]
pub struct ChurnOp {
    /// When the administrator applies the change.
    pub at: SimTime,
    /// Target OSD id.
    pub osd: u32,
    /// New placement weight: 0 drains the OSD,
    /// [`crate::placement::DEFAULT_OSD_WEIGHT`] weaves it in at unit share.
    pub weight: u32,
}

impl ClusterSimConfig {
    /// A small but faithful default cluster: 4 nodes × 2 OSDs, 10 cores
    /// per node, replication 2 — the paper's testbed scaled to laptop size.
    pub fn defaults(mode: PipelineMode) -> Self {
        ClusterSimConfig {
            mode,
            nodes: 4,
            osds_per_node: 2,
            cores_per_node: 10,
            ssd_state: SsdState::Steady,
            pg_count: 32,
            replication: 2,
            osd: OsdConfig {
                mode,
                ..OsdConfig::default()
            },
            messenger_threads: 2,
            pg_threads: 4,
            rtc_threads: 4,
            priority_threads: 2,
            non_priority_threads: 4,
            costs: CostModel::default(),
            link: Link::gbe_100(),
            seed: 0x5EED,
            queue_depth: 16,
            pacing: None,
            flush_sweep: SimDuration::millis(2),
            ctx_switch: SimDuration::nanos(1_200),
            faults: FaultPlan::none(),
            retry: None,
            heartbeat_period: None,
            heartbeat_grace: SimDuration::millis(30),
            check_history: false,
            scheduler: SchedulerKind::default(),
            churn: Vec::new(),
            initially_out: Vec::new(),
            flap_threshold: crate::placement::DEFAULT_FLAP_THRESHOLD,
            flap_window: SimDuration::nanos(crate::placement::DEFAULT_FLAP_WINDOW_NANOS),
            flap_holdout: SimDuration::nanos(crate::placement::DEFAULT_FLAP_HOLDOUT_NANOS),
            trace: false,
            slow_op_ring: 32,
            telemetry_window: None,
            scrub_interval: None,
            scrub_deep_every: 4,
            shards: 1,
            lookahead: None,
        }
    }
}

/// Simulation events.
enum Ev {
    /// (Client thread) issue more work on a connection.
    ClientKick { conn: usize },
    /// (Client thread) a reply arrived for a connection.
    ClientDone { conn: usize, reply: ClientReply },
    /// (Messenger thread) relay an inbound client request (Original/Cos).
    MsgrClientIn {
        osd: usize,
        from: ClientId,
        req: ClientReq,
    },
    /// (Messenger thread) relay an inbound peer message (Original/Cos).
    MsgrPeerIn {
        osd: usize,
        from: OsdId,
        msg: PeerMsg,
    },
    /// (Messenger thread) relay an outbound reply (Original/Cos).
    MsgrReplyOut {
        osd: usize,
        to: ClientId,
        reply: ClientReply,
    },
    /// (Messenger thread) relay an outbound peer message (Original/Cos).
    MsgrPeerOut { osd: usize, to: OsdId, msg: PeerMsg },
    /// (Logic thread) process an OSD input; `charge_mp` if the messenger
    /// work happens in the same item (non-relay modes).
    OsdIn {
        osd: usize,
        input: OsdInput,
        charge_mp: Option<u64>,
    },
    /// (Any) one device I/O of a store token completed.
    IoDone { osd: usize, token: u64 },
    /// (Flusher thread) periodic timeout flush of pending groups.
    FlushSweep { osd: usize },
    /// (Maintenance thread) drip-feed one background I/O to the device —
    /// models the compaction I/O throttling every real LSM applies so
    /// background bursts do not jam the foreground queue.
    BgIo {
        osd: usize,
        ios: Vec<rablock_storage::TraceIo>,
        pos: usize,
    },
    /// (Any thread) an OSD process dies. Nobody else is told: detection
    /// happens through missed heartbeats (§IV-A-4 step ② is the monitor's
    /// own conclusion, not an oracle's).
    CrashOsd { osd: usize, torn_tail: bool },
    /// (Any thread) a crashed OSD restarts from its durable state.
    RestartOsd { osd: usize },
    /// (Any thread) a gray-failure window edge: scale a device's service
    /// time without killing anything.
    GraySet { device: usize, multiplier: f64 },
    /// (Frontend thread) an OSD's heartbeat timer fired.
    HeartbeatTick { osd: usize },
    /// (Monitor thread) a heartbeat beacon arrived at the monitor.
    MonHeartbeat { osd: usize },
    /// (Monitor thread) the monitor's periodic liveness sweep.
    MonSweep,
    /// (Client thread) the retry timer for an outstanding op fired.
    ClientTimeout { conn: usize, op: u64, attempt: u32 },
    /// (Driver thread) a scheduled admin map mutation (grow/drain/reweight)
    /// reaches the monitor. Index into the config's churn plan.
    Churn { idx: usize },
    /// (Driver thread) silent media corruption from the fault plan's
    /// timeline: flip bits on one OSD's SSD data blocks or NVM log ring.
    /// `seed` drives a self-contained target stream (never the scheduler
    /// RNG), so wheel and heap runs rot the exact same bits.
    BitRot {
        osd: usize,
        lo: u64,
        hi: u64,
        flips: u32,
        media: RotMedia,
        seed: u64,
    },
    /// (Driver thread) periodic scrub sweep: ask every group's live primary
    /// to start a scrub round.
    ScrubSweep { round: u64 },
}

#[derive(Clone)]
struct OsdThreads {
    /// Frontend (messenger/RTC/priority) threads.
    msgr: Vec<ThreadId>,
    /// Logic threads (PG threads for relay modes; same as msgr otherwise).
    logic: Vec<ThreadId>,
    /// Non-priority threads (flush / deferred reads), empty for stock modes.
    flusher: Vec<ThreadId>,
    /// Maintenance thread.
    maint: ThreadId,
    /// Device id of this OSD's NVMe SSD.
    device: usize,
    node: usize,
}

#[derive(Clone, Debug, Default)]
struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    fn record(&mut self, d: SimDuration) {
        if self.samples.len() < 4_000_000 {
            self.samples.push(d.as_nanos());
        }
    }

    fn summary(&self) -> LatSummary {
        LatSummary::from_samples(&self.samples)
    }
}

/// Identity of a traced op as known *locally* to one shard.
///
/// The client-side shard knows the real [`TraceId`] (connection + op). A
/// replica shard only knows the replication key `(primary_osd, seq)` its
/// message carried — the key→id join lives on the primary's shard and is
/// resolved at replay time, never across shards at simulation time.
#[derive(Copy, Clone, Debug)]
enum TraceRef {
    Tid(TraceId),
    Rep(u32, u64),
}

/// One recorder call, logged shard-locally and replayed after the run.
#[derive(Debug)]
enum TraceOp {
    Begin {
        id: TraceId,
        is_write: bool,
    },
    Span {
        id: TraceRef,
        name: &'static str,
        track: Track,
        start: SimTime,
        dur: SimDuration,
        comp: Component,
    },
    Retry {
        id: TraceId,
    },
    RegisterRep {
        primary: u32,
        seq: u64,
        id: TraceRef,
    },
    Finish {
        id: TraceId,
    },
    Abandon {
        id: TraceId,
    },
}

/// Per-shard tracing state. Tracing is purely observational, so shards log
/// recorder calls instead of sharing a recorder: each entry is stamped with
/// the simulated instant it was emitted, and [`ClusterSim::replay_recorder`]
/// merges the logs in `(time, shard, index)` order — a total order that is
/// identical for any worker count — and replays them into one [`Recorder`].
/// Cross-shard joins (replication key → trace id) resolve during replay:
/// registration on the primary precedes any replica-side use by at least
/// one network lookahead of simulated time, so the merge order is always
/// registration-first.
struct PartTrace {
    log: Vec<(SimTime, TraceOp)>,
    /// `(osd, token)` → (trace ref, submit time) for in-flight store I/O —
    /// submitted and completed on the same shard.
    io_trace: HashMap<(usize, u64), (TraceRef, SimTime)>,
    /// NVM nanoseconds charged by effects of the item being handled
    /// (split out of the service span).
    pending_nvm: u64,
}

impl PartTrace {
    fn new() -> PartTrace {
        PartTrace {
            log: Vec::new(),
            io_trace: HashMap::new(),
            pending_nvm: 0,
        }
    }
}

#[derive(Default)]
struct RtcGate {
    busy: bool,
    deferred: std::collections::VecDeque<Ev>,
}

/// One outstanding client operation.
struct Pending {
    is_write: bool,
    issued: SimTime,
    /// Attempt number of the most recent transmission (1-based). A timeout
    /// event only acts when its attempt matches, so stale timers are inert.
    attempt: u32,
    /// The request itself, kept when retries or history checking need it.
    req: Option<ClientReq>,
    /// Checksum-mismatch replies seen for this op. A non-zero count makes
    /// the retransmission rotate the read through the acting set instead of
    /// re-hitting the primary's rotten copy (redirect-on-corruption).
    csum_redirects: u32,
}

struct ConnState {
    id: ClientId,
    thread: ThreadId,
    workload: Box<dyn ConnWorkload>,
    outstanding: HashMap<u64, Pending>,
    next_op: u64,
    exhausted: bool,
}

/// Aggregated results of one measured window.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured wall-clock (simulated) duration.
    pub duration: SimDuration,
    /// Completed writes (and creates) in the window.
    pub writes_done: u64,
    /// Completed reads in the window.
    pub reads_done: u64,
    /// Write IOPS.
    pub write_iops: f64,
    /// Read IOPS.
    pub read_iops: f64,
    /// Write latency summary (mean / p50 / p95 / p99 / p99.9).
    pub write_lat: LatSummary,
    /// Read latency summary (mean / p50 / p95 / p99 / p99.9).
    pub read_lat: LatSummary,
    /// CPU usage per storage node (% of one core, paper convention).
    pub node_cpu_pct: Vec<f64>,
    /// CPU usage per stage tag across the cluster.
    pub tag_cpu_pct: BTreeMap<&'static str, f64>,
    /// CPU usage per thread class across the cluster.
    pub class_cpu_pct: BTreeMap<&'static str, f64>,
    /// Context switches charged in the window.
    pub context_switches: u64,
    /// Scheduler work items executed in the window (DES events that ran a
    /// handler) — the denominator for wall-clock events/sec.
    pub events_processed: u64,
    /// Aggregated backend store statistics (WAF).
    pub store: StoreStats,
    /// Aggregated device statistics.
    pub device: DeviceStats,
    /// Total NVM bytes written (operation logs).
    pub nvm_bytes: u64,
    /// Forced synchronous flushes because NVM filled up.
    pub nvm_full_stalls: u64,
    /// Client operations surfaced as errors (retry budget exhausted or an
    /// error reply under fault injection).
    pub client_errors: u64,
    /// Recovery pushes sent by all OSDs (log replay and backfill).
    pub recovery_pushes: u64,
    /// Bytes pushed by full-object backfill across all OSDs.
    pub backfill_bytes: u64,
    /// Recovery pushes deferred by the backfill throttle across all OSDs.
    pub backfill_queued: u64,
    /// Simulated time OSDs spent in throttled backfill windows (summed).
    pub backfill_throttled_nanos: u64,
    /// Rejoins the monitor's flap dampening refused.
    pub flaps_damped: u64,
    /// Objects still known missing on some peer at the end of the window
    /// (outstanding recovery work; zero once the cluster healed).
    pub degraded_objects: u64,
    /// Largest pending-event population the scheduler's queue reached over
    /// the whole run (cold-start sizing signal for the timing wheel).
    pub queue_high_water: u64,
    /// Scrub rounds completed across all OSDs.
    pub scrubs_completed: u64,
    /// Replica inconsistencies scrub comparison flagged (bad copies).
    pub scrub_errors_found: u64,
    /// Flagged inconsistencies repaired (self-heal fetches + peer pushes).
    pub scrub_errors_repaired: u64,
    /// Bytes deep scrub read back and re-verified.
    pub scrub_bytes: u64,
    /// Simulated time deep-scrub starts spent throttled behind the shared
    /// backfill byte budget (summed over OSDs).
    pub scrub_throttled_nanos: u64,
    /// Client reads the storage read path rejected with a checksum
    /// mismatch (each one triggers read-repair on the serving OSD).
    pub read_checksum_errors: u64,
    /// Per-component latency attribution (present when tracing is on).
    /// Excluded from determinism fingerprints: it is derived observational
    /// data, not simulation state.
    pub attribution: Option<AttributionReport>,
}

impl SimReport {
    /// Total client IOPS.
    pub fn total_iops(&self) -> f64 {
        self.write_iops + self.read_iops
    }

    /// Mean CPU usage per node.
    pub fn mean_node_cpu(&self) -> f64 {
        if self.node_cpu_pct.is_empty() {
            0.0
        } else {
            self.node_cpu_pct.iter().sum::<f64>() / self.node_cpu_pct.len() as f64
        }
    }
}

struct World {
    /// Which domain this part handles: 0 = clients + monitor + driver,
    /// `1 + n` = storage node `n`. The engine routes every event to the
    /// part owning its target thread, so each part only ever touches the
    /// state it owns; the remaining fields are immutable topology clones.
    part: u32,
    mode: PipelineMode,
    relay: bool,
    /// Proposed-system event-driven messenger (cheaper MP).
    lean: bool,
    costs: CostModel,
    /// This part's view of the cluster map. Part 0 (the monitor's part)
    /// installs new epochs directly; storage parts converge through the
    /// `MapUpdate` inputs the monitor broadcasts (monotone by epoch).
    map: OsdMap,
    /// Sparse, globally indexed: `Some` only for the OSDs this part owns.
    osds: Vec<Option<Osd>>,
    threads: Vec<OsdThreads>,
    /// Part 0 only (client events execute there); empty elsewhere.
    conns: Vec<ConnState>,
    /// Client thread per connection, cloned into every part so storage
    /// parts can address replies without touching part 0's `conns`.
    conn_threads: Vec<ThreadId>,
    /// Egress link per storage node, plus one shared client-side link.
    /// Every part holds the full vector but only drives its own entry
    /// (node egress for storage parts, the client link for part 0).
    links: Vec<Link>,
    /// Minimum latency a cross-domain control-plane send must pay so it
    /// never lands inside the engine's conservative lookahead window
    /// (equals the link latency the data plane already pays).
    net_hold: SimDuration,
    io_wait: HashMap<(usize, u64), usize>,
    /// OSDs that have failed (their events are dropped). Globally indexed;
    /// only the slots of this part's own OSDs are ever written.
    dead: Vec<bool>,
    /// Run-to-completion gating: a busy RTC thread defers new client
    /// requests until the in-flight operation replies (paper §III-B).
    rtc_gate: HashMap<ThreadId, RtcGate>,
    write_lat: LatencyRecorder,
    read_lat: LatencyRecorder,
    writes_done: u64,
    reads_done: u64,
    queue_depth: usize,
    pacing: Option<SimDuration>,
    flush_sweep: SimDuration,
    pg_count: u32,
    /// The fault plan for this run (empty = clean run, zero overhead).
    /// Stateless queries — cloning one per part changes nothing.
    faults: FaultPlan,
    /// The monitor: authoritative map plus heartbeat bookkeeping. Real on
    /// part 0, an inert placeholder elsewhere.
    monitor: Monitor,
    /// Client retry policy; `None` = legacy wait-forever client.
    retry: Option<RetryPolicy>,
    /// Heartbeat emission period, when detection is armed.
    heartbeat_period: Option<SimDuration>,
    /// Pending torn-tail flag per crashed OSD, applied at restart.
    crash_torn: Vec<bool>,
    /// Scheduled admin map mutations, indexed by `Ev::Churn`.
    churn: Vec<ChurnOp>,
    /// Safety-invariant checker, when armed.
    checker: Option<HistoryChecker>,
    client_errors: u64,
    /// Reusable effect buffer: `Osd::handle_into` appends here and
    /// `apply_effects` drains it, so the per-event `Vec` allocation the
    /// old `handle()` return paid is gone from the hot loop.
    fx_scratch: Vec<OsdEffect>,
    /// Interned write payloads keyed by `(fill, len)`. Workload generators
    /// produce constant-fill buffers, so identical ops can share one
    /// allocation (a `Payload` clone is a refcount bump) instead of paying
    /// a fresh memset + copy per issued write.
    payload_cache: HashMap<(u8, u64), rablock_storage::Payload>,
    /// Per-op span tracing; `None` when disabled (the common case).
    trace: Option<Box<PartTrace>>,
    /// Background scrub cadence (`None`: scrubbing off).
    scrub_interval: Option<SimDuration>,
    /// Every Nth scrub round reads and verifies data (0: never deep).
    scrub_deep_every: u64,
}

impl World {
    /// The given OSD, which must be owned by this part.
    fn osd(&self, i: usize) -> &Osd {
        self.osds[i].as_ref().unwrap_or_else(|| {
            panic!(
                "osd{i} not owned by part {} (event routed to wrong domain)",
                self.part
            )
        })
    }

    /// The given OSD, mutably; must be owned by this part.
    fn osd_mut(&mut self, i: usize) -> &mut Osd {
        self.osds[i]
            .as_mut()
            .expect("OSD not owned by this part (event routed to wrong domain)")
    }

    /// Runs one OSD input through the reusable effect scratch buffer.
    /// `cur` is the trace ref the input belongs to (span attribution for
    /// the effects it emits); `None` when untraced or tracing is off.
    fn handle_with_scratch(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        thread: ThreadId,
        osd: usize,
        input: OsdInput,
        flush_batch: bool,
        cur: Option<TraceRef>,
    ) {
        let mut fx = std::mem::take(&mut self.fx_scratch);
        fx.clear();
        self.osd_mut(osd).handle_into(input, &mut fx);
        self.apply_effects(ctx, thread, osd, &mut fx, flush_batch, cur);
        self.fx_scratch = fx;
    }

    // ---- tracing helpers ---------------------------------------------
    //
    // Everything below is purely observational: trace refs are derived
    // from message content the handlers already carry (client id + op id
    // pack into a `TraceId`; replication sub-operations keep their
    // `(primary, seq)` wire key as a symbolic ref that the post-run
    // replay joins back to the parent op). No wire format changes, no
    // extra events, no RNG draws — with `self.trace == None` every
    // helper is a cheap no-op, which is what keeps fingerprints
    // byte-identical tracing on or off.

    /// Trace id of a client op: connections map 1:1 to `ClientId`.
    fn tid_of(client: ClientId, op: OpId) -> TraceId {
        TraceId::from_conn_op(client.0, op.0)
    }

    /// Appends one op to this part's trace log (no-op when tracing is off).
    fn trace_log(&mut self, at: SimTime, op: TraceOp) {
        if let Some(tr) = self.trace.as_mut() {
            tr.log.push((at, op));
        }
    }

    /// The trace ref a replicated-write sub-message belongs to.
    /// `Repop`/`RepopNvm` are keyed by the *sender* (the primary);
    /// acks are keyed by the *receiver* (also the primary). Replay
    /// resolves the key; an unregistered key simply drops the span, the
    /// same way the old inline lookup returned `None`.
    fn trace_of_peer_msg(&self, primary_osd: u32, from: OsdId, msg: &PeerMsg) -> Option<TraceRef> {
        self.trace.as_ref()?;
        match msg {
            PeerMsg::Repop { seq, .. } | PeerMsg::RepopNvm { seq, .. } => {
                Some(TraceRef::Rep(from.0, *seq))
            }
            PeerMsg::RepAck { seq, .. } | PeerMsg::RepNack { seq, .. } => {
                Some(TraceRef::Rep(primary_osd, *seq))
            }
            _ => None,
        }
    }

    /// Classifies a store token back to the client op it serves.
    fn trace_of_store_op(&self, op: StoreTokenOp) -> Option<TraceRef> {
        self.trace.as_ref()?;
        match op {
            StoreTokenOp::PrimaryWrite { client, op } | StoreTokenOp::Read { client, op } => {
                Some(TraceRef::Tid(Self::tid_of(client, op)))
            }
            StoreTokenOp::ReplicaPersist { primary, seq } => Some(TraceRef::Rep(primary.0, seq)),
            StoreTokenOp::Flush | StoreTokenOp::Background => None,
        }
    }

    /// Trace ref of the op behind a pending store I/O token, if any.
    fn trace_of_token(&self, osd: usize, token: u64) -> Option<TraceRef> {
        self.osd(osd)
            .store_token_op(token)
            .and_then(|op| self.trace_of_store_op(op))
    }

    /// Resolves the trace ref an OSD input belongs to, *before* the input
    /// is handled (the lookups consult OSD state the handler consumes).
    fn trace_of_input(&self, osd: usize, input: &OsdInput) -> Option<TraceRef> {
        self.trace.as_ref()?;
        match input {
            OsdInput::Client { from, req } => Some(TraceRef::Tid(Self::tid_of(*from, req.op()))),
            OsdInput::Peer { from, msg } => self.trace_of_peer_msg(self.osd(osd).id.0, *from, msg),
            OsdInput::StoreDurable { token } => self.trace_of_token(osd, *token),
            OsdInput::ReadFromStore { token } => self
                .osd(osd)
                .deferred_read_op(*token)
                .map(|(c, o)| TraceRef::Tid(Self::tid_of(c, o))),
            OsdInput::SubmitDeferred { token } => self
                .osd(osd)
                .deferred_submit_op(*token)
                .and_then(|op| self.trace_of_store_op(op)),
            _ => None,
        }
    }

    /// Span label for the stage an input runs in (mirrors `charge_input`).
    fn input_span_name(input: &OsdInput) -> &'static str {
        match input {
            OsdInput::Client { req, .. } => match req {
                ClientReq::Read { .. } => "rp.read",
                _ => "rp.primary",
            },
            OsdInput::Peer { msg, .. } => match msg {
                PeerMsg::Repop { .. } => "rp.replica",
                PeerMsg::RepopNvm { .. } => "rp.replica_nvm",
                PeerMsg::RepAck { .. } | PeerMsg::RepNack { .. } => "rp.ack",
                _ => "tp.recovery",
            },
            OsdInput::StoreDurable { .. } => "tp.complete",
            OsdInput::ReadFromStore { .. } => "os.read",
            OsdInput::SubmitDeferred { .. } => "os.submit",
            OsdInput::FlushGroup { .. } => "os.flush",
            _ => "osd",
        }
    }

    /// The fixed NVM-append CPU `charge_input` folds into this input, in
    /// nanoseconds (attributed to `Component::Nvm`, not `Service`).
    fn nvm_charge_of(&self, input: &OsdInput) -> u64 {
        match input {
            OsdInput::Client { req, .. }
                if matches!(req, ClientReq::Write { .. } | ClientReq::Create { .. })
                    && self.mode.decoupled() =>
            {
                self.costs.nvm_append.as_nanos()
            }
            OsdInput::Peer {
                msg: PeerMsg::RepopNvm { .. },
                ..
            } => self.costs.nvm_append.as_nanos(),
            _ => 0,
        }
    }

    /// Records the queue-wait / stage-service / NVM spans for one handled
    /// OSD input. Called after the handler ran, so `ctx.spent_so_far()`
    /// covers the item's full CPU charge.
    fn trace_osd_work(
        &mut self,
        ctx: &Ctx<'_, Ev>,
        osd: usize,
        id: TraceRef,
        name: &'static str,
        nvm_static_ns: u64,
    ) {
        let Some(tr) = self.trace.as_mut() else {
            return;
        };
        let now = ctx.now();
        let track = Track::Osd(osd as u32);
        let queued = ctx.queued_for();
        if !queued.is_zero() {
            let start = SimTime::from_nanos(now.nanos().saturating_sub(queued.as_nanos()));
            tr.log.push((
                now,
                TraceOp::Span {
                    id,
                    name: "queue",
                    track,
                    start,
                    dur: queued,
                    comp: Component::Queue,
                },
            ));
        }
        let nvm_ns = nvm_static_ns + std::mem::take(&mut tr.pending_nvm);
        let service = ctx.spent_so_far().as_nanos().saturating_sub(nvm_ns);
        tr.log.push((
            now,
            TraceOp::Span {
                id,
                name,
                track,
                start: now,
                dur: SimDuration::nanos(service),
                comp: Component::Service,
            },
        ));
        if nvm_ns > 0 {
            tr.log.push((
                now,
                TraceOp::Span {
                    id,
                    name: "nvm.append",
                    track,
                    start: now,
                    dur: SimDuration::nanos(nvm_ns),
                    comp: Component::Nvm,
                },
            ));
        }
    }

    /// Records queue-wait plus messenger CPU for a relay-thread hop.
    fn trace_relay_work(
        &mut self,
        ctx: &Ctx<'_, Ev>,
        osd: usize,
        id: TraceRef,
        name: &'static str,
    ) {
        let Some(tr) = self.trace.as_mut() else {
            return;
        };
        let now = ctx.now();
        let track = Track::Osd(osd as u32);
        let queued = ctx.queued_for();
        if !queued.is_zero() {
            let start = SimTime::from_nanos(now.nanos().saturating_sub(queued.as_nanos()));
            tr.log.push((
                now,
                TraceOp::Span {
                    id,
                    name: "queue",
                    track,
                    start,
                    dur: queued,
                    comp: Component::Queue,
                },
            ));
        }
        tr.log.push((
            now,
            TraceOp::Span {
                id,
                name,
                track,
                start: now,
                dur: ctx.spent_so_far(),
                comp: Component::Service,
            },
        ));
    }

    /// Records a network-hop span (message in flight for `delay` from
    /// `at`); `log_at` is the emitting event's own instant, which orders
    /// the entry in the replay merge.
    fn trace_net(
        &mut self,
        id: TraceRef,
        name: &'static str,
        track: Track,
        at: SimTime,
        delay: SimDuration,
        log_at: SimTime,
    ) {
        self.trace_log(
            log_at,
            TraceOp::Span {
                id,
                name,
                track,
                start: at,
                dur: delay,
                comp: Component::Network,
            },
        );
    }

    /// Joins an outgoing `Repop`/`RepopNvm` to its parent op so the
    /// replay can resolve replica-side and ack-side refs. The sender's
    /// part logs the registration at send time; any consumer of the key
    /// runs at least one network lookahead later in simulated time, so
    /// the replay merge always sees the registration first.
    fn trace_register_rep(
        &mut self,
        ctx: &Ctx<'_, Ev>,
        osd: usize,
        msg: &PeerMsg,
        cur: Option<TraceRef>,
    ) {
        if self.trace.is_none() {
            return;
        }
        let primary = self.osd(osd).id.0;
        let Some(id) = cur else {
            return;
        };
        if let PeerMsg::Repop { seq, .. } | PeerMsg::RepopNvm { seq, .. } = msg {
            self.trace_log(
                ctx.now(),
                TraceOp::RegisterRep {
                    primary,
                    seq: *seq,
                    id,
                },
            );
        }
    }

    /// One shared allocation per distinct `(fill, len)` payload pattern.
    fn intern_payload(&mut self, fill: u8, len: u64) -> rablock_storage::Payload {
        self.payload_cache
            .entry((fill, len))
            .or_insert_with(|| vec![fill; len as usize].into())
            .clone()
    }

    fn frontend_thread(&self, osd: usize, conn_hint: u64) -> ThreadId {
        let t = &self.threads[osd].msgr;
        t[(conn_hint as usize) % t.len()]
    }

    fn logic_thread(&self, osd: usize, group: GroupId) -> ThreadId {
        let t = &self.threads[osd].logic;
        t[group.0 as usize % t.len()]
    }

    fn flusher_thread(&self, osd: usize, hint: u64) -> ThreadId {
        let t = &self.threads[osd].flusher;
        if t.is_empty() {
            self.logic_thread(osd, GroupId(hint as u32 % self.pg_count))
        } else {
            t[hint as usize % t.len()]
        }
    }

    fn net_delay(&mut self, from_node: usize, now: SimTime, bytes: u64) -> SimDuration {
        let arrive = self.links[from_node].transfer(now, bytes);
        arrive.duration_since(now)
    }

    fn client_link(&self) -> usize {
        self.links.len() - 1
    }

    /// Pseudo-node index of the client side in partition queries. Equal to
    /// the client link index (one past the last storage node).
    fn client_node(&self) -> usize {
        self.client_link()
    }

    /// Queries the fault plan for one message's fate. Returns `None` when
    /// the message is dropped, otherwise `(extra_delay, Some(dup_gap))` when
    /// a duplicate must also be delivered `dup_gap` after the original.
    fn fate(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        link: usize,
        src: usize,
        dst: usize,
    ) -> Option<(SimDuration, Option<SimDuration>)> {
        if self.faults.is_empty() {
            return Some((SimDuration::ZERO, None));
        }
        let f = self
            .faults
            .message_fate(link, src, dst, ctx.now(), ctx.rng());
        if f.dropped {
            return None;
        }
        Some((f.extra_delay, f.duplicated.then_some(f.dup_gap)))
    }

    /// Publishes a new map: the monitor part's routing view changes and
    /// every OSD receives a `MapUpdate` one network hop later. Map
    /// distribution is the monitor's control plane and is modelled as
    /// reliable (data-plane faults come from the plan's link faults on
    /// OSD/client traffic). Liveness is the *receiving* part's business:
    /// a dead OSD's `OsdIn` handler drops the update, so the monitor
    /// part never needs another part's `dead` flags.
    fn install_map(&mut self, ctx: &mut Ctx<'_, Ev>, map: OsdMap) {
        self.map = map;
        for peer in 0..self.osds.len() {
            let t = self.logic_thread(peer, GroupId(0));
            let input = OsdInput::MapUpdate(self.map.clone());
            ctx.send_after(
                t,
                Ev::OsdIn {
                    osd: peer,
                    input,
                    charge_mp: None,
                },
                self.net_hold,
            );
        }
    }

    /// Dispatches an input to an OSD's logic thread.
    fn dispatch_logic(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        osd: usize,
        group_hint: GroupId,
        input: OsdInput,
        charge_mp: Option<u64>,
        delay: SimDuration,
    ) {
        let thread = self.logic_thread(osd, group_hint);
        ctx.send_after(
            thread,
            Ev::OsdIn {
                osd,
                input,
                charge_mp,
            },
            delay,
        );
    }

    /// Dispatches an incoming peer message to the right lane: recovery
    /// traffic (peering, pushes, backfill) rides the low-priority flusher
    /// threads under PTC so foreground IOPS degrade gracefully, everything
    /// else goes to the group's logic thread.
    fn dispatch_peer(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        osd: usize,
        from: OsdId,
        msg: PeerMsg,
        charge_mp: Option<u64>,
        delay: SimDuration,
    ) {
        let group = msg.group();
        let thread = if self.mode.prioritized() && msg.is_recovery() {
            self.flusher_thread(osd, group.0 as u64)
        } else {
            self.logic_thread(osd, group)
        };
        ctx.send_after(
            thread,
            Ev::OsdIn {
                osd,
                input: OsdInput::Peer { from, msg },
                charge_mp,
            },
            delay,
        );
    }

    #[allow(dead_code)] // kept: useful for future routing policies
    fn group_of_input(input: &OsdInput) -> GroupId {
        match input {
            OsdInput::Client { req, .. } => req.oid().group(),
            OsdInput::Peer { msg, .. } => msg.group(),
            OsdInput::FlushGroup { group } => *group,
            _ => GroupId(0),
        }
    }

    /// Charges stage CPU for processing `input` on the current thread.
    fn charge_input(&self, ctx: &mut Ctx<'_, Ev>, input: &OsdInput, charge_mp: Option<u64>) {
        let c = &self.costs;
        if let Some(bytes) = charge_mp {
            let lean = self.lean;
            ctx.spend(MP, c.recv(bytes, lean));
        }
        match input {
            OsdInput::Client { req, .. } => match req {
                ClientReq::Write { .. } | ClientReq::Create { .. } => {
                    ctx.spend(RP, c.rp_primary);
                    if self.mode.null_transaction() {
                        // MP+RP only.
                    } else if self.mode.decoupled() {
                        ctx.spend(RP, c.nvm_append);
                    } else if self.mode.prioritized() {
                        // PTC: TP/OS charged when the non-priority thread
                        // runs the deferred submit.
                    } else {
                        ctx.spend(TP, c.tp);
                        if !self.mode.null_store() {
                            let submit = if self.mode.lsm_backend() {
                                c.os_lsm_submit
                            } else {
                                c.os_cos_submit
                            };
                            ctx.spend(OS, submit);
                        }
                    }
                }
                ClientReq::Read { .. } => {
                    if self.mode.null_transaction() {
                        // immediate reply
                    } else if self.mode.decoupled() {
                        ctx.spend(RP, c.log_read);
                    } else if self.mode.prioritized() {
                        ctx.spend(RP, c.wake);
                    } else {
                        ctx.spend(TP, c.tp);
                        ctx.spend(OS, c.os_read);
                    }
                }
            },
            OsdInput::Peer { msg, .. } => match msg {
                PeerMsg::Repop { .. } => {
                    ctx.spend(RP, c.rp_replica);
                    if !self.mode.null_transaction()
                        && !self.mode.null_store()
                        && !self.mode.prioritized()
                    {
                        ctx.spend(TP, c.tp);
                        let submit = if self.mode.lsm_backend() {
                            c.os_lsm_submit
                        } else {
                            c.os_cos_submit
                        };
                        ctx.spend(OS, submit);
                    }
                }
                PeerMsg::RepopNvm { .. } => {
                    ctx.spend(RP, c.rp_replica);
                    ctx.spend(RP, c.nvm_append);
                }
                PeerMsg::RepAck { .. } | PeerMsg::RepNack { .. } => ctx.spend(RP, c.tp_complete),
                PeerMsg::PullLog { .. }
                | PeerMsg::LogRecords { .. }
                | PeerMsg::Backfill { .. }
                | PeerMsg::PgQuery { .. }
                | PeerMsg::PgInfo { .. }
                | PeerMsg::PushObject { .. }
                | PeerMsg::PushAck { .. }
                | PeerMsg::ScrubRequest { .. }
                | PeerMsg::ScrubMap { .. }
                | PeerMsg::ScrubFetch { .. } => ctx.spend(TP, c.tp),
            },
            OsdInput::StoreDurable { .. } => ctx.spend(TP, c.tp_complete),
            OsdInput::FlushGroup { .. } => {
                // Per-record costs are charged via the StoreIo trace below.
            }
            OsdInput::ReadFromStore { .. } => ctx.spend(OS, c.os_read),
            OsdInput::SubmitDeferred { .. } => {
                ctx.spend(TP, c.tp);
                let submit = if self.mode.lsm_backend() {
                    c.os_lsm_submit
                } else {
                    c.os_cos_submit
                };
                ctx.spend(OS, submit);
            }
            OsdInput::ScrubStart { .. } => ctx.spend(TP, c.tp),
            OsdInput::MaintStep => {}
            OsdInput::HeartbeatTick => ctx.spend(RP, c.wake),
            OsdInput::MapUpdate(_) => ctx.spend(TP, c.tp),
        }
    }

    fn apply_effects(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        thread: ThreadId,
        osd: usize,
        effects: &mut Vec<OsdEffect>,
        flush_batch: bool,
        cur: Option<TraceRef>,
    ) {
        let node = self.threads[osd].node;
        for effect in effects.drain(..) {
            match effect {
                OsdEffect::SendPeer { to, msg } => {
                    // Register replication sub-ops while the originating
                    // op's trace ref is in hand (both branches need it: the
                    // relay path re-resolves the ref at MsgrPeerOut time).
                    self.trace_register_rep(ctx, osd, &msg, cur);
                    let off_priority =
                        self.mode.prioritized() && !self.threads[osd].msgr.contains(&thread);
                    if self.relay || off_priority {
                        // Hand to a messenger/priority thread for the send
                        // side (§IV-B: sends go through the owning thread).
                        let t = self.frontend_thread(osd, to.0 as u64);
                        ctx.send(t, Ev::MsgrPeerOut { osd, to, msg });
                    } else {
                        ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                        let dest = to.0 as usize;
                        let dest_node = self.threads[dest].node;
                        let Some((extra, dup)) = self.fate(ctx, node, node, dest_node) else {
                            continue;
                        };
                        let bytes = msg.wire_bytes();
                        let delay = self.net_delay(node, ctx.now(), bytes) + extra;
                        // Outgoing direction: replication ops key on the
                        // sender (this OSD), acks on the receiver (`to`).
                        if let Some(id) = self.trace_of_peer_msg(to.0, self.osd(osd).id, &msg) {
                            self.trace_net(
                                id,
                                "net.peer",
                                Track::Osd(to.0),
                                ctx.now(),
                                delay,
                                ctx.now(),
                            );
                        }
                        let from = self.osd(osd).id;
                        if let Some(gap) = dup {
                            self.dispatch_peer(
                                ctx,
                                dest,
                                from,
                                msg.clone(),
                                Some(bytes),
                                delay + gap,
                            );
                        }
                        self.dispatch_peer(ctx, dest, from, msg, Some(bytes), delay);
                    }
                }
                OsdEffect::Reply { to, msg } => {
                    if self.mode.run_to_completion() {
                        if let Some(gate) = self.rtc_gate.get_mut(&thread) {
                            gate.busy = false;
                            if let Some(ev) = gate.deferred.pop_front() {
                                ctx.send(thread, ev);
                            }
                        }
                    }
                    let off_priority =
                        self.mode.prioritized() && !self.threads[osd].msgr.contains(&thread);
                    if self.relay || off_priority {
                        let t = self.frontend_thread(osd, to.0 as u64);
                        ctx.send(
                            t,
                            Ev::MsgrReplyOut {
                                osd,
                                to,
                                reply: msg,
                            },
                        );
                    } else {
                        ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                        let client_node = self.client_node();
                        let Some((extra, dup)) = self.fate(ctx, node, node, client_node) else {
                            continue;
                        };
                        let delay = self.net_delay(node, ctx.now(), msg.wire_bytes()) + extra;
                        let conn = to.0 as usize;
                        if self.trace.is_some() {
                            self.trace_net(
                                TraceRef::Tid(Self::tid_of(to, msg.op())),
                                "net.reply",
                                Track::Client(to.0),
                                ctx.now(),
                                delay,
                                ctx.now(),
                            );
                        }
                        let ct = self.conn_threads[conn];
                        if let Some(gap) = dup {
                            let reply = msg.clone();
                            ctx.send_after(ct, Ev::ClientDone { conn, reply }, delay + gap);
                        }
                        ctx.send_after(ct, Ev::ClientDone { conn, reply: msg }, delay);
                    }
                }
                OsdEffect::StoreIo { token, trace, wait } => {
                    // Stamp the device-queue span open: closed by the last
                    // `IoDone` for the token. The estimate charges device
                    // time from the moment the submitting item's CPU is
                    // spent (I/O overlaps any later CPU in the same item).
                    if self.trace.is_some() && wait {
                        if let Some(id) = self.trace_of_token(osd, token) {
                            let at = SimTime::from_nanos(
                                ctx.now().nanos() + ctx.spent_so_far().as_nanos(),
                            );
                            if let Some(tr) = self.trace.as_mut() {
                                tr.io_trace.insert((osd, token), (id, at));
                            }
                        }
                    }
                    let dev = self.threads[osd].device;
                    if !wait {
                        // Background work (compaction, write-back): throttle
                        // the I/Os so they interleave with foreground ops,
                        // as RocksDB's rate limiter does.
                        let ios: Vec<_> = trace
                            .into_iter()
                            .filter(|io| !matches!(io.kind, TraceKind::Flush))
                            .collect();
                        if !ios.is_empty() {
                            ctx.send(thread, Ev::BgIo { osd, ios, pos: 0 });
                        }
                        continue;
                    }
                    let mut ios = 0usize;
                    for io in &trace {
                        let req = match io.kind {
                            TraceKind::Read => IoRequest::read(io.bytes),
                            TraceKind::Write => IoRequest::write(io.bytes),
                            TraceKind::Flush => continue,
                        };
                        ios += 1;
                        ctx.submit_io(dev, req, thread, Ev::IoDone { osd, token });
                        if flush_batch && io.kind == TraceKind::Write {
                            // Amortized per-record store CPU for batch flushes.
                            ctx.spend(OS, self.costs.os_cos_submit);
                        }
                    }
                    if ios == 0 {
                        ctx.send(thread, Ev::IoDone { osd, token });
                        self.io_wait.insert((osd, token), 1);
                    } else {
                        self.io_wait.insert((osd, token), ios);
                    }
                }
                OsdEffect::NvmWritten { bytes } => {
                    let cost = self.costs.nvm_per_byte * bytes;
                    ctx.spend(RP, cost);
                    if let Some(tr) = self.trace.as_mut() {
                        // Folded out of the item's service span into the
                        // Nvm component by `trace_osd_work`.
                        tr.pending_nvm += cost.as_nanos();
                    }
                }
                OsdEffect::WakeFlush { group } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, group.0 as u64);
                    ctx.send(
                        t,
                        Ev::OsdIn {
                            osd,
                            input: OsdInput::FlushGroup { group },
                            charge_mp: None,
                        },
                    );
                }
                OsdEffect::WakeRead { token } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, token);
                    ctx.send(
                        t,
                        Ev::OsdIn {
                            osd,
                            input: OsdInput::ReadFromStore { token },
                            charge_mp: None,
                        },
                    );
                }
                OsdEffect::WakeSubmit { token } => {
                    ctx.spend(RP, self.costs.wake);
                    let t = self.flusher_thread(osd, token);
                    ctx.send(
                        t,
                        Ev::OsdIn {
                            osd,
                            input: OsdInput::SubmitDeferred { token },
                            charge_mp: None,
                        },
                    );
                }
                OsdEffect::WakeMaintenance => {
                    let t = self.threads[osd].maint;
                    ctx.send(
                        t,
                        Ev::OsdIn {
                            osd,
                            input: OsdInput::MaintStep,
                            charge_mp: None,
                        },
                    );
                }
                OsdEffect::Heartbeat => {
                    let beacon = MonMsg::Heartbeat {
                        osd: self.osd(osd).id,
                    };
                    ctx.spend(MP, self.costs.send(beacon.wire_bytes(), self.lean));
                    // Heartbeats cross the node's egress link and can be cut
                    // off from the monitor by a `MON_NODE` partition.
                    if let Some((extra, dup)) = self.fate(ctx, node, node, MON_NODE) {
                        let delay = self.net_delay(node, ctx.now(), beacon.wire_bytes()) + extra;
                        let mt = self.conn_threads[0];
                        ctx.send_after(mt, Ev::MonHeartbeat { osd }, delay);
                        if let Some(gap) = dup {
                            ctx.send_after(mt, Ev::MonHeartbeat { osd }, delay + gap);
                        }
                    }
                }
                OsdEffect::Maintained { bytes, .. } => {
                    ctx.spend(MT, self.costs.maintenance(bytes));
                }
            }
        }
    }

    fn issue_client_ops(&mut self, ctx: &mut Ctx<'_, Ev>, conn: usize) {
        loop {
            let open_loop = self.pacing.is_some();
            let budget = if open_loop {
                1
            } else {
                self.queue_depth
                    .saturating_sub(self.conns[conn].outstanding.len())
            };
            if budget == 0 || self.conns[conn].exhausted {
                return;
            }
            let item = {
                let c = &mut self.conns[conn];
                c.workload.next(ctx.rng())
            };
            let Some(item) = item else {
                self.conns[conn].exhausted = true;
                return;
            };
            let op = {
                let c = &mut self.conns[conn];
                let op = OpId(c.next_op);
                c.next_op += 1;
                op
            };
            let (req, is_write) = match item {
                WorkItem::Write {
                    oid,
                    offset,
                    len,
                    fill,
                } => (
                    ClientReq::Write {
                        op,
                        oid,
                        offset,
                        data: self.intern_payload(fill, len),
                    },
                    true,
                ),
                WorkItem::Read { oid, offset, len } => (
                    ClientReq::Read {
                        op,
                        oid,
                        offset,
                        len,
                    },
                    false,
                ),
            };
            let op_raw = req.op().0;
            if let Some(checker) = self.checker.as_mut() {
                if let ClientReq::Write {
                    oid, offset, data, ..
                } = &req
                {
                    let fill = data.first().copied().unwrap_or(0);
                    let id = self.conns[conn].id;
                    checker.write_issued(id, OpId(op_raw), *oid, *offset, data.len() as u64, fill);
                }
            }
            let keep_req = self.retry.is_some() || self.checker.is_some();
            let pending = Pending {
                is_write,
                issued: ctx.now(),
                attempt: 1,
                req: keep_req.then(|| req.clone()),
                csum_redirects: 0,
            };
            self.conns[conn].outstanding.insert(op_raw, pending);
            let begin_id = Self::tid_of(ClientId(conn as u32), OpId(op_raw));
            self.trace_log(
                ctx.now(),
                TraceOp::Begin {
                    id: begin_id,
                    is_write,
                },
            );
            if let Some(r) = self.retry {
                let thread = self.conns[conn].thread;
                let ev = Ev::ClientTimeout {
                    conn,
                    op: op_raw,
                    attempt: 1,
                };
                ctx.send_after(thread, ev, SimDuration::nanos(r.timeout_nanos));
            }
            self.send_client_req(ctx, conn, req, SimDuration::ZERO, 0);
            if open_loop {
                let pace = self.pacing.expect("open loop");
                let thread = self.conns[conn].thread;
                ctx.send_after(thread, Ev::ClientKick { conn }, pace);
                return;
            }
        }
    }

    /// Transmits `req` from `conn` toward the group's current primary,
    /// paying client CPU, link transfer and the plan's message fates.
    /// `hold` delays the transmission itself (retry backoff). A dropped
    /// message simply never arrives — the op stays outstanding until its
    /// retry timer fires (or forever, without a retry policy).
    fn send_client_req(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        conn: usize,
        req: ClientReq,
        hold: SimDuration,
        redirect: u32,
    ) {
        let group = req.oid().group();
        // Reads that bounced off a rotten replica rotate through the acting
        // set (redirect > 0) instead of re-reading the same damaged copy;
        // writes and first transmissions always target the primary.
        let target = if redirect > 0 && matches!(req, ClientReq::Read { .. }) {
            let set = self.map.acting_set(group);
            (!set.is_empty()).then(|| set[redirect as usize % set.len()])
        } else {
            self.map.try_primary(group)
        };
        let Some(primary) = target else {
            // Every OSD that could serve the group is down or weighted out:
            // a send can race a map change, so this must not panic. Surface
            // a retryable Degraded error — with a retry policy the op is
            // re-queued until a survivor map arrives, without one it is
            // accounted as a client error.
            let reply = ClientReply::Error {
                op: req.op(),
                error: StoreError::Degraded,
            };
            let thread = self.conns[conn].thread;
            ctx.send_after(
                thread,
                Ev::ClientDone { conn, reply },
                hold + SimDuration::micros(1),
            );
            return;
        };
        let osd = primary.0 as usize;
        let bytes = req.wire_bytes();
        ctx.spend(CLIENT, SimDuration::micros(2));
        let client_link = self.client_link();
        let client_node = self.client_node();
        let dest_node = self.threads[osd].node;
        let Some((extra, dup)) = self.fate(ctx, client_link, client_node, dest_node) else {
            return;
        };
        let delay = {
            let arrive = self.links[client_link].transfer(ctx.now(), bytes);
            arrive.duration_since(ctx.now())
        } + hold
            + extra;
        let from = self.conns[conn].id;
        if self.trace.is_some() {
            let id = TraceRef::Tid(Self::tid_of(from, req.op()));
            let track = Track::Client(from.0);
            if !hold.is_zero() {
                // Retry backoff: the op sits on the client before the
                // retransmission leaves.
                self.trace_log(
                    ctx.now(),
                    TraceOp::Span {
                        id,
                        name: "retry.backoff",
                        track,
                        start: ctx.now(),
                        dur: hold,
                        comp: Component::Retry,
                    },
                );
            }
            self.trace_net(
                id,
                "net.request",
                track,
                SimTime::from_nanos(ctx.now().nanos() + hold.as_nanos()),
                delay.saturating_sub(hold),
                ctx.now(),
            );
        }
        if self.relay {
            let t = self.frontend_thread(osd, conn as u64);
            if let Some(gap) = dup {
                let req = req.clone();
                ctx.send_after(t, Ev::MsgrClientIn { osd, from, req }, delay + gap);
            }
            ctx.send_after(t, Ev::MsgrClientIn { osd, from, req }, delay);
        } else {
            // Route by group so replication acks (also routed by group)
            // return to the thread that owns the operation.
            let t = self.logic_thread(osd, group);
            if let Some(gap) = dup {
                let input = OsdInput::Client {
                    from,
                    req: req.clone(),
                };
                ctx.send_after(
                    t,
                    Ev::OsdIn {
                        osd,
                        input,
                        charge_mp: Some(bytes),
                    },
                    delay + gap,
                );
            }
            let input = OsdInput::Client { from, req };
            ctx.send_after(
                t,
                Ev::OsdIn {
                    osd,
                    input,
                    charge_mp: Some(bytes),
                },
                delay,
            );
        }
    }
}

impl rablock_sim::Handler<Ev> for World {
    fn handle(&mut self, thread: ThreadId, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::ClientKick { conn } => {
                self.issue_client_ops(ctx, conn);
            }
            Ev::ClientDone { conn, reply } => {
                ctx.spend(CLIENT, SimDuration::micros(1));
                let op = reply.op().0;
                // A reply for an op that is no longer outstanding is a
                // duplicate (retried op acked twice, or a reply that arrived
                // after the retry budget gave up): ignore it entirely
                // instead of recording it a second time.
                let Some(p) = self.conns[conn].outstanding.remove(&op) else {
                    return;
                };
                let id = self.conns[conn].id;
                match &reply {
                    ClientReply::Error { error, .. } => {
                        if matches!(error, StoreError::Degraded | StoreError::ChecksumMismatch)
                            && self.retry.is_some()
                        {
                            // Retryable rejection: put the op back; its
                            // already-armed timeout retransmits with backoff
                            // until quorum returns / a clean replica answers
                            // (or the budget runs out and surfaces the
                            // error). A checksum mismatch additionally bumps
                            // the redirect cursor so the retry reads from
                            // the next acting-set member while the rotten
                            // copy read-repairs itself in the background.
                            let mut p = p;
                            if matches!(error, StoreError::ChecksumMismatch) {
                                p.csum_redirects += 1;
                            }
                            self.conns[conn].outstanding.insert(op, p);
                            return;
                        }
                        if self.faults.is_empty() && self.retry.is_none() {
                            panic!("client observed error: {error}");
                        }
                        self.client_errors += 1;
                        // Failed op: the replay drops the trace without
                        // folding it into the attribution histograms.
                        self.trace_log(
                            ctx.now(),
                            TraceOp::Abandon {
                                id: Self::tid_of(id, OpId(op)),
                            },
                        );
                    }
                    ok => {
                        let lat = ctx.now().duration_since(p.issued);
                        if p.is_write {
                            self.write_lat.record(lat);
                            self.writes_done += 1;
                        } else {
                            self.read_lat.record(lat);
                            self.reads_done += 1;
                        }
                        self.trace_log(
                            ctx.now(),
                            TraceOp::Finish {
                                id: Self::tid_of(id, OpId(op)),
                            },
                        );
                        if let Some(checker) = self.checker.as_mut() {
                            match (ok, &p.req) {
                                (ClientReply::Done { .. }, _) if p.is_write => {
                                    checker.write_acked(id, OpId(op));
                                }
                                (
                                    ClientReply::Data { data, .. },
                                    Some(ClientReq::Read {
                                        oid, offset, len, ..
                                    }),
                                ) => {
                                    checker.read_checked(*oid, *offset, *len, data);
                                }
                                _ => {}
                            }
                        }
                    }
                }
                if self.pacing.is_none() {
                    self.issue_client_ops(ctx, conn);
                }
            }
            Ev::MsgrClientIn { osd, from, req } => {
                ctx.spend(MP, self.costs.recv(req.wire_bytes(), self.lean));
                if self.trace.is_some() {
                    let id = TraceRef::Tid(Self::tid_of(from, req.op()));
                    self.trace_relay_work(ctx, osd, id, "mp.recv");
                }
                let group = req.oid().group();
                self.dispatch_logic(
                    ctx,
                    osd,
                    group,
                    OsdInput::Client { from, req },
                    None,
                    SimDuration::ZERO,
                );
            }
            Ev::MsgrPeerIn { osd, from, msg } => {
                ctx.spend(MP, self.costs.recv(msg.wire_bytes(), self.lean));
                if let Some(id) = self.trace_of_peer_msg(self.osd(osd).id.0, from, &msg) {
                    self.trace_relay_work(ctx, osd, id, "mp.recv");
                }
                self.dispatch_peer(ctx, osd, from, msg, None, SimDuration::ZERO);
            }
            Ev::MsgrReplyOut { osd, to, reply } => {
                ctx.spend(MP, self.costs.send(reply.wire_bytes(), self.lean));
                let node = self.threads[osd].node;
                let client_node = self.client_node();
                let Some((extra, dup)) = self.fate(ctx, node, node, client_node) else {
                    return;
                };
                let delay = self.net_delay(node, ctx.now(), reply.wire_bytes()) + extra;
                if self.trace.is_some() {
                    let id = TraceRef::Tid(Self::tid_of(to, reply.op()));
                    self.trace_relay_work(ctx, osd, id, "mp.send");
                    self.trace_net(
                        id,
                        "net.reply",
                        Track::Client(to.0),
                        ctx.now(),
                        delay,
                        ctx.now(),
                    );
                }
                let conn = to.0 as usize;
                let ct = self.conn_threads[conn];
                if let Some(gap) = dup {
                    let reply = reply.clone();
                    ctx.send_after(ct, Ev::ClientDone { conn, reply }, delay + gap);
                }
                ctx.send_after(ct, Ev::ClientDone { conn, reply }, delay);
            }
            Ev::MsgrPeerOut { osd, to, msg } => {
                ctx.spend(MP, self.costs.send(msg.wire_bytes(), self.lean));
                let node = self.threads[osd].node;
                let dest = to.0 as usize;
                let dest_node = self.threads[dest].node;
                let Some((extra, dup)) = self.fate(ctx, node, node, dest_node) else {
                    return;
                };
                let bytes = msg.wire_bytes();
                let delay = self.net_delay(node, ctx.now(), bytes) + extra;
                if let Some(id) = self.trace_of_peer_msg(to.0, self.osd(osd).id, &msg) {
                    self.trace_relay_work(ctx, osd, id, "mp.send");
                    self.trace_net(
                        id,
                        "net.peer",
                        Track::Osd(to.0),
                        ctx.now(),
                        delay,
                        ctx.now(),
                    );
                }
                let t = self.frontend_thread(dest, self.osd(osd).id.0 as u64);
                let from = self.osd(osd).id;
                if let Some(gap) = dup {
                    let msg = msg.clone();
                    ctx.send_after(
                        t,
                        Ev::MsgrPeerIn {
                            osd: dest,
                            from,
                            msg,
                        },
                        delay + gap,
                    );
                }
                ctx.send_after(
                    t,
                    Ev::MsgrPeerIn {
                        osd: dest,
                        from,
                        msg,
                    },
                    delay,
                );
            }
            Ev::OsdIn {
                osd,
                input,
                charge_mp,
            } => {
                // Track the monitor's broadcasts in this part's own map
                // view (monotone by epoch) — even for dead OSDs, since the
                // part-level view stands in for "what the network knows"
                // when a restarted OSD asks for the current map.
                if let OsdInput::MapUpdate(m) = &input {
                    if m.epoch > self.map.epoch {
                        self.map = m.clone();
                    }
                }
                if self.dead[osd] {
                    return; // failed OSDs process nothing
                }
                if self.mode.run_to_completion() && matches!(input, OsdInput::Client { .. }) {
                    let gate = self.rtc_gate.entry(thread).or_default();
                    if gate.busy {
                        gate.deferred.push_back(Ev::OsdIn {
                            osd,
                            input,
                            charge_mp,
                        });
                        return;
                    }
                    gate.busy = true;
                }
                let cur = self.trace_of_input(osd, &input);
                let span_name = Self::input_span_name(&input);
                let nvm_static = if cur.is_some() {
                    self.nvm_charge_of(&input)
                } else {
                    0
                };
                if let Some(tr) = self.trace.as_mut() {
                    tr.pending_nvm = 0;
                }
                self.charge_input(ctx, &input, charge_mp);
                let flush_batch = matches!(input, OsdInput::FlushGroup { .. });
                self.handle_with_scratch(ctx, thread, osd, input, flush_batch, cur);
                if let Some(id) = cur {
                    self.trace_osd_work(ctx, osd, id, span_name, nvm_static);
                }
            }
            Ev::CrashOsd { osd, torn_tail } => {
                // Process kill only: no oracle tells the monitor. Survivors
                // and clients find out through missed heartbeats and
                // timeouts. Pending device completions for the dead process
                // are forgotten so a post-restart token cannot collide.
                self.dead[osd] = true;
                self.crash_torn[osd] = torn_tail;
                self.io_wait.retain(|&(o, _), _| o != osd);
            }
            Ev::RestartOsd { osd } => {
                if !self.dead[osd] {
                    return;
                }
                self.dead[osd] = false;
                let torn = std::mem::replace(&mut self.crash_torn[osd], false);
                let _ = self.osd_mut(osd).restart_after_crash(torn);
                // Hand the restarted OSD the monitor's current view — it is
                // usually marked down in it, so the mark-up broadcast that
                // follows its first heartbeat triggers its log pull.
                let t = self.logic_thread(osd, GroupId(0));
                let input = OsdInput::MapUpdate(self.map.clone());
                ctx.send(
                    t,
                    Ev::OsdIn {
                        osd,
                        input,
                        charge_mp: None,
                    },
                );
            }
            Ev::GraySet { device, multiplier } => {
                ctx.set_device_service_multiplier(device, multiplier);
            }
            Ev::HeartbeatTick { osd } => {
                let Some(period) = self.heartbeat_period else {
                    return;
                };
                // Keep ticking even while dead, so a restarted OSD resumes
                // beaconing (and rejoins) without driver help.
                ctx.send_after(thread, Ev::HeartbeatTick { osd }, period);
                if self.dead[osd] {
                    return;
                }
                self.charge_input(ctx, &OsdInput::HeartbeatTick, None);
                self.handle_with_scratch(ctx, thread, osd, OsdInput::HeartbeatTick, false, None);
            }
            Ev::MonHeartbeat { osd } => {
                let now = ctx.now().duration_since(SimTime::ZERO).as_nanos();
                if let Some(MonMsg::MapUpdate { map }) =
                    self.monitor.heartbeat(OsdId(osd as u32), now)
                {
                    self.install_map(ctx, map);
                }
            }
            Ev::MonSweep => {
                let Some(period) = self.heartbeat_period else {
                    return;
                };
                ctx.send_after(thread, Ev::MonSweep, period);
                let now = ctx.now().duration_since(SimTime::ZERO).as_nanos();
                if let Some(MonMsg::MapUpdate { map }) = self.monitor.check_liveness(now) {
                    self.install_map(ctx, map);
                }
            }
            Ev::Churn { idx } => {
                // An administrator reweights an OSD at the monitor: grow
                // (0 → w weaves a pre-provisioned spare in), drain (w → 0
                // hands its groups off while it stays up), or rebalance.
                let op = self.churn[idx];
                if let Some(MonMsg::MapUpdate { map }) =
                    self.monitor.admin_set_weight(OsdId(op.osd), op.weight)
                {
                    self.install_map(ctx, map);
                }
            }
            Ev::BitRot {
                osd,
                lo,
                hi,
                flips,
                media,
                seed,
            } => {
                // Media rot is physical: it lands whether or not the OSD
                // process is alive (a crashed OSD's SSD keeps decaying).
                match media {
                    RotMedia::CosData => {
                        self.osd_mut(osd).inject_data_rot(lo, hi, flips, seed);
                    }
                    RotMedia::NvmLog => {
                        self.osd_mut(osd).inject_nvm_rot(flips, seed);
                    }
                }
            }
            Ev::ScrubSweep { round } => {
                let Some(every) = self.scrub_interval else {
                    return;
                };
                ctx.send_after(thread, Ev::ScrubSweep { round: round + 1 }, every);
                let deep = self.scrub_deep_every > 0
                    && round % self.scrub_deep_every == self.scrub_deep_every - 1;
                for g in 0..self.pg_count {
                    let group = GroupId(g);
                    let Some(p) = self.map.try_primary(group) else {
                        continue;
                    };
                    let osd = p.0 as usize;
                    // Scrub is maintenance traffic: under PTC it rides the
                    // low-priority lane like the rest of recovery. The
                    // request crosses the network (the driver part does not
                    // own OSD liveness — a dead primary just drops it).
                    let t = if self.mode.prioritized() {
                        self.flusher_thread(osd, group.0 as u64)
                    } else {
                        self.logic_thread(osd, group)
                    };
                    ctx.send_after(
                        t,
                        Ev::OsdIn {
                            osd,
                            input: OsdInput::ScrubStart { group, deep },
                            charge_mp: None,
                        },
                        self.net_hold,
                    );
                }
            }
            Ev::ClientTimeout { conn, op, attempt } => {
                let Some(r) = self.retry else {
                    return;
                };
                // Only the timer of the *current* attempt may act; a reply
                // or a newer retransmission makes older timers inert.
                match self.conns[conn].outstanding.get_mut(&op) {
                    Some(p) if p.attempt == attempt => {
                        if r.should_retry(attempt) {
                            p.attempt += 1;
                        } else {
                            // Budget exhausted: surface the failure.
                            self.conns[conn].outstanding.remove(&op);
                            self.client_errors += 1;
                            self.trace_log(
                                ctx.now(),
                                TraceOp::Abandon {
                                    id: Self::tid_of(ClientId(conn as u32), OpId(op)),
                                },
                            );
                            if self.pacing.is_none() {
                                self.issue_client_ops(ctx, conn);
                            }
                            return;
                        }
                    }
                    _ => return,
                }
                let p = &self.conns[conn].outstanding[&op];
                let redirect = p.csum_redirects;
                let req = p.req.clone().expect("retrying client stores the request");
                self.trace_log(
                    ctx.now(),
                    TraceOp::Retry {
                        id: Self::tid_of(ClientId(conn as u32), OpId(op)),
                    },
                );
                let next = attempt + 1;
                let jitter = ctx.rng().unit_f64();
                let backoff = SimDuration::nanos(r.backoff_nanos(attempt, jitter));
                // Retransmit after the backoff (re-routed by the map as of
                // now — a published failover redirects the retry), then arm
                // the next attempt's timer.
                self.send_client_req(ctx, conn, req, backoff, redirect);
                let thread = self.conns[conn].thread;
                let ev = Ev::ClientTimeout {
                    conn,
                    op,
                    attempt: next,
                };
                ctx.send_after(thread, ev, backoff + SimDuration::nanos(r.timeout_nanos));
            }
            Ev::IoDone { osd, token } => {
                if self.dead[osd] {
                    return;
                }
                // Background (wait:false) I/Os also land here; only tracked
                // tokens owe a StoreDurable to the state machine.
                let Some(remaining) = self.io_wait.get_mut(&(osd, token)) else {
                    return;
                };
                *remaining -= 1;
                if *remaining == 0 {
                    self.io_wait.remove(&(osd, token));
                    // Close the device-queue span: submit → last completion.
                    let now = ctx.now();
                    let cur = if let Some(tr) = self.trace.as_mut() {
                        tr.pending_nvm = 0;
                        if let Some((id, submitted)) = tr.io_trace.remove(&(osd, token)) {
                            tr.log.push((
                                now,
                                TraceOp::Span {
                                    id,
                                    name: "device",
                                    track: Track::Osd(osd as u32),
                                    start: submitted,
                                    dur: now.saturating_since(submitted),
                                    comp: Component::Device,
                                },
                            ));
                            Some(id)
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    self.charge_input(ctx, &OsdInput::StoreDurable { token }, None);
                    self.handle_with_scratch(
                        ctx,
                        thread,
                        osd,
                        OsdInput::StoreDurable { token },
                        false,
                        cur,
                    );
                    if let Some(id) = cur {
                        self.trace_osd_work(ctx, osd, id, "tp.complete", 0);
                    }
                }
            }
            Ev::BgIo { osd, ios, pos } => {
                if self.dead[osd] {
                    return; // crashed: its queued background work evaporates
                }
                let dev = self.threads[osd].device;
                let io = ios[pos];
                let req = match io.kind {
                    TraceKind::Read => IoRequest::read(io.bytes),
                    TraceKind::Write => IoRequest::write(io.bytes),
                    TraceKind::Flush => unreachable!("filtered at enqueue"),
                };
                // Fire-and-forget: completion tokens 0 are ignored by IoDone.
                ctx.submit_io(dev, req, thread, Ev::IoDone { osd, token: 0 });
                // ~640 MB/s throttle for 64 KiB chunks.
                let delay = SimDuration::nanos(1 + io.bytes * 100_000 / (64 << 10));
                if pos + 1 < ios.len() {
                    ctx.send_after(
                        thread,
                        Ev::BgIo {
                            osd,
                            ios,
                            pos: pos + 1,
                        },
                        delay,
                    );
                }
            }
            Ev::FlushSweep { osd } => {
                // Re-arm first so the sweep survives a crash window and
                // resumes once the OSD restarts.
                ctx.send_after(thread, Ev::FlushSweep { osd }, self.flush_sweep);
                if self.dead[osd] {
                    return;
                }
                let pending = self.osd(osd).pending_groups();
                for group in pending {
                    self.handle_with_scratch(
                        ctx,
                        thread,
                        osd,
                        OsdInput::FlushGroup { group },
                        true,
                        None,
                    );
                }
            }
        }
    }
}

/// A fully wired simulated cluster.
///
/// The simulation is partitioned into `nodes + 1` engine domains: domain 0
/// holds the clients, the monitor and the driver's control events; domain
/// `1 + n` holds storage node `n` (its cores, threads, NVMe device and
/// OSDs). `parts[d]` is the handler state of domain `d`. The partition is
/// fixed at construction — [`ClusterSimConfig::shards`] only picks how many
/// OS threads execute the domains, so results are byte-identical for every
/// shard count.
pub struct ClusterSim {
    sim: Simulation<Ev>,
    /// One handler part per engine domain (see type-level docs).
    parts: Vec<World>,
    node_cores: Vec<std::ops::Range<usize>>,
    class_threads: BTreeMap<&'static str, Vec<ThreadId>>,
    osds_per_node: usize,
    osd_count: usize,
    /// Slow-op ring capacity for the replayed trace recorder.
    slow_op_ring: usize,
    /// Measurement-window start for the trace replay: `run` sets it after
    /// warmup so warmup spans do not pollute attribution.
    trace_reset_at: Option<SimTime>,
    /// Sampling cadence for the telemetry time-series (`None`: disabled).
    telemetry_window: Option<SimDuration>,
    /// Windowed samples collected during the measured phase.
    timeseries: TimeSeries,
    /// Threads belonging to each OSD (deduped), for per-OSD CPU% columns.
    osd_threads: Vec<Vec<ThreadId>>,
    /// Counter snapshots at the previous sample instant.
    sampler: SamplerState,
}

/// Snapshot of cumulative counters at the last telemetry sample, so each
/// window reports deltas. Sampling happens *between* `run_until` slices —
/// never inside the event loop — so it cannot perturb event order.
struct SamplerState {
    last: SimTime,
    writes: u64,
    reads: u64,
    throttled: u64,
    scrub_errors: u64,
    osd_busy: Vec<u64>,
}

impl ClusterSim {
    /// Builds the cluster: nodes, cores, threads, devices, OSDs, and one
    /// client connection per entry of `workloads`.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (more pinned priority threads
    /// than cores, zero threads, …).
    pub fn new(cfg: ClusterSimConfig, workloads: Vec<Box<dyn ConnWorkload>>) -> Self {
        assert!(!workloads.is_empty(), "at least one connection required");
        // Steady-state event population: every in-flight client op keeps a
        // handful of events live across its replica fan-out, plus one
        // CoreFree per busy core. Sizing the wheel/heap up front avoids
        // mid-run regrowth on paper-scale scenarios.
        let queue_hint = workloads.len() * cfg.queue_depth * cfg.replication
            + cfg.nodes as usize * cfg.cores_per_node;
        let mut sim: Simulation<Ev> =
            Simulation::with_scheduler(cfg.seed, cfg.scheduler, queue_hint);
        sim.set_context_switch_cost(cfg.ctx_switch);
        // Partition: domain 0 = clients + monitor + driver control, domain
        // 1 + n = storage node n. Must happen before any entity is added.
        sim.set_domains(cfg.nodes as usize + 1);
        // Conservative lookahead: every cross-domain message rides a network
        // link, so the one-way link latency bounds how far ahead any domain
        // can safely run. Test overrides may shrink the window (torture
        // tests force 1 ns) but never widen it past the physical floor.
        let net_hold = cfg.link.lookahead();
        sim.set_lookahead(cfg.lookahead.unwrap_or(net_hold).min(net_hold));
        sim.set_workers(cfg.shards.max(1));
        let mut map = OsdMap::new(cfg.nodes, cfg.osds_per_node, cfg.pg_count, cfg.replication);
        // Spares for grow scenarios start weighted out of placement. Applied
        // before any map is distributed, so no epoch bump is needed — every
        // OSD and the monitor begin from this same epoch-1 map.
        for &spare in &cfg.initially_out {
            map.osds[spare as usize].weight = 0;
        }

        let mut node_cores = Vec::new();
        let mut threads: Vec<OsdThreads> = Vec::new();
        let mut class_threads: BTreeMap<&'static str, Vec<ThreadId>> = BTreeMap::new();
        let mut osds = Vec::new();

        for node in 0..cfg.nodes as usize {
            let cores = sim.add_cores_in(1 + node, cfg.cores_per_node);
            node_cores.push(cores.clone());
            let all: Vec<_> = cores.clone().collect();
            // Dedicated cores for priority threads come off the front.
            let mut next_dedicated = cores.start;
            for local in 0..cfg.osds_per_node as usize {
                let osd_idx = node * cfg.osds_per_node as usize + local;
                let (msgr, logic, flusher): (Vec<_>, Vec<_>, Vec<_>) = match cfg.mode {
                    PipelineMode::Original | PipelineMode::Cos => {
                        let msgr: Vec<_> = (0..cfg.messenger_threads)
                            .map(|i| {
                                sim.add_thread_in(
                                    1 + node,
                                    ThreadCfg::new(
                                        format!("n{node}.osd{osd_idx}.msgr{i}"),
                                        all.clone(),
                                        Priority::Normal,
                                    ),
                                )
                            })
                            .collect();
                        let logic: Vec<_> = (0..cfg.pg_threads)
                            .map(|i| {
                                sim.add_thread_in(
                                    1 + node,
                                    ThreadCfg::new(
                                        format!("n{node}.osd{osd_idx}.pg{i}"),
                                        all.clone(),
                                        Priority::Normal,
                                    ),
                                )
                            })
                            .collect();
                        class_threads.entry("msgr").or_default().extend(&msgr);
                        class_threads.entry("pg").or_default().extend(&logic);
                        (msgr, logic, Vec::new())
                    }
                    PipelineMode::RtcV1 | PipelineMode::RtcV2 | PipelineMode::RtcV3 => {
                        let rtc: Vec<_> = (0..cfg.rtc_threads)
                            .map(|i| {
                                sim.add_thread_in(
                                    1 + node,
                                    ThreadCfg::new(
                                        format!("n{node}.osd{osd_idx}.rtc{i}"),
                                        all.clone(),
                                        Priority::Normal,
                                    ),
                                )
                            })
                            .collect();
                        class_threads.entry("rtc").or_default().extend(&rtc);
                        (rtc.clone(), rtc, Vec::new())
                    }
                    PipelineMode::Ptc | PipelineMode::Dop | PipelineMode::Ideal => {
                        let prio: Vec<_> = (0..cfg.priority_threads)
                            .map(|i| {
                                let core = next_dedicated;
                                next_dedicated += 1;
                                assert!(
                                    core < cores.end,
                                    "not enough cores on node {node} to pin priority threads"
                                );
                                sim.add_thread_in(
                                    1 + node,
                                    ThreadCfg::new(
                                        format!("n{node}.osd{osd_idx}.prio{i}"),
                                        vec![core],
                                        Priority::High,
                                    ),
                                )
                            })
                            .collect();
                        class_threads.entry("priority").or_default().extend(&prio);
                        (prio.clone(), prio, Vec::new()) // flusher filled below
                    }
                };
                threads.push(OsdThreads {
                    msgr,
                    logic,
                    flusher,
                    maint: 0, // fixed up below
                    device: 0,
                    node,
                });
                let _ = osd_idx;
            }
            // Non-priority threads share the remaining (non-dedicated) cores
            // plus, at lower priority, the dedicated ones ("leave it to the
            // OS scheduler" in the paper).
            if matches!(
                cfg.mode,
                PipelineMode::Ptc | PipelineMode::Dop | PipelineMode::Ideal
            ) {
                let shared: Vec<_> = (next_dedicated..cores.end).collect();
                assert!(!shared.is_empty(), "no shared cores left on node {node}");
                for local in 0..cfg.osds_per_node as usize {
                    let osd_idx = node * cfg.osds_per_node as usize + local;
                    let mut aff = shared.clone();
                    aff.extend(cores.start..next_dedicated);
                    let flusher: Vec<_> = (0..cfg.non_priority_threads)
                        .map(|i| {
                            sim.add_thread_in(
                                1 + node,
                                ThreadCfg::new(
                                    format!("n{node}.osd{osd_idx}.nprio{i}"),
                                    aff.clone(),
                                    Priority::Normal,
                                ),
                            )
                        })
                        .collect();
                    class_threads
                        .entry("non-priority")
                        .or_default()
                        .extend(&flusher);
                    threads[osd_idx].flusher = flusher;
                }
            }
            // Maintenance threads: low priority on the node's shared cores.
            for local in 0..cfg.osds_per_node as usize {
                let osd_idx = node * cfg.osds_per_node as usize + local;
                let maint = sim.add_thread_in(
                    1 + node,
                    ThreadCfg::new(
                        format!("n{node}.osd{osd_idx}.maint"),
                        all.clone(),
                        Priority::Low,
                    ),
                );
                class_threads.entry("maint").or_default().push(maint);
                threads[osd_idx].maint = maint;
            }
        }

        // Devices: one NVMe SSD model per OSD (the paper partitions each
        // physical SSD across OSDs; per-OSD devices with proportional
        // capability are equivalent for queueing purposes).
        for t in threads.iter_mut() {
            let dev = sim.add_device_in(
                1 + t.node,
                Device::new(
                    format!("nvme.osd{}", osds.len()),
                    DeviceProfile::nvme_pm1725a(cfg.ssd_state),
                ),
            );
            t.device = dev;
        }

        // Denominate the backfill throttle's per-tick byte budget in actual
        // heartbeat periods when detection is armed, so throttled time is
        // accounted in the same clock the retries run on.
        let mut osd_cfg = cfg.osd.clone();
        if let Some(period) = cfg.heartbeat_period {
            osd_cfg.backfill_tick_nanos = period.as_nanos();
        }
        for id in 0..(cfg.nodes * cfg.osds_per_node) {
            osds.push(Osd::new(OsdId(id), osd_cfg.clone(), map.clone()));
        }

        // Client threads: one core per two connections on client "nodes".
        let conn_count = workloads.len();
        let client_cores = sim.add_cores(conn_count.div_ceil(2).max(1));
        let client_core_list: Vec<_> = client_cores.collect();
        let mut conns = Vec::new();
        for (i, workload) in workloads.into_iter().enumerate() {
            let core = client_core_list[i % client_core_list.len()];
            let thread = sim.add_thread(ThreadCfg::new(
                format!("client{i}"),
                vec![core],
                Priority::Normal,
            ));
            class_threads.entry("client").or_default().push(thread);
            conns.push(ConnState {
                id: ClientId(i as u32),
                thread,
                workload,
                outstanding: HashMap::new(),
                next_op: 1,
                exhausted: false,
            });
        }

        let links: Vec<Link> = (0..cfg.nodes as usize + 1)
            .map(|_| cfg.link.clone())
            .collect();

        let mut monitor = Monitor::new(map.clone());
        monitor.set_grace_nanos(cfg.heartbeat_grace.as_nanos());
        monitor.set_flap_policy(
            cfg.flap_threshold,
            cfg.flap_window.as_nanos(),
            cfg.flap_holdout.as_nanos(),
        );

        // One handler part per domain. Part 0 owns the connections, the real
        // monitor, the checker and the client-side counters; part 1 + n owns
        // node n's OSDs. Immutable wiring (threads, links, costs, fault
        // plans) is cloned into every part so handlers never reach across.
        let total_osds = (cfg.nodes * cfg.osds_per_node) as usize;
        let osds_per_node = cfg.osds_per_node as usize;
        let conn_threads: Vec<ThreadId> = conns.iter().map(|c| c.thread).collect();
        let mut osd_slots: Vec<Option<Osd>> = osds.into_iter().map(Some).collect();
        let mut conns_slot = Some(conns);
        let mut monitor_slot = Some(monitor);
        let parts: Vec<World> = (0..cfg.nodes as usize + 1)
            .map(|part| World {
                part: part as u32,
                mode: cfg.mode,
                relay: matches!(cfg.mode, PipelineMode::Original | PipelineMode::Cos),
                lean: cfg.mode.prioritized(),
                costs: cfg.costs.clone(),
                map: map.clone(),
                osds: (0..total_osds)
                    .map(|i| {
                        if part >= 1 && i / osds_per_node == part - 1 {
                            osd_slots[i].take()
                        } else {
                            None
                        }
                    })
                    .collect(),
                threads: threads.clone(),
                conns: if part == 0 {
                    conns_slot.take().unwrap()
                } else {
                    Vec::new()
                },
                conn_threads: conn_threads.clone(),
                links: links.clone(),
                net_hold,
                io_wait: HashMap::new(),
                dead: vec![false; total_osds],
                rtc_gate: HashMap::new(),
                write_lat: LatencyRecorder::default(),
                read_lat: LatencyRecorder::default(),
                writes_done: 0,
                reads_done: 0,
                queue_depth: cfg.queue_depth,
                pacing: cfg.pacing,
                flush_sweep: cfg.flush_sweep,
                pg_count: cfg.pg_count,
                faults: cfg.faults.clone(),
                monitor: if part == 0 {
                    monitor_slot.take().unwrap()
                } else {
                    Monitor::new(map.clone())
                },
                retry: cfg.retry,
                heartbeat_period: cfg.heartbeat_period,
                crash_torn: vec![false; total_osds],
                churn: cfg.churn.clone(),
                checker: if part == 0 {
                    cfg.check_history.then(HistoryChecker::new)
                } else {
                    None
                },
                client_errors: 0,
                fx_scratch: Vec::new(),
                payload_cache: HashMap::new(),
                trace: cfg.trace.then(|| Box::new(PartTrace::new())),
                scrub_interval: cfg.scrub_interval,
                scrub_deep_every: cfg.scrub_deep_every,
            })
            .collect();

        // Telemetry bookkeeping: which threads belong to each OSD (CPU%
        // columns) and the column schema. Thread classes and OSD count are
        // fixed at construction, so the schema is stable for the run.
        let osd_threads: Vec<Vec<ThreadId>> = threads
            .iter()
            .map(|t| {
                let mut set: std::collections::BTreeSet<ThreadId> =
                    std::collections::BTreeSet::new();
                set.extend(&t.msgr);
                set.extend(&t.logic);
                set.extend(&t.flusher);
                set.insert(t.maint);
                set.into_iter().collect()
            })
            .collect();
        let mut cols: Vec<String> = [
            "write_iops",
            "read_iops",
            "outstanding",
            "degraded",
            "backfill_throttle_ms",
            "scrub_errors",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        for class in class_threads.keys() {
            cols.push(format!("q_{}", class.replace('-', "_")));
        }
        for i in 0..osd_threads.len() {
            cols.push(format!("cpu_osd{i}"));
        }

        let mut this = ClusterSim {
            sim,
            parts,
            node_cores,
            class_threads,
            osds_per_node,
            osd_count: total_osds,
            slow_op_ring: cfg.slow_op_ring,
            trace_reset_at: None,
            telemetry_window: cfg.telemetry_window,
            timeseries: TimeSeries::new(cols),
            osd_threads,
            sampler: SamplerState {
                last: SimTime::ZERO,
                writes: 0,
                reads: 0,
                throttled: 0,
                scrub_errors: 0,
                osd_busy: Vec::new(),
            },
        };
        this.sampler.osd_busy = vec![0; this.osd_threads.len()];
        // Kick every connection at t=0 and start flush sweeps.
        for (conn, &t) in conn_threads.iter().enumerate() {
            this.sim.schedule(SimTime::ZERO, t, Ev::ClientKick { conn });
        }
        if cfg.mode.decoupled() {
            for (osd, th) in threads.iter().enumerate().take(total_osds) {
                let t = th.flusher[0];
                this.sim
                    .schedule(SimTime::ZERO + cfg.flush_sweep, t, Ev::FlushSweep { osd });
            }
        }
        // Heartbeat detection: stagger the per-OSD beacons so they do not
        // synchronize, and sweep liveness on the monitor every period.
        if let Some(period) = cfg.heartbeat_period {
            for (osd, th) in threads.iter().enumerate().take(total_osds) {
                let t = th.msgr[0];
                let stagger = SimDuration::nanos(1 + osd as u64 * period.as_nanos() / 7);
                this.sim
                    .schedule(SimTime::ZERO + stagger, t, Ev::HeartbeatTick { osd });
            }
            let mt = conn_threads[0];
            this.sim.schedule(SimTime::ZERO + period, mt, Ev::MonSweep);
        }
        // Scheduled (non-probabilistic) faults from the plan's timeline.
        // Crash/restart/rot events mutate OSD state, so they fire on the
        // target OSD's own maintenance thread (its home domain); only the
        // monitor/churn control events stay on the part-0 driver thread.
        let driver_thread = conn_threads[0];
        for (at, fault) in cfg.faults.timeline() {
            let (thread, ev) = match fault {
                FaultEvent::Crash { process, torn_tail } => (
                    threads[process].maint,
                    Ev::CrashOsd {
                        osd: process,
                        torn_tail,
                    },
                ),
                FaultEvent::Restart { process } => {
                    (threads[process].maint, Ev::RestartOsd { osd: process })
                }
                FaultEvent::GraySet { device, multiplier } => {
                    (threads[device].maint, Ev::GraySet { device, multiplier })
                }
                FaultEvent::BitRot {
                    process,
                    object_lo,
                    object_hi,
                    flips,
                    media,
                } => {
                    // Rot targets derive from their own seed stream, mixed
                    // from run seed + strike coordinates — never from the
                    // scheduler RNG — so wheel and heap runs rot the same
                    // bits no matter how event order interleaves.
                    let mut seed = cfg
                        .seed
                        .wrapping_add((process as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add(at.nanos().wrapping_mul(0xA24B_AED4_963E_E407));
                    if media == RotMedia::NvmLog {
                        seed = seed.wrapping_add(0x632B_E59B_D9B4_E019);
                    }
                    (
                        threads[process].maint,
                        Ev::BitRot {
                            osd: process,
                            lo: object_lo,
                            hi: object_hi,
                            flips,
                            media,
                            seed,
                        },
                    )
                }
            };
            this.sim.schedule(at, thread, ev);
        }
        // Background scrub cadence, staggered off t=0 so the first sweep
        // never coincides with client kick-off.
        if let Some(every) = cfg.scrub_interval {
            this.sim.schedule(
                SimTime::ZERO + every,
                driver_thread,
                Ev::ScrubSweep { round: 0 },
            );
        }
        // Scheduled admin churn (grow/drain/reweight) on the same driver
        // thread; the handler only touches monitor + driver state.
        for (idx, op) in cfg.churn.iter().enumerate() {
            this.sim.schedule(op.at, driver_thread, Ev::Churn { idx });
        }
        this
    }

    /// The part (domain) that owns OSD `osd`'s state.
    fn part_of_osd(&self, osd: usize) -> usize {
        1 + osd / self.osds_per_node
    }

    /// Immutable access to one OSD (inspection helpers; the hot path uses
    /// `World::osd` inside the owning part).
    fn osd_ref(&self, osd: usize) -> &Osd {
        self.parts[self.part_of_osd(osd)].osds[osd]
            .as_ref()
            .expect("OSD missing from its home part")
    }

    fn osd_mut_ref(&mut self, osd: usize) -> &mut Osd {
        let part = self.part_of_osd(osd);
        self.parts[part].osds[osd]
            .as_mut()
            .expect("OSD missing from its home part")
    }

    /// Whether the owning part considers `osd` crashed.
    fn is_dead(&self, osd: usize) -> bool {
        self.parts[self.part_of_osd(osd)].dead[osd]
    }

    /// Creates every object of `objects` on all replicas directly in the
    /// backends (instant provisioning, like creating RBD images before the
    /// measured run).
    pub fn prefill(&mut self, objects: &[(ObjectId, u64)]) {
        for &(oid, size) in objects {
            let set = self.parts[0].map.acting_set(oid.group());
            for osd in set {
                self.osd_mut_ref(osd.0 as usize).bootstrap_object(oid, size);
            }
        }
    }

    /// The cluster map (object routing in workload builders).
    pub fn map(&self) -> &OsdMap {
        &self.parts[0].map
    }

    /// Schedules an OSD process kill at absolute time `at` (§IV-A-4
    /// scenario injection). Nobody is told directly: the monitor concludes
    /// the failure from missed heartbeats (arm `heartbeat_period`), then
    /// map distribution, survivor flush-but-keep, and replacement log-pull
    /// all run inside the simulation.
    pub fn fail_osd(&mut self, at: rablock_sim::SimTime, osd: OsdId) {
        // Deliver on the victim's own maintenance thread — the handler
        // mutates that OSD's part, so it must run in its home domain.
        let t = self.parts[0].threads[osd.0 as usize].maint;
        self.sim.schedule(
            at,
            t,
            Ev::CrashOsd {
                osd: osd.0 as usize,
                torn_tail: false,
            },
        );
    }

    /// Client operations surfaced as errors so far (fault-injection runs).
    pub fn client_errors(&self) -> u64 {
        self.parts[0].client_errors
    }

    /// Rejoins the monitor's flap dampening has refused so far.
    pub fn flaps_damped(&self) -> u64 {
        self.parts[0].monitor.flaps_damped()
    }

    /// Per-OSD logical fill: the bytes of every extent a live,
    /// placement-eligible OSD tracks for the groups it currently serves.
    /// The input to the capacity-imbalance invariant after quiesce —
    /// drained/dead OSDs are excluded (their stale extents are handoff
    /// residue, not load).
    pub fn osd_fill_bytes(&self) -> Vec<(OsdId, u64)> {
        let live: Vec<usize> = (0..self.osd_count).filter(|&i| !self.is_dead(i)).collect();
        let Some(&holder) = live.iter().max_by_key(|&&i| self.osd_ref(i).map().epoch) else {
            return Vec::new();
        };
        let map = self.osd_ref(holder).map().clone();
        let mut fills = Vec::new();
        for o in map.in_osds() {
            let i = o.id.0 as usize;
            if self.is_dead(i) {
                continue;
            }
            let mut total = 0u64;
            for g in 0..map.pg_count {
                let group = GroupId(g);
                if !map.acting_set(group).contains(&o.id) {
                    continue;
                }
                total += self
                    .osd_ref(i)
                    .group_extent_map(group)
                    .iter()
                    .map(|&(_, len)| len)
                    .sum::<u64>();
            }
            fills.push((o.id, total));
        }
        fills
    }

    /// Relative capacity imbalance across eligible OSDs: the largest
    /// deviation above the mean fill, as a fraction of the mean (see
    /// [`crate::invariants::capacity_imbalance`]).
    pub fn capacity_imbalance(&self) -> f64 {
        let fills: Vec<u64> = self.osd_fill_bytes().into_iter().map(|(_, b)| b).collect();
        crate::invariants::capacity_imbalance(&fills)
    }

    /// The history checker, when `check_history` armed it.
    pub fn checker(&self) -> Option<&HistoryChecker> {
        self.parts[0].checker.as_ref()
    }

    /// Pending op-log entries of one group on one OSD (recovery tests).
    pub fn log_pending(&self, osd: OsdId, group: GroupId) -> usize {
        self.osd_ref(osd.0 as usize).log_pending(group)
    }

    /// True when no live primary has recovery in flight and every group
    /// with a live primary reports [`PgState::Active`]. Post-quiesce chaos
    /// runs assert this: all peering rounds finished and every peer acked
    /// its last push.
    pub fn all_pgs_active(&self) -> bool {
        let live: Vec<usize> = (0..self.osd_count).filter(|&i| !self.is_dead(i)).collect();
        let Some(&holder) = live.iter().max_by_key(|&&i| self.osd_ref(i).map().epoch) else {
            return true;
        };
        let map = self.osd_ref(holder).map().clone();
        (0..map.pg_count).all(|g| {
            let group = GroupId(g);
            match map.try_primary(group) {
                Some(p) if !self.is_dead(p.0 as usize) => {
                    self.osd_ref(p.0 as usize).pg_state(group) == PgState::Active
                }
                _ => true,
            }
        })
    }

    /// Flushes every live OSD's pending log records into its backend, then
    /// compares replica contents object by object: for each group, every
    /// live acting-set member must serve byte-identical data. Returns
    /// human-readable mismatch descriptions; empty means the replicas
    /// converged. Mutates backends (log re-apply), so call only after the
    /// run finished.
    pub fn replica_divergence(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        let live: Vec<usize> = (0..self.osd_count).filter(|&i| !self.is_dead(i)).collect();
        for &i in &live {
            self.osd_mut_ref(i).sync_backend_with_log();
        }
        let Some(&holder) = live.iter().max_by_key(|&&i| self.osd_ref(i).map().epoch) else {
            return out;
        };
        let map = self.osd_ref(holder).map().clone();
        for g in 0..map.pg_count {
            let group = GroupId(g);
            let members: Vec<usize> = map
                .acting_set(group)
                .into_iter()
                .map(|o| o.0 as usize)
                .filter(|&i| !self.is_dead(i))
                .collect();
            if members.len() < 2 {
                continue;
            }
            // Union of the extents any member tracks for the group.
            let mut extents: BTreeMap<u64, (ObjectId, u64)> = BTreeMap::new();
            for &m in &members {
                for (oid, len) in self.osd_ref(m).group_extent_map(group) {
                    let e = extents.entry(oid.raw()).or_insert((oid, len));
                    e.1 = e.1.max(len);
                }
            }
            let extents: Vec<(ObjectId, u64)> = extents.into_values().collect();
            let mut listings: Vec<ReplicaListing> = Vec::with_capacity(members.len());
            for &m in &members {
                let osd = self.osd_mut_ref(m);
                let entries = extents
                    .iter()
                    .map(|&(oid, len)| (oid.raw(), osd.object_digest(oid, len)))
                    .collect();
                listings.push((format!("osd{m}"), entries));
            }
            for d in crate::invariants::diff_replica_digests(&listings) {
                out.push(format!("group {}: {d}", group.0));
            }
        }
        out
    }

    /// Persistent-checksum consistency across live acting replicas: every
    /// member of every group must persist the same `(size, checksum-vector
    /// digest)` for every object it holds (see
    /// [`crate::invariants::replica_digest_consistency`]). Metadata-only —
    /// no data blocks are read — and vacuously clean for backends that do
    /// not persist checksums. Mutates backends (log re-apply), so call only
    /// after the run finished.
    pub fn replica_digest_inconsistency(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        let live: Vec<usize> = (0..self.osd_count).filter(|&i| !self.is_dead(i)).collect();
        for &i in &live {
            self.osd_mut_ref(i).sync_backend_with_log();
        }
        let Some(&holder) = live.iter().max_by_key(|&&i| self.osd_ref(i).map().epoch) else {
            return out;
        };
        let map = self.osd_ref(holder).map().clone();
        for g in 0..map.pg_count {
            let group = GroupId(g);
            let members: Vec<usize> = map
                .acting_set(group)
                .into_iter()
                .map(|o| o.0 as usize)
                .filter(|&i| !self.is_dead(i))
                .collect();
            if members.len() < 2 {
                continue;
            }
            let listings: Vec<crate::invariants::DigestListing> = members
                .iter()
                .map(|&m| {
                    let entries = self
                        .osd_ref(m)
                        .group_extent_map(group)
                        .into_iter()
                        .filter_map(|(oid, _)| {
                            self.osd_ref(m)
                                .object_csum_digest(oid)
                                .map(|(size, digest)| (oid.raw(), size, digest))
                        })
                        .collect();
                    (format!("osd{m}"), entries)
                })
                .collect();
            for d in crate::invariants::replica_digest_consistency(&listings) {
                out.push(format!("group {}: {d}", group.0));
            }
        }
        out
    }

    /// Raw object bytes as served by one OSD's backend (diagnostics; call
    /// after [`ClusterSim::replica_divergence`] so logs are synced).
    pub fn object_bytes(&mut self, osd: usize, oid: ObjectId, len: u64) -> Option<Vec<u8>> {
        self.osd_mut_ref(osd).debug_read(oid, len)
    }

    /// Test hook: flip data bits on one OSD's backend right now, outside the
    /// fault timeline. Same deterministic stream as [`Ev::BitRot`]; returns
    /// how many flips landed on mapped blocks. Use fault-plan
    /// [`rablock_sim::BitRotSchedule`] entries for scheduled rot — this is
    /// for tests that need rot at a precise point between runs.
    pub fn inject_data_rot(&mut self, osd: usize, lo: u64, hi: u64, flips: u32, seed: u64) -> u64 {
        self.osd_mut_ref(osd).inject_data_rot(lo, hi, flips, seed)
    }

    /// Per-OSD scrub/read-verification counters `(errors_found,
    /// errors_repaired, read_checksum_errors)` — test observability.
    pub fn integrity_counters(&self, osd: usize) -> (u64, u64, u64) {
        let o = self.osd_ref(osd);
        (
            o.scrub_errors_found,
            o.scrub_errors_repaired,
            o.read_checksum_errors,
        )
    }

    /// One line per non-Active PG at its current primary, plus its count of
    /// outstanding recovery pushes (diagnostics for stuck recovery).
    pub fn stuck_pgs(&self) -> Vec<String> {
        let live: Vec<usize> = (0..self.osd_count).filter(|&i| !self.is_dead(i)).collect();
        let Some(&holder) = live.iter().max_by_key(|&&i| self.osd_ref(i).map().epoch) else {
            return Vec::new();
        };
        let map = self.osd_ref(holder).map().clone();
        let mut out = Vec::new();
        for g in 0..map.pg_count {
            let group = GroupId(g);
            if let Some(p) = map.try_primary(group) {
                let i = p.0 as usize;
                if !self.is_dead(i) {
                    let state = self.osd_ref(i).pg_state(group);
                    if state != PgState::Active {
                        out.push(format!(
                            "group {g}: {state:?} at osd{i}, {} objects outstanding",
                            self.osd_ref(i).degraded_objects(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Runs for `warmup`, discards all statistics, then runs for `measure`
    /// and reports. With `telemetry_window` configured, the measured phase
    /// is executed as a sequence of `run_until` slices with one telemetry
    /// sample between consecutive slices — the engine sees the exact same
    /// event sequence as a single uninterrupted run, so the schedule (and
    /// every fingerprint) is unchanged.
    pub fn run(&mut self, warmup: SimDuration, measure: SimDuration) -> SimReport {
        let t0 = SimTime::ZERO + warmup;
        self.sim.run_until_parts(&mut self.parts, t0);
        // Reset every counter.
        self.sim.reset_metrics_window(t0);
        for i in 0..self.sim.device_count() {
            self.sim.device_mut(i).reset_stats();
        }
        for part in &mut self.parts {
            for osd in part.osds.iter_mut().flatten() {
                osd.backend_mut().reset_stats();
            }
        }
        let w0 = &mut self.parts[0];
        w0.write_lat = LatencyRecorder::default();
        w0.read_lat = LatencyRecorder::default();
        w0.writes_done = 0;
        w0.reads_done = 0;
        if w0.trace.is_some() {
            // Warmup entries stay in the per-part logs; the replay resets
            // its aggregation window when it crosses t0 instead (in-flight
            // op traces stay open, matching the old inline recorder).
            self.trace_reset_at = Some(t0);
        }
        self.timeseries.clear();
        self.rebaseline_sampler();

        let t1 = t0 + measure;
        if let Some(win) = self.telemetry_window {
            let mut next = t0 + win;
            while next < t1 {
                self.sim.run_until_parts(&mut self.parts, next);
                self.sample_window();
                next += win;
            }
            self.sim.run_until_parts(&mut self.parts, t1);
            self.sample_window();
        } else {
            self.sim.run_until_parts(&mut self.parts, t1);
        }
        self.report(measure)
    }

    /// Re-anchors the sampler's counter snapshots to "now" (post-reset).
    fn rebaseline_sampler(&mut self) {
        self.sampler.last = self.sim.now();
        self.sampler.writes = self.parts[0].writes_done;
        self.sampler.reads = self.parts[0].reads_done;
        self.sampler.throttled = (0..self.osd_count)
            .map(|i| self.osd_ref(i).backfill_throttled_nanos)
            .sum();
        self.sampler.scrub_errors = (0..self.osd_count)
            .map(|i| self.osd_ref(i).scrub_errors_found)
            .sum();
        let metrics = self.sim.metrics();
        for (i, ts) in self.osd_threads.iter().enumerate() {
            self.sampler.osd_busy[i] = ts.iter().map(|&t| metrics.thread_busy(t)).sum();
        }
    }

    /// Takes one telemetry sample covering the window since the last one.
    /// Reads counters only — called between event-loop slices, it cannot
    /// change simulation behavior.
    fn sample_window(&mut self) {
        let now = self.sim.now();
        let dt = now.saturating_since(self.sampler.last);
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        let outstanding: usize = self.parts[0]
            .conns
            .iter()
            .map(|c| c.outstanding.len())
            .sum();
        let degraded: u64 = (0..self.osd_count)
            .map(|i| self.osd_ref(i).degraded_objects())
            .sum();
        let throttled: u64 = (0..self.osd_count)
            .map(|i| self.osd_ref(i).backfill_throttled_nanos)
            .sum();
        let scrub_errors: u64 = (0..self.osd_count)
            .map(|i| self.osd_ref(i).scrub_errors_found)
            .sum();
        let mut vals = vec![
            (self.parts[0].writes_done - self.sampler.writes) as f64 / secs,
            (self.parts[0].reads_done - self.sampler.reads) as f64 / secs,
            outstanding as f64,
            degraded as f64,
            throttled.saturating_sub(self.sampler.throttled) as f64 / 1e6,
            scrub_errors.saturating_sub(self.sampler.scrub_errors) as f64,
        ];
        for ids in self.class_threads.values() {
            let depth: usize = ids.iter().map(|&t| self.sim.thread_queue_len(t)).sum();
            vals.push(depth as f64);
        }
        let metrics = self.sim.metrics();
        for (i, ts) in self.osd_threads.iter().enumerate() {
            let busy: u64 = ts.iter().map(|&t| metrics.thread_busy(t)).sum();
            let delta = busy.saturating_sub(self.sampler.osd_busy[i]);
            self.sampler.osd_busy[i] = busy;
            vals.push(delta as f64 / dt.as_nanos() as f64 * 100.0);
        }
        self.sampler.last = now;
        self.sampler.writes = self.parts[0].writes_done;
        self.sampler.reads = self.parts[0].reads_done;
        self.sampler.throttled = throttled;
        self.sampler.scrub_errors = scrub_errors;
        self.timeseries.push(now, vals);
    }

    /// The telemetry time-series sampled during the measured phase (empty
    /// unless [`ClusterSimConfig::telemetry_window`] was set).
    pub fn telemetry(&self) -> &TimeSeries {
        &self.timeseries
    }

    /// The telemetry series rendered as CSV (header + one row per window).
    pub fn telemetry_csv(&self) -> String {
        self.timeseries.to_csv()
    }

    /// Chrome trace-event JSON (Perfetto-loadable) of the slow-op ring
    /// plus the telemetry counter tracks; `None` when tracing is off.
    /// Each span carries the shard (domain) that executed it, and the
    /// export includes a shard-topology process so Perfetto shows which
    /// OSDs ran on which shard.
    pub fn trace_chrome_json(&self) -> Option<String> {
        let rec = self.replay_recorder()?;
        let shard_of_osd: Vec<u32> = (0..self.osd_count)
            .map(|i| self.part_of_osd(i) as u32)
            .collect();
        Some(chrome_trace_json(
            &rec.report().slow_ops,
            Some(&self.timeseries),
            Some(&shard_of_osd),
        ))
    }

    /// Replays the per-part trace logs into one [`Recorder`].
    ///
    /// Each part logs `(time, op)` pairs while its domain executes; the
    /// replay merges them in `(time, part, log-index)` order — a total
    /// order that depends only on the partition (fixed at construction),
    /// never on the worker count. Replica-side spans reference their op by
    /// `(primary, seq)` and are resolved against the registrations the
    /// primaries logged, which always precede them in merged order because
    /// cross-domain messages travel at least one lookahead window apart.
    /// `None` when tracing is off.
    fn replay_recorder(&self) -> Option<Recorder> {
        self.parts[0].trace.as_ref()?;
        let mut entries: Vec<(SimTime, usize, usize, &TraceOp)> = Vec::new();
        for (pi, part) in self.parts.iter().enumerate() {
            if let Some(tr) = part.trace.as_deref() {
                for (idx, (at, op)) in tr.log.iter().enumerate() {
                    entries.push((*at, pi, idx, op));
                }
            }
        }
        entries.sort_by_key(|&(at, pi, idx, _)| (at, pi, idx));
        let mut rec = Recorder::new(self.slow_op_ring);
        let mut rep: HashMap<(u32, u64), TraceId> = HashMap::new();
        let resolve = |rep: &HashMap<(u32, u64), TraceId>, r: TraceRef| match r {
            TraceRef::Tid(id) => Some(id),
            TraceRef::Rep(p, s) => rep.get(&(p, s)).copied(),
        };
        let mut pending_reset = self.trace_reset_at;
        for (at, _, _, op) in entries {
            // Drop warmup aggregates once the measured phase starts
            // (warmup's run_until horizon is inclusive, so entries at
            // exactly t0 still belong to warmup).
            if pending_reset.is_some_and(|t0| at > t0) {
                rec.reset_window();
                pending_reset = None;
            }
            match *op {
                TraceOp::Begin { id, is_write } => rec.begin(id, is_write, at),
                TraceOp::Span {
                    id,
                    name,
                    track,
                    start,
                    dur,
                    comp,
                } => {
                    if let Some(id) = resolve(&rep, id) {
                        rec.span(id, name, track, start, dur, comp);
                    }
                }
                TraceOp::Retry { id } => rec.retry(id),
                TraceOp::RegisterRep { primary, seq, id } => {
                    if let Some(id) = resolve(&rep, id) {
                        if rep.insert((primary, seq), id).is_none() {
                            rec.note_rep_key(id, primary, seq);
                        }
                    }
                }
                TraceOp::Finish { id } => {
                    if let Some(fin) = rec.finish(id, at) {
                        for k in fin.rep_keys {
                            rep.remove(&k);
                        }
                    }
                }
                TraceOp::Abandon { id } => {
                    if let Some(keys) = rec.abandon(id) {
                        for k in keys {
                            rep.remove(&k);
                        }
                    }
                }
            }
        }
        Some(rec)
    }

    fn report(&self, duration: SimDuration) -> SimReport {
        let now = self.sim.now();
        let metrics = self.sim.metrics();
        let win = now
            .saturating_since(metrics.window_start())
            .as_nanos()
            .max(1);
        let node_cpu_pct = self
            .node_cores
            .iter()
            .map(|r| metrics.cores_busy(r.clone()) as f64 / win as f64 * 100.0)
            .collect();
        let mut tag_cpu_pct = BTreeMap::new();
        for (tag, ns) in metrics.tags() {
            tag_cpu_pct.insert(tag, ns as f64 / win as f64 * 100.0);
        }
        let mut class_cpu_pct = BTreeMap::new();
        for (class, ids) in &self.class_threads {
            let ns: u64 = ids.iter().map(|&t| metrics.thread_busy(t)).sum();
            class_cpu_pct.insert(*class, ns as f64 / win as f64 * 100.0);
        }
        let mut store = StoreStats::default();
        for osd in (0..self.osd_count).map(|i| self.osd_ref(i)) {
            let s = osd.backend().stats();
            store.user_bytes += s.user_bytes;
            store.wal_bytes += s.wal_bytes;
            store.flush_bytes += s.flush_bytes;
            store.compaction_bytes += s.compaction_bytes;
            store.data_bytes += s.data_bytes;
            store.metadata_bytes += s.metadata_bytes;
            store.superblock_bytes += s.superblock_bytes;
            store.read_bytes += s.read_bytes;
            store.transactions += s.transactions;
        }
        let mut device = DeviceStats::default();
        for i in 0..self.sim.device_count() {
            let d = self.sim.device(i).stats();
            device.reads += d.reads;
            device.writes += d.writes;
            device.flushes += d.flushes;
            device.bytes_read += d.bytes_read;
            device.bytes_written += d.bytes_written;
            device.total_latency_ns += d.total_latency_ns;
        }
        let secs = duration.as_secs_f64();
        let w0 = &self.parts[0];
        let osds = || (0..self.osd_count).map(|i| self.osd_ref(i));
        SimReport {
            duration,
            writes_done: w0.writes_done,
            reads_done: w0.reads_done,
            write_iops: w0.writes_done as f64 / secs,
            read_iops: w0.reads_done as f64 / secs,
            write_lat: w0.write_lat.summary(),
            read_lat: w0.read_lat.summary(),
            attribution: self.replay_recorder().map(|r| r.report()),
            node_cpu_pct,
            tag_cpu_pct,
            class_cpu_pct,
            context_switches: metrics.context_switches,
            events_processed: metrics.items_run,
            store,
            device,
            nvm_bytes: osds().map(Osd::nvm_bytes_written).sum(),
            nvm_full_stalls: osds().map(|o| o.nvm_full_stalls).sum(),
            client_errors: w0.client_errors,
            recovery_pushes: osds().map(|o| o.recovery_pushes).sum(),
            backfill_bytes: osds().map(|o| o.backfill_bytes).sum(),
            backfill_queued: osds().map(|o| o.backfill_queued).sum(),
            backfill_throttled_nanos: osds().map(|o| o.backfill_throttled_nanos).sum(),
            flaps_damped: w0.monitor.flaps_damped(),
            degraded_objects: osds().map(Osd::degraded_objects).sum(),
            queue_high_water: self.sim.queue_high_water(),
            scrubs_completed: osds().map(|o| o.scrubs_completed).sum(),
            scrub_errors_found: osds().map(|o| o.scrub_errors_found).sum(),
            scrub_errors_repaired: osds().map(|o| o.scrub_errors_repaired).sum(),
            scrub_bytes: osds().map(|o| o.scrub_bytes).sum(),
            scrub_throttled_nanos: osds().map(|o| o.scrub_throttled_nanos).sum(),
            read_checksum_errors: osds().map(|o| o.read_checksum_errors).sum(),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rablock_cos::CosOptions;
    use rablock_lsm::LsmOptions;

    pub(crate) fn run_mode_pub(mode: PipelineMode, conns: usize) -> SimReport {
        run_mode(mode, conns)
    }

    pub(crate) fn small_cfg_pub(mode: PipelineMode) -> ClusterSimConfig {
        small_cfg(mode)
    }

    pub(crate) fn objects_pub(n: u64) -> Vec<(ObjectId, u64)> {
        objects(n)
    }

    pub(crate) fn randwrite_conn_pub(objs: u64, seed: u64) -> Box<dyn ConnWorkload> {
        randwrite_conn(objs, seed)
    }

    fn small_cfg(mode: PipelineMode) -> ClusterSimConfig {
        let mut cfg = ClusterSimConfig::defaults(mode);
        cfg.nodes = 2;
        cfg.osds_per_node = 1;
        cfg.cores_per_node = 6;
        cfg.priority_threads = 3;
        cfg.non_priority_threads = 3;
        cfg.pg_count = 24;
        cfg.osd = OsdConfig {
            mode,
            device_bytes: 64 << 20,
            nvm_bytes: 8 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 16,
            lsm: LsmOptions {
                memtable_bytes: 1 << 20,
                ..LsmOptions::default()
            },
            cos: CosOptions {
                partitions: 2,
                onode_slots: 1024,
                ..CosOptions::default()
            },
            ..OsdConfig::default()
        };
        cfg.queue_depth = 8;
        cfg
    }

    fn objects(n: u64) -> Vec<(ObjectId, u64)> {
        // 1 MiB objects: small enough that every OSD can hold every object
        // in these 2-OSD test clusters.
        (0..n)
            .map(|i| (ObjectId::new(GroupId((i % 24) as u32), i), 1 << 20))
            .collect()
    }

    fn randwrite_conn(objs: u64, seed_offset: u64) -> Box<dyn ConnWorkload> {
        let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(seed_offset + 1);
        Box::new(move |_rng: &mut SimRng| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 16) % objs;
            let block = (x >> 40) % 256; // within the 1 MiB object, 4 KiB blocks
            Some(WorkItem::Write {
                oid: ObjectId::new(GroupId((i % 24) as u32), i),
                offset: block * 4096,
                len: 4096,
                fill: (x % 251) as u8,
            })
        })
    }

    fn run_mode(mode: PipelineMode, conns: usize) -> SimReport {
        let cfg = small_cfg(mode);
        let workloads: Vec<Box<dyn ConnWorkload>> =
            (0..conns).map(|c| randwrite_conn(32, c as u64)).collect();
        let mut sim = ClusterSim::new(cfg, workloads);
        sim.prefill(&objects(32));
        sim.run(SimDuration::millis(30), SimDuration::millis(80))
    }

    #[test]
    fn dop_cluster_completes_writes() {
        let r = run_mode(PipelineMode::Dop, 4);
        assert!(r.writes_done > 500, "writes done: {}", r.writes_done);
        assert!(r.write_iops > 10_000.0, "iops: {}", r.write_iops);
        assert!(r.nvm_bytes > 0, "NVM log used");
        assert!(
            r.mean_node_cpu() > 10.0,
            "some CPU burned: {}",
            r.mean_node_cpu()
        );
    }

    #[test]
    fn original_cluster_completes_writes_with_lsm_waf() {
        let r = run_mode(PipelineMode::Original, 4);
        assert!(r.writes_done > 200, "writes done: {}", r.writes_done);
        assert!(r.store.waf() > 1.5, "LSM waf: {}", r.store.waf());
        assert!(r.tag_cpu_pct.contains_key("MT") || r.store.compaction_bytes == 0);
    }

    #[test]
    fn proposed_beats_original_on_random_writes() {
        let orig = run_mode(PipelineMode::Original, 6);
        let dop = run_mode(PipelineMode::Dop, 6);
        assert!(
            dop.write_iops > orig.write_iops * 1.5,
            "proposed {} vs original {}",
            dop.write_iops,
            orig.write_iops
        );
        assert!(
            dop.write_lat.mean < orig.write_lat.mean,
            "proposed latency {} vs original {}",
            dop.write_lat.mean,
            orig.write_lat.mean
        );
    }

    #[test]
    fn ablation_order_matches_table_ii() {
        let orig = run_mode(PipelineMode::Original, 6).write_iops;
        let cos = run_mode(PipelineMode::Cos, 6).write_iops;
        let ptc = run_mode(PipelineMode::Ptc, 6).write_iops;
        let dop = run_mode(PipelineMode::Dop, 6).write_iops;
        assert!(cos > orig, "COS {cos} > Original {orig}");
        assert!(ptc >= cos * 0.9, "PTC {ptc} vs COS {cos}");
        assert!(dop > ptc, "DOP {dop} > PTC {ptc}");
    }

    #[test]
    fn reads_return_written_data() {
        // Write then read the same blocks; verify the data round-trips
        // through the whole simulated cluster.
        let cfg = small_cfg(PipelineMode::Dop);
        let mut counter = 0u64;
        let wl: Box<dyn ConnWorkload> = Box::new(move |_rng: &mut SimRng| {
            let i = counter;
            counter += 1;
            let oid = ObjectId::new(GroupId((i / 8 % 24) as u32), i / 8 % 16);
            if i < 64 {
                Some(WorkItem::Write {
                    oid,
                    offset: (i % 8) * 4096,
                    len: 4096,
                    fill: (i % 251) as u8,
                })
            } else if i < 128 {
                let j = i - 64;
                let oid = ObjectId::new(GroupId((j / 8 % 24) as u32), j / 8 % 16);
                Some(WorkItem::Read {
                    oid,
                    offset: (j % 8) * 4096,
                    len: 4096,
                })
            } else {
                None
            }
        });
        let mut sim = ClusterSim::new(cfg, vec![wl]);
        sim.prefill(&objects(16));
        let r = sim.run(SimDuration::ZERO, SimDuration::millis(200));
        assert_eq!(r.writes_done + r.reads_done, 128, "all ops completed");
        assert_eq!(r.reads_done, 64);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_mode(PipelineMode::Dop, 3);
        let b = run_mode(PipelineMode::Dop, 3);
        assert_eq!(a.writes_done, b.writes_done);
        assert_eq!(a.context_switches, b.context_switches);
        assert_eq!(a.nvm_bytes, b.nvm_bytes);
    }

    #[test]
    fn rtc_gating_limits_per_thread_concurrency() {
        let v2 = run_mode(PipelineMode::RtcV2, 6);
        let v3 = run_mode(PipelineMode::RtcV3, 6);
        // v3 strips TP/OS relative to v2: strictly less work, >= IOPS.
        assert!(
            v3.write_iops >= v2.write_iops * 0.95,
            "v3 {} vs v2 {}",
            v3.write_iops,
            v2.write_iops
        );
        // Both complete and stay below the Ideal unbounded pipeline.
        assert!(v2.writes_done > 100);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::tests::*;
    use super::*;

    /// Unloaded (queue-depth-1, single-connection) write latency must sit in
    /// a calibrated envelope per pipeline mode. At qd=1 there is no queueing,
    /// so the latency distribution collapses (p95 ≈ p50), throughput is the
    /// reciprocal of latency, and decoupled operation processing (Dop) must
    /// ack well below the coupled Ptc pipeline because the device write is
    /// off the ack path. Envelope centers were calibrated from the
    /// deterministic run itself; ±10% leaves room for cost-model tuning
    /// without letting a pipeline regression slip through.
    #[test]
    fn unloaded_latency_envelope() {
        use super::tests::*;
        let envelope_ns = [
            (PipelineMode::Ptc, 204_521u64),
            (PipelineMode::Dop, 130_337u64),
        ];
        let mut measured = Vec::new();
        for (mode, center) in envelope_ns {
            let mut cfg = small_cfg_pub(mode);
            cfg.queue_depth = 1;
            let workloads: Vec<Box<dyn ConnWorkload>> = vec![randwrite_conn_pub(32, 0)];
            let mut sim = ClusterSim::new(cfg, workloads);
            sim.prefill(&objects_pub(32));
            let r = sim.run(SimDuration::millis(10), SimDuration::millis(50));
            let mean = r.write_lat.mean.as_nanos();
            let (lo, hi) = (center * 9 / 10, center * 11 / 10);
            assert!(
                (lo..=hi).contains(&mean),
                "{mode:?} qd1 mean {mean}ns outside calibrated envelope [{lo}, {hi}]"
            );
            // No queueing at qd=1: the distribution collapses to a point.
            let (p50, p95) = (r.write_lat.p50.as_nanos(), r.write_lat.p95.as_nanos());
            assert!(
                p95 <= p50 + p50 / 20,
                "{mode:?} qd1: p95 {p95}ns should be within 5% of p50 {p50}ns"
            );
            // Closed loop at qd=1: throughput is the reciprocal of latency.
            let expected_iops = 1e9 / mean as f64;
            assert!(
                (r.write_iops - expected_iops).abs() / expected_iops < 0.05,
                "{mode:?} qd1: iops {:.0} should be ~1e9/mean = {expected_iops:.0}",
                r.write_iops
            );
            measured.push(mean);
        }
        assert!(
            measured[1] < measured[0] * 4 / 5,
            "Dop unloaded latency ({}) must undercut Ptc ({}) by >20%: the \
             device write is off the ack path",
            measured[1],
            measured[0]
        );
    }

    #[test]
    #[ignore]
    fn dump_scaling() {
        for conns in [3, 6, 12, 24] {
            let r = run_mode_pub(PipelineMode::Dop, conns);
            println!(
                "== conns={conns}: iops={:.0} lat={} prio_cpu={:?}",
                r.write_iops,
                r.write_lat.mean,
                r.class_cpu_pct.get("priority")
            );
        }
    }

    #[test]
    #[ignore]
    fn dump_mode_reports() {
        for mode in [
            PipelineMode::Original,
            PipelineMode::Cos,
            PipelineMode::Ptc,
            PipelineMode::Dop,
        ] {
            let r = run_mode_pub(mode, 6);
            println!("== {mode:?}: iops={:.0} lat_mean={} p95={} cpu/node={:?} tags={:?} classes={:?} ctx={} dev_writes={} dev_lat={} stalls={}",
                r.write_iops, r.write_lat.mean, r.write_lat.p95, r.node_cpu_pct, r.tag_cpu_pct, r.class_cpu_pct, r.context_switches,
                r.device.writes, r.device.mean_latency(), r.nvm_full_stalls);
        }
    }
}
