//! Cluster message types.
//!
//! Everything that crosses the wire between clients, OSDs and the monitor.
//! Messages carry real payloads (reads return the bytes that were written),
//! and each knows its approximate wire size so network serialization and
//! per-message CPU can be charged faithfully.

use rablock_storage::{GroupId, ObjectId, Payload, StoreError, Transaction};

use crate::placement::{OsdId, OsdMap};

/// Identifies one client connection.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Client-assigned id for one outstanding operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct OpId(pub u64);

/// Fixed per-message header overhead on the wire (Ceph msgr-like).
pub const MSG_HEADER_BYTES: u64 = 192;

/// A client request to an OSD.
#[derive(Clone, Debug)]
pub enum ClientReq {
    /// Write `data` at `offset` of `oid`.
    Write {
        /// Operation id (echoed in the reply).
        op: OpId,
        /// Target object.
        oid: ObjectId,
        /// Byte offset within the object.
        offset: u64,
        /// Payload (refcounted: a retry's clone shares the bytes).
        data: Payload,
    },
    /// Read `len` bytes at `offset` of `oid`.
    Read {
        /// Operation id (echoed in the reply).
        op: OpId,
        /// Target object.
        oid: ObjectId,
        /// Byte offset within the object.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Pre-create an object (RBD image provisioning).
    Create {
        /// Operation id (echoed in the reply).
        op: OpId,
        /// Target object.
        oid: ObjectId,
        /// Object size in bytes.
        size: u64,
    },
}

impl ClientReq {
    /// The operation id.
    pub fn op(&self) -> OpId {
        match self {
            ClientReq::Write { op, .. }
            | ClientReq::Read { op, .. }
            | ClientReq::Create { op, .. } => *op,
        }
    }

    /// Target object.
    pub fn oid(&self) -> ObjectId {
        match self {
            ClientReq::Write { oid, .. }
            | ClientReq::Read { oid, .. }
            | ClientReq::Create { oid, .. } => *oid,
        }
    }

    /// Approximate wire size.
    pub fn wire_bytes(&self) -> u64 {
        MSG_HEADER_BYTES
            + match self {
                ClientReq::Write { data, .. } => data.len() as u64,
                _ => 0,
            }
    }
}

/// An OSD's reply to a client.
#[derive(Clone, Debug)]
pub enum ClientReply {
    /// Write/create completed.
    Done {
        /// Echoed operation id.
        op: OpId,
    },
    /// Read completed with data.
    Data {
        /// Echoed operation id.
        op: OpId,
        /// The bytes read (refcounted: a dedup re-ack shares the bytes).
        data: Payload,
    },
    /// The operation failed.
    Error {
        /// Echoed operation id.
        op: OpId,
        /// Why.
        error: StoreError,
    },
}

impl ClientReply {
    /// The echoed operation id.
    pub fn op(&self) -> OpId {
        match self {
            ClientReply::Done { op }
            | ClientReply::Data { op, .. }
            | ClientReply::Error { op, .. } => *op,
        }
    }

    /// Approximate wire size.
    pub fn wire_bytes(&self) -> u64 {
        MSG_HEADER_BYTES
            + match self {
                ClientReply::Data { data, .. } => data.len() as u64,
                _ => 0,
            }
    }
}

/// One entry of a group's bounded write log (pg_log), Ceph-style: enough to
/// compare replica histories during peering and decide what data must move.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PgLogEntry {
    /// Map epoch at which the op was applied.
    pub epoch: u64,
    /// Primary-assigned version (the replication sequence of the op).
    pub version: u64,
    /// Object the op touched.
    pub oid: ObjectId,
    /// Digest of the op's payload bytes (FNV-1a), so entries from different
    /// primaries that happen to share a version never silently match.
    pub digest: u64,
}

impl PgLogEntry {
    /// Membership key used when diffing two replicas' logs: epoch is kept
    /// out because a replica may tag the same op with a slightly older map
    /// epoch than the primary did.
    pub fn key(&self) -> (u64, u64, u64) {
        (self.version, self.oid.raw(), self.digest)
    }
}

/// One row of a scrub map: a replica's summary of one object.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScrubEntry {
    /// Raw object id.
    pub oid_raw: u64,
    /// Object size in bytes on this replica.
    pub size: u64,
    /// Content digest (FNV-1a over the object bytes, or over the per-block
    /// checksum run on a light scrub of a checksumming store).
    pub digest: u64,
    /// True when a deep read of the object tripped a block checksum — this
    /// replica's copy is rotten regardless of what the digest claims.
    pub damaged: bool,
    /// Newest pg_log `(epoch, version)` for the object when the map was
    /// built. Replica maps are collected at different instants, so a write
    /// landing mid-round makes digests diverge without any corruption; the
    /// comparison skips objects whose copies disagree on this stamp instead
    /// of flagging them (the next round re-checks them at rest).
    pub epoch: u64,
    /// See `epoch`.
    pub version: u64,
}

/// OSD-to-OSD messages.
#[derive(Clone, Debug)]
pub enum PeerMsg {
    /// Primary-backup replication of a transaction; the replica persists to
    /// its backend store before acking (stock path).
    Repop {
        /// Group the transaction belongs to.
        group: GroupId,
        /// Primary-assigned sequence.
        seq: u64,
        /// The transaction to apply.
        txn: Transaction,
    },
    /// Decoupled replication (§IV-A): the replica logs to NVM and acks
    /// immediately.
    RepopNvm {
        /// Group the transaction belongs to.
        group: GroupId,
        /// Primary-assigned sequence.
        seq: u64,
        /// The transaction to log.
        txn: Transaction,
    },
    /// Replica acknowledgment.
    RepAck {
        /// Group.
        group: GroupId,
        /// Acked sequence.
        seq: u64,
        /// Which replica acks.
        from: OsdId,
    },
    /// Peer recovery: request the pending operation-log records of a group
    /// (§IV-A-4 synchronization).
    PullLog {
        /// Group to synchronize.
        group: GroupId,
        /// Requesting OSD.
        from: OsdId,
    },
    /// Peer recovery: the pending records of a group, encoded.
    LogRecords {
        /// Group being synchronized.
        group: GroupId,
        /// Encoded [`rablock_oplog::LogRecord`]s.
        records: Vec<Vec<u8>>,
    },
    /// Peer recovery: flushed object contents of a group, so a joiner whose
    /// backend missed flushes while it was out of the acting set catches up
    /// (the log transfer alone only covers still-pending operations).
    Backfill {
        /// Group being synchronized.
        group: GroupId,
        /// `(object, full content)` pairs: the sender's complete state,
        /// read after syncing its backend with pending log records.
        objects: Vec<(ObjectId, Vec<u8>)>,
    },
    /// Peering: the new primary asks an acting-set peer for its pg_log so it
    /// can compute the peer's missing set.
    PgQuery {
        /// Group being peered.
        group: GroupId,
        /// Map epoch the primary is peering at (stale replies are ignored).
        epoch: u64,
        /// The querying primary.
        from: OsdId,
    },
    /// Peering: a peer's pg_log, in reply to [`PeerMsg::PgQuery`].
    PgInfo {
        /// Group being peered.
        group: GroupId,
        /// Echoed peering epoch.
        epoch: u64,
        /// The replying peer.
        from: OsdId,
        /// The peer's full (bounded) pg_log for the group.
        entries: Vec<PgLogEntry>,
    },
    /// Recovery/backfill: the primary pushes an object's authoritative
    /// content to a peer whose log diff (or empty log) showed it missing.
    PushObject {
        /// Group being recovered.
        group: GroupId,
        /// Peering epoch the push belongs to.
        epoch: u64,
        /// The primary's newest log entry for the object (`version` 0 for a
        /// backfill push of an object that fell off the log tail); the
        /// receiver skips the apply if it already holds something newer.
        entry: PgLogEntry,
        /// Full object content as served by the primary.
        data: Vec<u8>,
        /// FNV-1a digest of `data`; the receiver verifies before applying.
        content_digest: u64,
    },
    /// Recovery/backfill: a peer acknowledges one applied (or already-newer)
    /// [`PeerMsg::PushObject`].
    PushAck {
        /// Group being recovered.
        group: GroupId,
        /// Echoed peering epoch.
        epoch: u64,
        /// The acked object.
        oid: ObjectId,
        /// Which peer acks.
        from: OsdId,
    },
    /// Scrub: the primary asks an acting-set peer for a scrub map of a
    /// group — per-object sizes and digests (plus, on a deep scrub, a full
    /// data read that verifies block checksums).
    ScrubRequest {
        /// Group being scrubbed.
        group: GroupId,
        /// Map epoch the scrub round belongs to (stale replies are ignored).
        epoch: u64,
        /// Whether to deep-scrub (read and checksum-verify every byte).
        deep: bool,
        /// The requesting primary.
        from: OsdId,
    },
    /// Scrub: one replica's view of a group, in reply to
    /// [`PeerMsg::ScrubRequest`] (the primary also builds one locally).
    ScrubMap {
        /// Group being scrubbed.
        group: GroupId,
        /// Echoed scrub epoch.
        epoch: u64,
        /// The replying peer.
        from: OsdId,
        /// Per-object `(raw oid, size, content digest, damaged)` rows.
        /// `damaged` is set when a deep read tripped a block checksum.
        entries: Vec<ScrubEntry>,
    },
    /// Scrub/read-repair: an OSD that found one of its own replicas rotten
    /// asks a peer holding a good copy to push the object back to it.
    ScrubFetch {
        /// Group the object belongs to.
        group: GroupId,
        /// Map epoch of the request.
        epoch: u64,
        /// The damaged object.
        oid: ObjectId,
        /// The requesting (damaged) OSD.
        from: OsdId,
    },
    /// A replica failed to apply a replicated transaction: negative ack so
    /// the primary can mark the peer missing and re-drive recovery instead
    /// of the replica panicking.
    RepNack {
        /// Group.
        group: GroupId,
        /// Nacked sequence.
        seq: u64,
        /// Which replica failed.
        from: OsdId,
        /// Why the apply failed.
        error: StoreError,
    },
}

impl PeerMsg {
    /// The group the message concerns.
    pub fn group(&self) -> GroupId {
        match self {
            PeerMsg::Repop { group, .. }
            | PeerMsg::RepopNvm { group, .. }
            | PeerMsg::RepAck { group, .. }
            | PeerMsg::PullLog { group, .. }
            | PeerMsg::LogRecords { group, .. }
            | PeerMsg::Backfill { group, .. }
            | PeerMsg::PgQuery { group, .. }
            | PeerMsg::PgInfo { group, .. }
            | PeerMsg::PushObject { group, .. }
            | PeerMsg::PushAck { group, .. }
            | PeerMsg::ScrubRequest { group, .. }
            | PeerMsg::ScrubMap { group, .. }
            | PeerMsg::ScrubFetch { group, .. }
            | PeerMsg::RepNack { group, .. } => *group,
        }
    }

    /// Whether this is recovery/peering traffic (as opposed to foreground
    /// replication): drivers schedule it on the low-priority lane so repair
    /// degrades client IOPS gracefully.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            PeerMsg::PullLog { .. }
                | PeerMsg::LogRecords { .. }
                | PeerMsg::Backfill { .. }
                | PeerMsg::PgQuery { .. }
                | PeerMsg::PgInfo { .. }
                | PeerMsg::PushObject { .. }
                | PeerMsg::PushAck { .. }
                | PeerMsg::ScrubRequest { .. }
                | PeerMsg::ScrubMap { .. }
                | PeerMsg::ScrubFetch { .. }
        )
    }

    /// Approximate wire size.
    pub fn wire_bytes(&self) -> u64 {
        MSG_HEADER_BYTES
            + match self {
                PeerMsg::Repop { txn, .. } | PeerMsg::RepopNvm { txn, .. } => {
                    txn.user_bytes() + 256
                }
                PeerMsg::RepAck { .. } => 0,
                PeerMsg::PullLog { .. } => 0,
                PeerMsg::LogRecords { records, .. } => records.iter().map(|r| r.len() as u64).sum(),
                PeerMsg::Backfill { objects, .. } => {
                    objects.iter().map(|(_, data)| 16 + data.len() as u64).sum()
                }
                PeerMsg::PgQuery { .. } => 0,
                // 32 bytes per serialized pg_log entry.
                PeerMsg::PgInfo { entries, .. } => 32 * entries.len() as u64,
                PeerMsg::PushObject { data, .. } => 48 + data.len() as u64,
                PeerMsg::PushAck { .. } => 0,
                PeerMsg::ScrubRequest { .. } => 8,
                // 32 bytes per serialized scrub-map row.
                PeerMsg::ScrubMap { entries, .. } => 32 * entries.len() as u64,
                PeerMsg::ScrubFetch { .. } => 16,
                PeerMsg::RepNack { .. } => 16,
            }
    }
}

/// Monitor messages (cluster-map distribution and liveness).
#[derive(Clone, Debug)]
pub enum MonMsg {
    /// An OSD (or the driver) reports a failure.
    ReportFailure {
        /// The OSD believed dead.
        osd: OsdId,
    },
    /// A periodic liveness beacon from an OSD; the monitor marks the sender
    /// down after a configurable window of missed heartbeats.
    Heartbeat {
        /// The OSD reporting in.
        osd: OsdId,
    },
    /// A new map epoch, broadcast to everyone.
    MapUpdate {
        /// The new map.
        map: OsdMap,
    },
}

impl MonMsg {
    /// Approximate wire size.
    pub fn wire_bytes(&self) -> u64 {
        MSG_HEADER_BYTES
            + match self {
                MonMsg::ReportFailure { .. } | MonMsg::Heartbeat { .. } => 0,
                // Per-OSD entries dominate an encoded map (id, node, up,
                // weight plus framing).
                MonMsg::MapUpdate { map } => 20 * map.osds.len() as u64,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::{GroupId, Op};

    #[test]
    fn wire_sizes_scale_with_payload() {
        let oid = ObjectId::new(GroupId(0), 1);
        let w = ClientReq::Write {
            op: OpId(1),
            oid,
            offset: 0,
            data: vec![0; 4096].into(),
        };
        let r = ClientReq::Read {
            op: OpId(2),
            oid,
            offset: 0,
            len: 4096,
        };
        assert_eq!(w.wire_bytes(), MSG_HEADER_BYTES + 4096);
        assert_eq!(r.wire_bytes(), MSG_HEADER_BYTES);
        let reply = ClientReply::Data {
            op: OpId(2),
            data: vec![0; 4096].into(),
        };
        assert_eq!(reply.wire_bytes(), MSG_HEADER_BYTES + 4096);
    }

    #[test]
    fn repop_wire_includes_payload_and_metadata() {
        let oid = ObjectId::new(GroupId(0), 1);
        let txn = Transaction::new(
            GroupId(0),
            9,
            vec![Op::Write {
                oid,
                offset: 0,
                data: vec![1; 4096].into(),
            }],
        );
        let m = PeerMsg::Repop {
            group: GroupId(0),
            seq: 9,
            txn,
        };
        assert!(m.wire_bytes() > MSG_HEADER_BYTES + 4096);
    }

    #[test]
    fn ids_echo_through_accessors() {
        let oid = ObjectId::new(GroupId(7), 3);
        let req = ClientReq::Create {
            op: OpId(42),
            oid,
            size: 1,
        };
        assert_eq!(req.op(), OpId(42));
        assert_eq!(req.oid(), oid);
        assert_eq!(ClientReply::Done { op: OpId(42) }.op(), OpId(42));
    }
}
