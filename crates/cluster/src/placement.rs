//! Cluster map and placement: logical groups → OSDs.
//!
//! Stands in for Ceph's CRUSH + monitor-maintained osdmap (§II-B): a
//! versioned map of OSDs and a deterministic, failure-stable mapping from
//! each logical group to its acting set via rendezvous (highest-random-
//! weight) hashing. When an OSD goes down only the groups it served move —
//! the property CRUSH provides that simple modulo hashing does not.

use std::sync::Mutex;

use rablock_storage::{FxHashMap, SmallVec};

use crate::msg::MonMsg;

/// Identifies one OSD daemon in the cluster.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OsdId(pub u32);

impl std::fmt::Display for OsdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "osd.{}", self.0)
    }
}

/// Identifies a storage node (failure domain).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One OSD's entry in the map.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OsdInfo {
    /// The OSD.
    pub id: OsdId,
    /// The node hosting it (replicas avoid sharing a node).
    pub node: NodeId,
    /// Whether the monitor believes it is alive.
    pub up: bool,
    /// Placement weight in 16.16 fixed point ([`DEFAULT_OSD_WEIGHT`] = 1.0).
    /// Weight 0 takes the OSD *out* of placement without declaring it dead:
    /// it still heartbeats and serves as a handoff source while draining,
    /// but no acting set will select it. Distinct from `up`, which tracks
    /// liveness.
    pub weight: u32,
}

impl OsdInfo {
    /// Whether this OSD participates in placement: alive *and* weighted in.
    pub fn in_set(&self) -> bool {
        self.up && self.weight > 0
    }
}

/// Unit placement weight (1.0 in 16.16 fixed point).
pub const DEFAULT_OSD_WEIGHT: u32 = 1 << 16;

/// Shard count of the acting-set cache: small enough to stay cheap, enough
/// to keep live-driver threads resolving different groups off one lock.
const CACHE_SHARDS: usize = 8;

/// An acting set: at most the replication factor of OSDs (inline up to 4).
pub type ActingSet = SmallVec<OsdId, 4>;

type ActingSetCache = [Mutex<FxHashMap<u32, (u64, ActingSet)>>; CACHE_SHARDS];

/// The versioned cluster map.
pub struct OsdMap {
    /// Monotonic epoch; bumped by the monitor on every change.
    pub epoch: u64,
    /// All OSDs ever registered.
    pub osds: Vec<OsdInfo>,
    /// Number of logical groups (placement groups).
    pub pg_count: u32,
    /// Replication factor (2 in the paper's evaluation).
    pub replication: usize,
    /// Write quorum: a group accepts writes only while its acting set holds
    /// at least this many members. Defaults to a Ceph-style majority floor
    /// (`replication - replication / 2`, i.e. 1 for 2×, 2 for 3×); below it
    /// the primary returns a retryable [`StoreError::Degraded`] instead of
    /// acknowledging under-replicated data.
    ///
    /// [`StoreError::Degraded`]: rablock_storage::StoreError::Degraded
    pub min_size: usize,
    /// Memoized acting sets per group, each tagged with the epoch it was
    /// computed at; an epoch bump (mark_down/mark_up) lazily invalidates.
    /// Purely a lookup accelerator — excluded from equality, ignored by
    /// `Debug`, and reset to empty on `Clone`. Boxed so the map stays small
    /// when moved by value through messages and event queues.
    cache: Box<ActingSetCache>,
}

fn empty_cache() -> Box<ActingSetCache> {
    Box::new(std::array::from_fn(|_| Mutex::new(FxHashMap::default())))
}

impl Clone for OsdMap {
    fn clone(&self) -> Self {
        OsdMap {
            epoch: self.epoch,
            osds: self.osds.clone(),
            pg_count: self.pg_count,
            replication: self.replication,
            min_size: self.min_size,
            cache: empty_cache(),
        }
    }
}

impl PartialEq for OsdMap {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.osds == other.osds
            && self.pg_count == other.pg_count
            && self.replication == other.replication
            && self.min_size == other.min_size
    }
}
impl Eq for OsdMap {}

impl std::fmt::Debug for OsdMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsdMap")
            .field("epoch", &self.epoch)
            .field("osds", &self.osds)
            .field("pg_count", &self.pg_count)
            .field("replication", &self.replication)
            .field("min_size", &self.min_size)
            .finish()
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl OsdMap {
    /// A fresh map with `nodes × osds_per_node` OSDs, all up.
    pub fn new(nodes: u32, osds_per_node: u32, pg_count: u32, replication: usize) -> Self {
        let mut osds = Vec::new();
        for n in 0..nodes {
            for i in 0..osds_per_node {
                osds.push(OsdInfo {
                    id: OsdId(n * osds_per_node + i),
                    node: NodeId(n),
                    up: true,
                    weight: DEFAULT_OSD_WEIGHT,
                });
            }
        }
        OsdMap {
            epoch: 1,
            osds,
            pg_count,
            replication,
            min_size: (replication - replication / 2).max(1),
            cache: empty_cache(),
        }
    }

    /// Info for one OSD.
    pub fn osd(&self, id: OsdId) -> &OsdInfo {
        &self.osds[id.0 as usize]
    }

    /// All currently-up OSDs.
    pub fn up_osds(&self) -> impl Iterator<Item = &OsdInfo> {
        self.osds.iter().filter(|o| o.up)
    }

    /// All OSDs eligible for placement: up *and* weight > 0.
    pub fn in_osds(&self) -> impl Iterator<Item = &OsdInfo> {
        self.osds.iter().filter(|o| o.in_set())
    }

    /// The acting set of a group: up to `replication` up OSDs ranked by
    /// rendezvous hash, at most one per node. The first entry is primary.
    ///
    /// When fewer distinct up nodes exist than the replication factor the
    /// set is *degraded*: the survivors are returned (possibly none when
    /// every OSD is down) and it is the caller's job to gate writes on
    /// [`OsdMap::min_size`]. Placement itself never panics — losing nodes
    /// must degrade service, not crash it.
    pub fn acting_set(&self, group: rablock_storage::GroupId) -> ActingSet {
        let shard = &self.cache[group.0 as usize % CACHE_SHARDS];
        {
            let guard = shard.lock().expect("acting-set cache poisoned");
            if let Some((epoch, set)) = guard.get(&group.0) {
                if *epoch == self.epoch {
                    return set.clone();
                }
            }
        }
        let set = self.compute_acting_set(group);
        shard
            .lock()
            .expect("acting-set cache poisoned")
            .insert(group.0, (self.epoch, set.clone()));
        set
    }

    /// Weighted rendezvous-hash ranking behind [`OsdMap::acting_set`]'s
    /// cache. Each eligible OSD scores `mix(group, id) × weight` in 128-bit
    /// space, so equal weights reproduce the unweighted ranking exactly (the
    /// common factor preserves order) while a 2× weight draws ~2× the
    /// groups. `mix` is a bijection on u64, so scores only collide across
    /// different weights; ids break those ties deterministically.
    fn compute_acting_set(&self, group: rablock_storage::GroupId) -> ActingSet {
        let mut ranked: Vec<(u128, OsdId, NodeId)> = self
            .in_osds()
            .map(|o| {
                let h = mix((group.0 as u64) << 32 | o.id.0 as u64);
                ((h as u128) * (o.weight as u128), o.id, o.node)
            })
            .collect();
        ranked.sort_by_key(|r| (std::cmp::Reverse(r.0), r.1));
        let mut set = ActingSet::new();
        let mut used_nodes: SmallVec<NodeId, 4> = SmallVec::new();
        for (_, id, node) in ranked {
            if used_nodes.contains(&node) {
                continue;
            }
            used_nodes.push(node);
            set.push(id);
            if set.len() == self.replication {
                return set;
            }
        }
        // Degraded placement: fewer distinct up nodes than the replication
        // factor. Return the survivors; writes are gated on `min_size`.
        set
    }

    /// Whether a group's acting set currently holds fewer members than the
    /// replication factor (some replicas are missing).
    pub fn is_degraded(&self, group: rablock_storage::GroupId) -> bool {
        self.acting_set(group).len() < self.replication
    }

    /// The primary OSD of a group, or `None` when every OSD that could
    /// serve it is down.
    pub fn try_primary(&self, group: rablock_storage::GroupId) -> Option<OsdId> {
        self.acting_set(group).first().copied()
    }

    /// The primary OSD of a group.
    ///
    /// # Panics
    ///
    /// Panics when the acting set is empty (no OSD up at all); callers that
    /// must survive total outage use [`OsdMap::try_primary`].
    pub fn primary(&self, group: rablock_storage::GroupId) -> OsdId {
        self.acting_set(group)[0]
    }

    /// Marks an OSD down and bumps the epoch.
    pub fn mark_down(&mut self, id: OsdId) {
        self.osds[id.0 as usize].up = false;
        self.epoch += 1;
    }

    /// Marks an OSD up (replacement joined) and bumps the epoch.
    pub fn mark_up(&mut self, id: OsdId) {
        self.osds[id.0 as usize].up = true;
        self.epoch += 1;
    }

    /// Registers a new OSD on `node` with the given placement weight and
    /// bumps the epoch. Ids are dense: the new OSD's id equals the previous
    /// map length, so per-OSD driver state indexed by id stays valid.
    pub fn add_osd(&mut self, node: NodeId, weight: u32) -> OsdId {
        let id = OsdId(self.osds.len() as u32);
        self.osds.push(OsdInfo {
            id,
            node,
            up: true,
            weight,
        });
        self.epoch += 1;
        id
    }

    /// Removes an OSD from service and bumps the epoch. The entry is
    /// tombstoned (down, weight 0) rather than deleted so ids stay dense;
    /// drain first via [`OsdMap::set_weight`]`(id, 0)` so replicas hand off
    /// while the OSD is still up.
    pub fn remove_osd(&mut self, id: OsdId) {
        let o = &mut self.osds[id.0 as usize];
        o.up = false;
        o.weight = 0;
        self.epoch += 1;
    }

    /// Changes an OSD's placement weight, bumping the epoch when it actually
    /// changed. Weight 0 drains the OSD: it leaves every acting set (handing
    /// groups to the next-ranked member) while staying up as a push source.
    /// Returns whether the map changed.
    pub fn set_weight(&mut self, id: OsdId, weight: u32) -> bool {
        let o = &mut self.osds[id.0 as usize];
        if o.weight == weight {
            return false;
        }
        o.weight = weight;
        self.epoch += 1;
        true
    }
}

/// The monitor: owns the authoritative map, reacts to failure reports, and
/// detects failures itself from missed heartbeats.
///
/// Time is a plain `u64` nanosecond counter supplied by the caller, so the
/// same monitor serves the deterministic simulation (simulated nanoseconds)
/// and the live driver (wall-clock nanoseconds since start).
#[derive(Debug, Clone)]
pub struct Monitor {
    map: OsdMap,
    /// Last heartbeat receipt per OSD, in caller nanoseconds. Every OSD
    /// starts at 0, i.e. "seen at startup".
    last_heartbeat: Vec<u64>,
    /// Declare an OSD down after this long without a heartbeat.
    grace_nanos: u64,
    /// Rejoin (down→up) count per OSD within the current flap window.
    flap_count: Vec<u32>,
    /// Start of each OSD's current flap-counting window.
    flap_window_start: Vec<u64>,
    /// While `now < held_until[i]` a flapping OSD's rejoins are refused.
    held_until: Vec<u64>,
    /// Rejoining this many times within `flap_window_nanos` trips dampening.
    flap_threshold: u32,
    /// Width of the flap-counting window.
    flap_window_nanos: u64,
    /// How long a tripped OSD is held out before it may rejoin.
    flap_holdout_nanos: u64,
    /// Total rejoins refused by flap dampening (monitor metric).
    flaps_damped: u64,
}

/// Default heartbeat grace window: generous enough that drivers which never
/// feed heartbeats (report-only operation) do not spuriously mark OSDs down.
pub const DEFAULT_HEARTBEAT_GRACE_NANOS: u64 = u64::MAX;

/// Default flap-dampening policy: a 4th rejoin within a 100 ms window holds
/// the OSD out for 20 ms. Generous against ordinary crash/restart cycles
/// (which rejoin once), decisive against sub-window flapping storms.
pub const DEFAULT_FLAP_THRESHOLD: u32 = 4;
/// See [`DEFAULT_FLAP_THRESHOLD`].
pub const DEFAULT_FLAP_WINDOW_NANOS: u64 = 100_000_000;
/// See [`DEFAULT_FLAP_THRESHOLD`].
pub const DEFAULT_FLAP_HOLDOUT_NANOS: u64 = 20_000_000;

impl Monitor {
    /// Creates a monitor owning `map`. Heartbeat detection is effectively
    /// disabled until [`Monitor::set_grace_nanos`] arms it.
    pub fn new(map: OsdMap) -> Self {
        let n = map.osds.len();
        Monitor {
            map,
            last_heartbeat: vec![0; n],
            grace_nanos: DEFAULT_HEARTBEAT_GRACE_NANOS,
            flap_count: vec![0; n],
            flap_window_start: vec![0; n],
            held_until: vec![0; n],
            flap_threshold: DEFAULT_FLAP_THRESHOLD,
            flap_window_nanos: DEFAULT_FLAP_WINDOW_NANOS,
            flap_holdout_nanos: DEFAULT_FLAP_HOLDOUT_NANOS,
            flaps_damped: 0,
        }
    }

    /// Sets the missed-heartbeat window after which an OSD is declared down.
    pub fn set_grace_nanos(&mut self, grace_nanos: u64) {
        self.grace_nanos = grace_nanos;
    }

    /// Sets the flap-dampening policy: `threshold` rejoins within
    /// `window_nanos` hold the OSD out for `holdout_nanos`. A threshold of 0
    /// disables dampening.
    pub fn set_flap_policy(&mut self, threshold: u32, window_nanos: u64, holdout_nanos: u64) {
        self.flap_threshold = threshold;
        self.flap_window_nanos = window_nanos;
        self.flap_holdout_nanos = holdout_nanos;
    }

    /// The current map.
    pub fn map(&self) -> &OsdMap {
        &self.map
    }

    /// How many rejoins flap dampening has refused so far.
    pub fn flaps_damped(&self) -> u64 {
        self.flaps_damped
    }

    /// Whether `osd` is currently held out by flap dampening at `now_nanos`.
    pub fn is_held_out(&self, osd: OsdId, now_nanos: u64) -> bool {
        now_nanos < self.held_until[osd.0 as usize]
    }

    /// Grows per-OSD bookkeeping after the owned map gained OSDs (e.g. via
    /// [`Monitor::admin_add_osd`]). New entries are "seen at `now_nanos`".
    fn sync_osd_count(&mut self, now_nanos: u64) {
        let n = self.map.osds.len();
        self.last_heartbeat.resize(n, now_nanos);
        self.flap_count.resize(n, 0);
        self.flap_window_start.resize(n, now_nanos);
        self.held_until.resize(n, 0);
    }

    /// Records a heartbeat from `osd` at `now_nanos`. A heartbeat from an
    /// OSD currently marked down means it restarted: the monitor marks it up
    /// and returns the map broadcast announcing the rejoin — unless the OSD
    /// has flapped [`Monitor::set_flap_policy`]-many times recently, in
    /// which case the rejoin is refused until the holdout expires.
    pub fn heartbeat(&mut self, osd: OsdId, now_nanos: u64) -> Option<MonMsg> {
        let i = osd.0 as usize;
        self.last_heartbeat[i] = now_nanos;
        if self.map.osd(osd).up {
            return None;
        }
        if now_nanos < self.held_until[i] {
            // Dampened: the flapper keeps reporting in (so liveness state
            // stays fresh) but is not woven back into placement yet.
            self.flaps_damped += 1;
            return None;
        }
        if self.flap_threshold > 0 {
            if now_nanos.saturating_sub(self.flap_window_start[i]) > self.flap_window_nanos {
                self.flap_window_start[i] = now_nanos;
                self.flap_count[i] = 0;
            }
            self.flap_count[i] += 1;
            if self.flap_count[i] >= self.flap_threshold {
                // Tripped: refuse this rejoin and hold the OSD out until it
                // has been stable for the holdout period.
                self.held_until[i] = now_nanos + self.flap_holdout_nanos;
                self.flap_count[i] = 0;
                self.flap_window_start[i] = now_nanos;
                self.flaps_damped += 1;
                return None;
            }
        }
        self.map.mark_up(osd);
        Some(MonMsg::MapUpdate {
            map: self.map.clone(),
        })
    }

    /// Admin: changes an OSD's placement weight and returns the map
    /// broadcast if the map changed. Weight 0 drains; restoring a positive
    /// weight weaves the OSD back in (grow).
    pub fn admin_set_weight(&mut self, osd: OsdId, weight: u32) -> Option<MonMsg> {
        self.map.set_weight(osd, weight).then(|| MonMsg::MapUpdate {
            map: self.map.clone(),
        })
    }

    /// Admin: registers a brand-new OSD and returns its id plus the map
    /// broadcast announcing it.
    pub fn admin_add_osd(&mut self, node: NodeId, weight: u32, now_nanos: u64) -> (OsdId, MonMsg) {
        let id = self.map.add_osd(node, weight);
        self.sync_osd_count(now_nanos);
        (
            id,
            MonMsg::MapUpdate {
                map: self.map.clone(),
            },
        )
    }

    /// Admin: removes an OSD (tombstones it) and returns the broadcast.
    pub fn admin_remove_osd(&mut self, osd: OsdId) -> MonMsg {
        self.map.remove_osd(osd);
        MonMsg::MapUpdate {
            map: self.map.clone(),
        }
    }

    /// Sweeps for OSDs whose last heartbeat is older than the grace window,
    /// marks them down, and returns the map broadcast if anything changed.
    pub fn check_liveness(&mut self, now_nanos: u64) -> Option<MonMsg> {
        let mut changed = false;
        for i in 0..self.map.osds.len() {
            let stale = now_nanos.saturating_sub(self.last_heartbeat[i]) > self.grace_nanos;
            if stale && self.map.osds[i].up {
                self.map.mark_down(OsdId(i as u32));
                changed = true;
            }
        }
        changed.then(|| MonMsg::MapUpdate {
            map: self.map.clone(),
        })
    }

    /// Handles a monitor message; returns the broadcast to send (if any).
    ///
    /// `Heartbeat` messages arriving through this entry point only handle
    /// the rejoin case (no timestamp available); drivers that want liveness
    /// detection call [`Monitor::heartbeat`] / [`Monitor::check_liveness`]
    /// with their clock.
    pub fn handle(&mut self, msg: MonMsg) -> Option<MonMsg> {
        match msg {
            MonMsg::ReportFailure { osd } => {
                if !self.map.osd(osd).up {
                    return None; // already known
                }
                self.map.mark_down(osd);
                Some(MonMsg::MapUpdate {
                    map: self.map.clone(),
                })
            }
            MonMsg::Heartbeat { osd } => {
                if self.map.osd(osd).up {
                    return None;
                }
                self.map.mark_up(osd);
                Some(MonMsg::MapUpdate {
                    map: self.map.clone(),
                })
            }
            MonMsg::MapUpdate { map } => {
                if map.epoch > self.map.epoch {
                    self.map = map;
                    self.sync_osd_count(0);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::GroupId;

    fn map() -> OsdMap {
        OsdMap::new(4, 2, 64, 2)
    }

    #[test]
    fn acting_sets_are_deterministic_and_sized() {
        let m = map();
        for pg in 0..64 {
            let a = m.acting_set(GroupId(pg));
            let b = m.acting_set(GroupId(pg));
            assert_eq!(a, b);
            assert_eq!(a.len(), 2);
            assert_ne!(m.osd(a[0]).node, m.osd(a[1]).node, "replicas span nodes");
        }
    }

    #[test]
    fn groups_spread_across_osds() {
        let m = map();
        let mut counts = vec![0usize; 8];
        for pg in 0..256 {
            for id in m.acting_set(GroupId(pg)) {
                counts[id.0 as usize] += 1;
            }
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 0, "every OSD serves groups: {counts:?}");
        assert!(max < min * 3, "reasonable balance: {counts:?}");
    }

    #[test]
    fn failure_moves_only_affected_groups() {
        let mut m = map();
        let before: Vec<_> = (0..256).map(|pg| m.acting_set(GroupId(pg))).collect();
        m.mark_down(OsdId(3));
        let mut moved = 0;
        for (pg, old) in before.iter().enumerate() {
            let new = m.acting_set(GroupId(pg as u32));
            if old.contains(&OsdId(3)) {
                assert!(!new.contains(&OsdId(3)), "pg{pg} must leave the dead osd");
            } else if *old != new {
                moved += 1;
            }
        }
        // Rendezvous hashing: groups not touching the failed OSD stay put.
        assert_eq!(moved, 0, "unaffected groups must not move");
    }

    #[test]
    fn monitor_bumps_epoch_once_per_failure() {
        let mut mon = Monitor::new(map());
        let e0 = mon.map().epoch;
        let update = mon.handle(MonMsg::ReportFailure { osd: OsdId(1) });
        assert!(matches!(update, Some(MonMsg::MapUpdate { .. })));
        assert_eq!(mon.map().epoch, e0 + 1);
        assert!(mon
            .handle(MonMsg::ReportFailure { osd: OsdId(1) })
            .is_none());
    }

    #[test]
    fn missed_heartbeats_mark_osd_down() {
        let ms = |n: u64| n * 1_000_000;
        let mut mon = Monitor::new(map());
        mon.set_grace_nanos(ms(30));
        // Everyone reports in at 5 ms except osd.3.
        for i in [0, 1, 2, 4, 5, 6, 7] {
            assert!(mon.heartbeat(OsdId(i), ms(5)).is_none());
        }
        // Within grace: no change.
        assert!(mon.check_liveness(ms(20)).is_none());
        // Past grace for osd.3 only (last seen at 0).
        let update = mon.check_liveness(ms(35));
        assert!(matches!(update, Some(MonMsg::MapUpdate { .. })));
        assert!(!mon.map().osd(OsdId(3)).up);
        assert!(mon.map().osd(OsdId(0)).up);
        // Idempotent: re-sweeping at the same instant changes nothing (the
        // other OSDs' 5 ms heartbeats are still within grace at 35 ms).
        assert!(mon.check_liveness(ms(35)).is_none());
    }

    #[test]
    fn heartbeat_from_down_osd_rejoins_it() {
        let ms = |n: u64| n * 1_000_000;
        let mut mon = Monitor::new(map());
        mon.set_grace_nanos(ms(10));
        for i in 0..7 {
            mon.heartbeat(OsdId(i), ms(5));
        }
        assert!(mon.check_liveness(ms(20)).is_some());
        assert!(!mon.map().osd(OsdId(7)).up);
        let e = mon.map().epoch;
        let update = mon.heartbeat(OsdId(7), ms(25));
        assert!(matches!(update, Some(MonMsg::MapUpdate { .. })));
        assert!(mon.map().osd(OsdId(7)).up);
        assert_eq!(mon.map().epoch, e + 1);
        // And it stays up through the next sweep.
        assert!(mon.check_liveness(ms(30)).is_none());
    }

    #[test]
    fn under_replication_returns_survivors() {
        let mut m = OsdMap::new(2, 1, 8, 2);
        m.mark_down(OsdId(0));
        for pg in 0..8 {
            let set = m.acting_set(GroupId(pg));
            assert_eq!(
                set.as_slice(),
                &[OsdId(1)],
                "pg{pg} degrades to the survivor"
            );
            assert!(m.is_degraded(GroupId(pg)));
            assert_eq!(m.try_primary(GroupId(pg)), Some(OsdId(1)));
        }
        // One survivor still satisfies the 2× majority floor (min_size 1).
        assert_eq!(m.min_size, 1);
        assert!(m.acting_set(GroupId(0)).len() >= m.min_size);
    }

    #[test]
    fn total_outage_yields_empty_sets_without_panicking() {
        let mut m = OsdMap::new(2, 1, 8, 2);
        m.mark_down(OsdId(0));
        m.mark_down(OsdId(1));
        assert!(m.acting_set(GroupId(3)).is_empty());
        assert!(m.try_primary(GroupId(3)).is_none());
        assert!(m.acting_set(GroupId(3)).len() < m.min_size, "below quorum");
    }

    #[test]
    fn min_size_is_a_majority_floor() {
        assert_eq!(OsdMap::new(2, 1, 8, 1).min_size, 1);
        assert_eq!(OsdMap::new(2, 1, 8, 2).min_size, 1);
        assert_eq!(OsdMap::new(3, 1, 8, 3).min_size, 2);
    }

    #[test]
    fn zero_weight_excludes_osd_from_placement() {
        let mut m = map();
        m.set_weight(OsdId(3), 0);
        for pg in 0..256 {
            assert!(
                !m.acting_set(GroupId(pg)).contains(&OsdId(3)),
                "drained osd must leave every acting set"
            );
        }
        // Still up: a drained OSD serves as a handoff source.
        assert!(m.osd(OsdId(3)).up);
        assert!(!m.osd(OsdId(3)).in_set());
    }

    #[test]
    fn drain_moves_only_affected_groups() {
        let mut m = map();
        let before: Vec<_> = (0..256).map(|pg| m.acting_set(GroupId(pg))).collect();
        m.set_weight(OsdId(5), 0);
        for (pg, old) in before.iter().enumerate() {
            let new = m.acting_set(GroupId(pg as u32));
            if !old.contains(&OsdId(5)) {
                assert_eq!(&new, old, "pg{pg} moved needlessly on drain");
            }
        }
    }

    #[test]
    fn add_osd_gets_dense_id_and_moves_few_groups() {
        let mut m = map();
        let before: Vec<_> = (0..256).map(|pg| m.acting_set(GroupId(pg))).collect();
        let id = m.add_osd(NodeId(4), DEFAULT_OSD_WEIGHT);
        assert_eq!(id, OsdId(8), "ids stay dense");
        let mut moved = 0;
        for (pg, old) in before.iter().enumerate() {
            let new = m.acting_set(GroupId(pg as u32));
            if &new != old {
                assert!(new.contains(&id), "pg{pg} may only move onto the new osd");
                moved += 1;
            }
        }
        // Rendezvous: the newcomer captures ~replication/(n+1) of the groups.
        assert!(moved > 0, "a unit-weight newcomer must attract some groups");
        assert!(
            moved <= 2 * 2 * 256 / 9 + 8,
            "movement stays near the minimal share: {moved}"
        );
    }

    #[test]
    fn double_weight_attracts_roughly_double_share() {
        let mut m = map();
        m.set_weight(OsdId(0), 2 * DEFAULT_OSD_WEIGHT);
        let mut counts = vec![0usize; 8];
        for pg in 0..1024 {
            for id in m.acting_set(GroupId(pg)) {
                counts[id.0 as usize] += 1;
            }
        }
        let others = counts[1..].iter().sum::<usize>() / 7;
        assert!(
            counts[0] > others * 3 / 2,
            "2x-weight osd should hold well over its equal share: {counts:?}"
        );
    }

    #[test]
    fn mutations_bump_epoch_monotonically() {
        let mut m = map();
        let mut last = m.epoch;
        let id = m.add_osd(NodeId(4), DEFAULT_OSD_WEIGHT);
        assert!(m.epoch > last);
        last = m.epoch;
        assert!(m.set_weight(id, 3 * DEFAULT_OSD_WEIGHT));
        assert!(m.epoch > last);
        last = m.epoch;
        // No-op weight change leaves the epoch alone.
        assert!(!m.set_weight(id, 3 * DEFAULT_OSD_WEIGHT));
        assert_eq!(m.epoch, last);
        m.remove_osd(id);
        assert!(m.epoch > last);
        assert!(!m.osd(id).up);
        assert_eq!(m.osd(id).weight, 0);
    }

    #[test]
    fn flapping_osd_is_held_out_until_stable() {
        let ms = |n: u64| n * 1_000_000;
        let mut mon = Monitor::new(map());
        mon.set_grace_nanos(ms(10));
        mon.set_flap_policy(3, ms(100), ms(50));
        // Three down/up cycles in quick succession: the third rejoin trips
        // the damper.
        let mut rejoined = 0;
        for cycle in 0..3u64 {
            let t = ms(5 + cycle * 10);
            mon.map.mark_down(OsdId(2));
            if mon.heartbeat(OsdId(2), t).is_some() {
                rejoined += 1;
            }
        }
        assert_eq!(rejoined, 2, "third rejoin within the window is refused");
        assert_eq!(mon.flaps_damped(), 1);
        assert!(!mon.map().osd(OsdId(2)).up);
        assert!(mon.is_held_out(OsdId(2), ms(30)));
        // Still held: rejoin attempts during the holdout are counted and
        // refused.
        assert!(mon.heartbeat(OsdId(2), ms(40)).is_none());
        assert_eq!(mon.flaps_damped(), 2);
        // After the holdout the OSD is readmitted.
        let update = mon.heartbeat(OsdId(2), ms(80));
        assert!(matches!(update, Some(MonMsg::MapUpdate { .. })));
        assert!(mon.map().osd(OsdId(2)).up);
    }

    #[test]
    fn admin_mutations_broadcast_map_updates() {
        let mut mon = Monitor::new(map());
        let e0 = mon.map().epoch;
        let update = mon.admin_set_weight(OsdId(1), 0);
        assert!(matches!(update, Some(MonMsg::MapUpdate { .. })));
        assert_eq!(mon.map().epoch, e0 + 1);
        // Idempotent: re-applying the same weight is a no-op.
        assert!(mon.admin_set_weight(OsdId(1), 0).is_none());
        let (id, _) = mon.admin_add_osd(NodeId(9), DEFAULT_OSD_WEIGHT, 0);
        assert_eq!(id, OsdId(8));
        // The monitor's liveness bookkeeping grew with the map.
        assert!(mon.heartbeat(id, 1).is_none());
    }
}
