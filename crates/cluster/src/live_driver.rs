//! Real-thread cluster runtime.
//!
//! The same sans-io OSD state machines that run under the deterministic
//! simulation also run here, on real OS threads connected by channels: one
//! event-loop thread per OSD, synchronous device completion (the in-memory
//! backends are durable the moment they return), and blocking clients.
//!
//! This driver exists to demonstrate that the protocol core is a real
//! concurrent system, to back the runnable examples, and to cross-check the
//! simulation: any behavioral divergence between the two drivers is a bug
//! in one of them, not in the protocol.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rablock_storage::{ObjectId, Payload, StoreError};

use crate::msg::{ClientId, ClientReply, ClientReq, OpId};
use crate::osd::{Osd, OsdConfig, OsdEffect, OsdInput};
use crate::placement::{OsdId, OsdMap};
use crate::retry::RetryPolicy;

enum LiveMsg {
    Input(OsdInput),
    Shutdown,
}

type ClientTxs = Arc<Mutex<HashMap<u32, Sender<ClientReply>>>>;

/// A running cluster of real OSD threads.
pub struct LiveCluster {
    map: Arc<RwLock<OsdMap>>,
    osd_txs: Vec<Sender<LiveMsg>>,
    handles: Vec<JoinHandle<()>>,
    client_txs: ClientTxs,
    next_client: AtomicU64,
}

impl LiveCluster {
    /// Spawns one event-loop thread per OSD of `map`, all configured from
    /// the `cfg` template.
    pub fn start(map: OsdMap, cfg: OsdConfig) -> Self {
        let client_txs: ClientTxs = Arc::new(Mutex::new(HashMap::new()));
        let mut osd_txs = Vec::new();
        let mut osd_rxs: Vec<Receiver<LiveMsg>> = Vec::new();
        for _ in &map.osds {
            let (tx, rx) = unbounded();
            osd_txs.push(tx);
            osd_rxs.push(rx);
        }
        let mut handles = Vec::new();
        for (i, rx) in osd_rxs.into_iter().enumerate() {
            let mut osd = Osd::new(OsdId(i as u32), cfg.clone(), map.clone());
            let peers = osd_txs.clone();
            let clients = client_txs.clone();
            handles.push(std::thread::spawn(move || {
                osd_event_loop(&mut osd, rx, &peers, &clients);
            }));
        }
        LiveCluster {
            map: Arc::new(RwLock::new(map)),
            osd_txs,
            handles,
            client_txs,
            next_client: AtomicU64::new(0),
        }
    }

    /// A snapshot of the current cluster map.
    pub fn map(&self) -> OsdMap {
        self.map.read().clone()
    }

    /// Fails an OSD (§IV-A-4): its thread stops, the map epoch bumps, every
    /// survivor receives the update (triggering flush-but-keep and the
    /// replacement's log pull), and clients re-route/retry automatically.
    pub fn fail_osd(&self, osd: OsdId) {
        {
            let mut map = self.map.write();
            if !map.osd(osd).up {
                return;
            }
            map.mark_down(osd);
        }
        let _ = self.osd_txs[osd.0 as usize].send(LiveMsg::Shutdown);
        let map = self.map.read().clone();
        for (i, tx) in self.osd_txs.iter().enumerate() {
            if i != osd.0 as usize {
                let _ = tx.send(LiveMsg::Input(OsdInput::MapUpdate(map.clone())));
            }
        }
    }

    /// Opens a new blocking client handle with a default retry policy
    /// (200 ms timeout, exponential backoff with jitter, 10 attempts).
    /// Clients are cheap; open one per worker thread.
    pub fn client(&self) -> LiveClient {
        self.client_with_retry(RetryPolicy {
            timeout_nanos: 200_000_000,
            backoff_base_nanos: 5_000_000,
            backoff_multiplier: 2.0,
            jitter_frac: 0.2,
            max_attempts: 10,
        })
    }

    /// Opens a new blocking client handle with an explicit retry policy.
    pub fn client_with_retry(&self, retry: RetryPolicy) -> LiveClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed) as u32);
        let (tx, rx) = unbounded();
        self.client_txs.lock().insert(id.0, tx);
        LiveClient {
            id,
            map: Arc::clone(&self.map),
            osd_txs: self.osd_txs.clone(),
            rx,
            next_op: AtomicU64::new(1),
            retry,
        }
    }

    /// Stops every OSD thread and waits for them to exit.
    ///
    /// # Panics
    ///
    /// Panics if an OSD thread itself panicked.
    pub fn shutdown(self) {
        for tx in &self.osd_txs {
            let _ = tx.send(LiveMsg::Shutdown);
        }
        for h in self.handles {
            h.join().expect("osd thread exited cleanly");
        }
    }
}

fn osd_event_loop(
    osd: &mut Osd,
    rx: Receiver<LiveMsg>,
    peers: &[Sender<LiveMsg>],
    clients: &ClientTxs,
) {
    while let Ok(msg) = rx.recv() {
        let input = match msg {
            LiveMsg::Input(input) => input,
            LiveMsg::Shutdown => return,
        };
        // Process the input and chase synchronous completions: the live
        // backends are durable on return, so StoreIo effects complete
        // immediately.
        let mut work = vec![input];
        let mut fx = Vec::new();
        while let Some(input) = work.pop() {
            fx.clear();
            osd.handle_into(input, &mut fx);
            for effect in fx.drain(..) {
                match effect {
                    OsdEffect::SendPeer { to, msg } => {
                        let from = osd.id;
                        let _ =
                            peers[to.0 as usize].send(LiveMsg::Input(OsdInput::Peer { from, msg }));
                    }
                    OsdEffect::Reply { to, msg } => {
                        let guard = clients.lock();
                        if let Some(tx) = guard.get(&to.0) {
                            let _ = tx.send(msg);
                        }
                    }
                    OsdEffect::StoreIo { token, wait, .. } => {
                        if wait {
                            work.push(OsdInput::StoreDurable { token });
                        }
                    }
                    OsdEffect::WakeFlush { group } => {
                        work.push(OsdInput::FlushGroup { group });
                    }
                    OsdEffect::WakeRead { token } => {
                        work.push(OsdInput::ReadFromStore { token });
                    }
                    OsdEffect::WakeSubmit { token } => {
                        work.push(OsdInput::SubmitDeferred { token });
                    }
                    OsdEffect::WakeMaintenance => {
                        work.push(OsdInput::MaintStep);
                    }
                    // Liveness in the live driver is driven directly by
                    // `LiveCluster::fail_osd`; heartbeat beacons only feed
                    // the simulated monitor.
                    OsdEffect::Heartbeat => {}
                    OsdEffect::NvmWritten { .. } | OsdEffect::Maintained { .. } => {}
                }
            }
        }
    }
}

/// A blocking client handle onto a [`LiveCluster`].
///
/// Serialize operations per handle (one in flight at a time); open one
/// client per worker thread. On an OSD failure, in-flight operations are
/// retried against the new primary under the handle's [`RetryPolicy`] —
/// safe because primaries deduplicate retried `(client, op)` pairs, so a
/// retry of an already-applied write re-acks without re-applying. When the
/// retry budget runs out the operation surfaces [`StoreError::Timeout`]
/// instead of spinning forever.
pub struct LiveClient {
    id: ClientId,
    map: Arc<RwLock<OsdMap>>,
    osd_txs: Vec<Sender<LiveMsg>>,
    rx: Receiver<ClientReply>,
    next_op: AtomicU64,
    retry: RetryPolicy,
}

impl LiveClient {
    fn submit(&self, req: ClientReq) -> ClientReply {
        let want = req.op();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // `try_primary` rather than `primary`: a group with nobody up
            // has no target yet — back off and re-resolve once the monitor
            // republishes the map.
            let primary = self.map.read().try_primary(req.oid().group());
            if let Some(primary) = primary {
                let _ = self.osd_txs[primary.0 as usize].send(LiveMsg::Input(OsdInput::Client {
                    from: self.id,
                    req: req.clone(),
                }));
                // Wait out this attempt's timeout window. Replies for other
                // op ids (duplicates of an earlier attempt, or replies that
                // beat a previous timeout) are drained and ignored without
                // burning the attempt budget. A `Degraded` rejection burns
                // the attempt like a timeout: the write quorum may return
                // after recovery.
                let deadline = Instant::now() + Duration::from_nanos(self.retry.timeout_nanos);
                loop {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(left) {
                        Ok(ClientReply::Error {
                            op,
                            error: StoreError::Degraded,
                        }) if op == want => break,
                        Ok(reply) if reply.op() == want => return reply,
                        Ok(_) => continue, // stale or duplicate reply: ignore
                        Err(_) => break,   // this attempt timed out
                    }
                }
            }
            if !self.retry.should_retry(attempt) {
                return ClientReply::Error {
                    op: want,
                    error: StoreError::Timeout,
                };
            }
            // Deterministic jitter (no RNG dependency): spread retries by
            // hashing the op id and attempt counter.
            let h = (want.0 ^ (attempt as u64) << 32).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let jitter = (h >> 11) as f64 / (1u64 << 53) as f64;
            std::thread::sleep(Duration::from_nanos(
                self.retry.backoff_nanos(attempt, jitter),
            ));
        }
    }

    fn op(&self) -> OpId {
        OpId(self.next_op.fetch_add(1, Ordering::Relaxed))
    }

    /// Pre-creates an object of `size` bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn create(&self, oid: ObjectId, size: u64) -> Result<(), StoreError> {
        match self.submit(ClientReq::Create {
            op: self.op(),
            oid,
            size,
        }) {
            ClientReply::Done { .. } => Ok(()),
            ClientReply::Error { error, .. } => Err(error),
            ClientReply::Data { .. } => unreachable!("create never returns data"),
        }
    }

    /// Writes `data` at `offset`, replicated and durable on return.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn write(
        &self,
        oid: ObjectId,
        offset: u64,
        data: impl Into<Payload>,
    ) -> Result<(), StoreError> {
        match self.submit(ClientReq::Write {
            op: self.op(),
            oid,
            offset,
            data: data.into(),
        }) {
            ClientReply::Done { .. } => Ok(()),
            ClientReply::Error { error, .. } => Err(error),
            ClientReply::Data { .. } => unreachable!("write never returns data"),
        }
    }

    /// Reads `len` bytes at `offset` with strong consistency.
    ///
    /// # Errors
    ///
    /// Propagates backend errors ([`StoreError::NotFound`], bounds).
    pub fn read(&self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        match self.submit(ClientReq::Read {
            op: self.op(),
            oid,
            offset,
            len,
        }) {
            ClientReply::Data { data, .. } => Ok(data.to_vec()),
            ClientReply::Error { error, .. } => Err(error),
            ClientReply::Done { .. } => unreachable!("read always returns data"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osd::PipelineMode;
    use rablock_cos::CosOptions;
    use rablock_lsm::LsmOptions;
    use rablock_storage::GroupId;

    fn cfg(mode: PipelineMode) -> OsdConfig {
        OsdConfig {
            mode,
            device_bytes: 48 << 20,
            nvm_bytes: 8 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 8,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        }
    }

    fn cluster(mode: PipelineMode) -> LiveCluster {
        LiveCluster::start(OsdMap::new(2, 1, 8, 2), cfg(mode))
    }

    #[test]
    fn live_write_read_round_trip_dop() {
        let c = cluster(PipelineMode::Dop);
        let client = c.client();
        let oid = ObjectId::new(GroupId(3), 7);
        client.create(oid, 1 << 20).unwrap();
        client.write(oid, 4096, vec![0xEE; 8192]).unwrap();
        assert_eq!(client.read(oid, 4096, 8192).unwrap(), vec![0xEE; 8192]);
        c.shutdown();
    }

    #[test]
    fn live_write_read_round_trip_original() {
        let c = cluster(PipelineMode::Original);
        let client = c.client();
        let oid = ObjectId::new(GroupId(2), 9);
        client.write(oid, 0, vec![0x42; 4096]).unwrap();
        assert_eq!(client.read(oid, 0, 4096).unwrap(), vec![0x42; 4096]);
        c.shutdown();
    }

    #[test]
    fn concurrent_clients_do_not_corrupt() {
        let c = cluster(PipelineMode::Dop);
        let mut joins = Vec::new();
        for w in 0..4u8 {
            let client = c.client();
            joins.push(std::thread::spawn(move || {
                let oid = ObjectId::new(GroupId(w as u32 % 8), 100 + w as u64);
                client.create(oid, 1 << 20).unwrap();
                for i in 0..50u64 {
                    let fill = w.wrapping_mul(31).wrapping_add(i as u8);
                    client
                        .write(oid, (i % 16) * 4096, vec![fill; 4096])
                        .unwrap();
                    let got = client.read(oid, (i % 16) * 4096, 4096).unwrap();
                    assert_eq!(got, vec![fill; 4096], "worker {w} op {i}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        c.shutdown();
    }

    #[test]
    fn flush_threshold_crossing_keeps_reads_consistent() {
        let c = cluster(PipelineMode::Dop);
        let client = c.client();
        let oid = ObjectId::new(GroupId(1), 1);
        client.create(oid, 1 << 20).unwrap();
        // Push well past the flush threshold; every read must see the
        // latest write regardless of whether it is in the log or the store.
        for i in 0..64u64 {
            client
                .write(oid, (i % 8) * 4096, vec![i as u8; 4096])
                .unwrap();
            let got = client.read(oid, (i % 8) * 4096, 4096).unwrap();
            assert_eq!(got, vec![i as u8; 4096], "op {i}");
        }
        c.shutdown();
    }

    #[test]
    fn missing_object_reports_not_found() {
        let c = cluster(PipelineMode::Dop);
        let client = c.client();
        let oid = ObjectId::new(GroupId(5), 12345);
        assert_eq!(client.read(oid, 0, 64), Err(StoreError::NotFound));
        c.shutdown();
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::osd::PipelineMode;
    use rablock_cos::CosOptions;
    use rablock_lsm::LsmOptions;
    use rablock_storage::GroupId;

    #[test]
    fn writes_survive_replica_failure_live() {
        // Three nodes: replication 2 survives one failure.
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 48 << 20,
            nvm_bytes: 8 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 8,
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        let c = LiveCluster::start(OsdMap::new(3, 1, 8, 2), cfg);
        let client = c.client();
        let group = GroupId(0);
        let oid = ObjectId::new(group, 5);
        client.create(oid, 1 << 20).unwrap();
        for i in 0..20u64 {
            client
                .write(oid, (i % 8) * 4096, vec![i as u8; 4096])
                .unwrap();
        }
        // Kill the group's secondary mid-stream.
        let secondary = c.map().acting_set(group)[1];
        c.fail_osd(secondary);
        // Writes and reads keep working against the new acting set.
        for i in 20..40u64 {
            client
                .write(oid, (i % 8) * 4096, vec![i as u8; 4096])
                .unwrap();
        }
        for block in 0..8u64 {
            let newest = (0..40u64).rev().find(|i| i % 8 == block).unwrap();
            assert_eq!(
                client.read(oid, block * 4096, 4096).unwrap(),
                vec![newest as u8; 4096],
                "block {block}"
            );
        }
        let new_set = c.map().acting_set(group);
        assert!(!new_set.contains(&secondary));
        c.shutdown();
    }

    #[test]
    fn primary_failure_promotes_and_recovers_acknowledged_writes() {
        let cfg = OsdConfig {
            mode: PipelineMode::Dop,
            device_bytes: 48 << 20,
            nvm_bytes: 8 << 20,
            ring_bytes: 256 << 10,
            flush_threshold: 64, // keep data in the op log to stress recovery
            lsm: LsmOptions::tiny(),
            cos: CosOptions::tiny(),
            ..OsdConfig::default()
        };
        let c = LiveCluster::start(OsdMap::new(3, 1, 8, 2), cfg);
        let client = c.client();
        let group = GroupId(1);
        let oid = ObjectId::new(group, 9);
        client.create(oid, 1 << 20).unwrap();
        for i in 0..16u64 {
            client
                .write(oid, (i % 4) * 4096, vec![(i + 1) as u8; 4096])
                .unwrap();
        }
        // Kill the PRIMARY: the secondary (which logged every write in its
        // NVM) is promoted and must serve the latest acknowledged data.
        let primary = c.map().acting_set(group)[0];
        c.fail_osd(primary);
        for block in 0..4u64 {
            let newest = (0..16u64).rev().find(|i| i % 4 == block).unwrap();
            assert_eq!(
                client.read(oid, block * 4096, 4096).unwrap(),
                vec![(newest + 1) as u8; 4096],
                "block {block} after primary failover"
            );
        }
        c.shutdown();
    }
}
