//! # rablock-cluster — the distributed block-object cluster
//!
//! The cluster layer of the `rablock` workspace: a Ceph-like object storage
//! cluster rebuilt around the paper's three ideas (decoupled operation
//! processing, prioritized thread control, CPU-efficient object store),
//! together with every baseline it is measured against.
//!
//! * [`osd::Osd`] — the OSD daemon as a sans-io state machine, selectable
//!   via [`osd::PipelineMode`] between stock Ceph (`Original`), the roofline
//!   RTC variants, the `Cos`/`Ptc` ablations, the full `Dop` system, and
//!   the `Ideal` upper bound.
//! * [`placement`] — versioned cluster map with rendezvous-hash placement
//!   and a minimal monitor.
//! * [`sim_driver::ClusterSim`] — the deterministic simulation driver that
//!   regenerates the paper's figures: simulated cores/threads/devices,
//!   tagged CPU accounting, real backends inside.
//! * [`live_driver`] — the same protocol on real OS threads and channels.
//! * [`costs::CostModel`] — the per-stage CPU cost model (calibrated once
//!   against Fig. 1).
//! * [`invariants::HistoryChecker`] + [`retry::RetryPolicy`] — safety
//!   checking and the exactly-once client path for fault-injection runs.

#![warn(missing_docs)]

pub mod costs;
pub mod invariants;
pub mod live_driver;
pub mod msg;
pub mod osd;
pub mod placement;
pub mod retry;
pub mod sim_driver;
