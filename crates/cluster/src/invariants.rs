//! History invariant checking for fault-injection runs.
//!
//! [`HistoryChecker`] records every acked write and every completed read,
//! per object block, and asserts two safety properties across arbitrary
//! fault schedules:
//!
//! * **No acked write is lost** — once a write is acknowledged, every later
//!   read of that block returns its data (until a newer write supersedes it).
//! * **Read-your-writes** — a read never returns data from a write that was
//!   neither acknowledged nor still in flight at read completion, and never
//!   returns torn (mixed-fill) data.
//!
//! The checker assumes the workload discipline the drivers' verification
//! workloads follow: writes fill a whole `(object, offset, len)` block with
//! one byte value, and each block has at most one writer at a time (blocks
//! are partitioned across client connections). Under that discipline the
//! legal values of a block at any instant are exactly: the last acked fill,
//! or the fill of a still-pending (issued, unacked) write.
//!
//! Violations panic with a precise description, so a failing seeded chaos
//! run is its own reproducer.

use std::collections::HashMap;

use crate::msg::{ClientId, OpId};
use rablock_storage::ObjectId;

/// One block's verification state.
#[derive(Debug, Default, Clone)]
struct BlockState {
    /// Fill byte of the newest acknowledged write, if any.
    last_acked: Option<u8>,
    /// Issued-but-unacked writes: `(client, op, fill)`.
    pending: Vec<(ClientId, OpId, u8)>,
}

/// Block key: `(object, offset, len)`.
type BlockKey = (u64, u64, u64);

/// Records acked writes and completed reads; panics on a safety violation.
#[derive(Debug, Default, Clone)]
pub struct HistoryChecker {
    blocks: HashMap<BlockKey, BlockState>,
    /// Issued writes by `(client, op)`, for ack resolution.
    ops: HashMap<(u32, u64), BlockKey>,
    /// Completed reads checked so far.
    reads_checked: u64,
    /// Writes acked so far.
    writes_acked: u64,
}

impl HistoryChecker {
    /// A fresh checker with no recorded history.
    pub fn new() -> Self {
        HistoryChecker::default()
    }

    fn key(oid: ObjectId, offset: u64, len: u64) -> BlockKey {
        (oid.raw(), offset, len)
    }

    /// Records that `client` issued write `op` filling the block with `fill`.
    pub fn write_issued(
        &mut self,
        client: ClientId,
        op: OpId,
        oid: ObjectId,
        offset: u64,
        len: u64,
        fill: u8,
    ) {
        let key = Self::key(oid, offset, len);
        self.ops.insert((client.0, op.0), key);
        let block = self.blocks.entry(key).or_default();
        block
            .pending
            .retain(|(c, o, _)| !(*c == client && *o == op));
        block.pending.push((client, op, fill));
    }

    /// Records that write `op` from `client` was acknowledged. Idempotent:
    /// a duplicate ack (retried op) leaves state unchanged.
    pub fn write_acked(&mut self, client: ClientId, op: OpId) {
        let Some(key) = self.ops.get(&(client.0, op.0)).copied() else {
            return; // not a tracked write (read op, or duplicate after cleanup)
        };
        let block = self.blocks.get_mut(&key).expect("issued write has a block");
        if let Some(pos) = block
            .pending
            .iter()
            .position(|(c, o, _)| *c == client && *o == op)
        {
            let (_, _, fill) = block.pending.remove(pos);
            block.last_acked = Some(fill);
            self.writes_acked += 1;
        }
    }

    /// Checks a completed read of the block against the recorded history.
    ///
    /// # Panics
    ///
    /// Panics if the data is torn (not a single fill byte) or the fill value
    /// does not correspond to the last acked write or a still-pending write.
    pub fn read_checked(&mut self, oid: ObjectId, offset: u64, len: u64, data: &[u8]) {
        self.reads_checked += 1;
        assert_eq!(
            data.len() as u64,
            len,
            "short read of {oid:?} [{offset}, +{len}): got {} bytes",
            data.len()
        );
        let fill = data.first().copied().unwrap_or(0);
        assert!(
            data.iter().all(|&b| b == fill),
            "torn read of {oid:?} [{offset}, +{len}): mixed fill bytes"
        );
        let block = self.blocks.get(&Self::key(oid, offset, len));
        let legal = match block {
            // Never written: any fill would be suspect, but drivers only
            // read written blocks; an untracked block accepts zeros.
            None => fill == 0,
            Some(b) => b.last_acked == Some(fill) || b.pending.iter().any(|(_, _, f)| *f == fill),
        };
        assert!(
            legal,
            "history violation reading {oid:?} [{offset}, +{len}): saw fill {fill:#x}, \
             last acked {:?}, pending {:?} — an acked write was lost or a stale \
             value resurfaced",
            block.and_then(|b| b.last_acked),
            block.map(|b| b.pending.iter().map(|(_, _, f)| *f).collect::<Vec<_>>()),
        );
    }

    /// Number of reads validated so far.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Number of write acks recorded so far.
    pub fn writes_acked(&self) -> u64 {
        self.writes_acked
    }
}

/// One replica's object listing for divergence checking: a display label
/// plus `(raw object id, content digest)` pairs, `None` digest meaning the
/// replica could not serve the object.
pub type ReplicaListing = (String, Vec<(u64, Option<u64>)>);

/// Compares per-replica `(object, digest)` listings and describes every
/// object whose content differs between replicas. Each listing is a
/// `(label, entries)` pair; a `None` digest means the replica could not
/// serve the object at all. The first listing is the reference. Returns
/// one description per divergent object; empty means byte-identical
/// replicas (under a collision-resistant digest).
///
/// Post-quiesce recovery checks use this: after faults stop and recovery
/// converges, every acting-set member must produce identical listings.
pub fn diff_replica_digests(replicas: &[ReplicaListing]) -> Vec<String> {
    let mut out = Vec::new();
    let Some((ref_label, _)) = replicas.first() else {
        return out;
    };
    let maps: Vec<HashMap<u64, Option<u64>>> = replicas
        .iter()
        .map(|(_, entries)| entries.iter().copied().collect())
        .collect();
    let mut oids: Vec<u64> = replicas
        .iter()
        .flat_map(|(_, entries)| entries.iter().map(|(oid, _)| *oid))
        .collect();
    oids.sort_unstable();
    oids.dedup();
    for oid in oids {
        let reference = maps[0].get(&oid).copied().flatten();
        for ((label, _), map) in replicas.iter().zip(&maps).skip(1) {
            let got = map.get(&oid).copied().flatten();
            if got != reference {
                out.push(format!(
                    "object {oid:#x}: {label} has {got:?}, {ref_label} has {reference:?}"
                ));
            }
        }
    }
    out
}

/// One replica's persistent-checksum listing for consistency checking: a
/// display label plus `(raw object id, size, checksum-vector digest)`
/// triples as reported by the backend's light-scrub metadata (no data
/// blocks are read to produce one).
pub type DigestListing = (String, Vec<(u64, u64, u64)>);

/// Replica digest consistency: every acting-set member must persist the
/// same `(size, checksum-vector digest)` for every object of the group.
/// Returns one description per disagreeing object; empty means the
/// persistent checksum metadata is identical across replicas.
///
/// This is the *metadata* companion to [`diff_replica_digests`]: it
/// compares what the checksums say the content is, without reading any
/// data, so it is cheap enough to assert at quiesce in every chaos and
/// churn property test. Note the deliberate blind spot: bit rot under a
/// correct checksum vector is invisible here (the checksums still describe
/// the originally-written bytes) — that is exactly the gap deep scrub
/// closes by re-reading data.
pub fn replica_digest_consistency(replicas: &[DigestListing]) -> Vec<String> {
    let mut out = Vec::new();
    let Some((ref_label, _)) = replicas.first() else {
        return out;
    };
    let maps: Vec<HashMap<u64, (u64, u64)>> = replicas
        .iter()
        .map(|(_, entries)| entries.iter().map(|&(o, s, d)| (o, (s, d))).collect())
        .collect();
    let mut oids: Vec<u64> = replicas
        .iter()
        .flat_map(|(_, entries)| entries.iter().map(|(o, _, _)| *o))
        .collect();
    oids.sort_unstable();
    oids.dedup();
    for oid in oids {
        let reference = maps[0].get(&oid).copied();
        for ((label, _), map) in replicas.iter().zip(&maps).skip(1) {
            let got = map.get(&oid).copied();
            if got != reference {
                out.push(format!(
                    "object {oid:#x}: {label} persists (size, csum digest) {got:?}, \
                     {ref_label} persists {reference:?}"
                ));
            }
        }
    }
    out
}

/// Relative capacity imbalance across a set of OSD fill levels: the largest
/// deviation from the mean fill, as a fraction of the mean
/// (`(max_fill - mean) / mean`). Returns 0.0 when the set is empty or holds
/// no bytes at all (an empty cluster is perfectly balanced).
///
/// Pass the fill of *placement-eligible* OSDs only — drained and removed
/// OSDs legitimately hold stale bytes while their groups hand off.
pub fn capacity_imbalance(fills: &[u64]) -> f64 {
    if fills.is_empty() {
        return 0.0;
    }
    let total: u64 = fills.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / fills.len() as f64;
    let max = *fills.iter().max().expect("non-empty") as f64;
    (max - mean) / mean
}

/// Asserts the capacity-imbalance invariant after quiesce: no OSD may
/// exceed the mean fill by more than `tolerance` (e.g. 1.0 = 100% over
/// mean). Returns one description per violation; empty means balanced.
pub fn check_capacity_imbalance(fills: &[u64], tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    if fills.is_empty() {
        return out;
    }
    let total: u64 = fills.iter().sum();
    if total == 0 {
        return out;
    }
    let mean = total as f64 / fills.len() as f64;
    for (i, &fill) in fills.iter().enumerate() {
        let dev = (fill as f64 - mean) / mean;
        if dev > tolerance {
            out.push(format!(
                "osd index {i}: fill {fill} exceeds mean {mean:.0} by {:.0}% \
                 (tolerance {:.0}%)",
                dev * 100.0,
                tolerance * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::GroupId;

    fn oid() -> ObjectId {
        ObjectId::new(GroupId(3), 7)
    }

    #[test]
    fn acked_write_then_matching_read_passes() {
        let mut h = HistoryChecker::new();
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0xAA);
        h.write_acked(ClientId(0), OpId(1));
        h.read_checked(oid(), 0, 4, &[0xAA; 4]);
        assert_eq!(h.reads_checked(), 1);
        assert_eq!(h.writes_acked(), 1);
    }

    #[test]
    fn pending_write_value_is_legal() {
        let mut h = HistoryChecker::new();
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0xAA);
        h.write_acked(ClientId(0), OpId(1));
        h.write_issued(ClientId(0), OpId(2), oid(), 0, 4, 0xBB);
        // Both old-acked and new-pending values are linearizable outcomes.
        h.read_checked(oid(), 0, 4, &[0xAA; 4]);
        h.read_checked(oid(), 0, 4, &[0xBB; 4]);
    }

    #[test]
    fn duplicate_ack_is_idempotent() {
        let mut h = HistoryChecker::new();
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0xAA);
        h.write_acked(ClientId(0), OpId(1));
        h.write_acked(ClientId(0), OpId(1));
        assert_eq!(h.writes_acked(), 1);
    }

    #[test]
    #[should_panic(expected = "history violation")]
    fn lost_acked_write_detected() {
        let mut h = HistoryChecker::new();
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0xAA);
        h.write_acked(ClientId(0), OpId(1));
        h.write_issued(ClientId(0), OpId(2), oid(), 0, 4, 0xBB);
        h.write_acked(ClientId(0), OpId(2));
        // 0xAA was superseded by an acked 0xBB: seeing it again is a loss.
        h.read_checked(oid(), 0, 4, &[0xAA; 4]);
    }

    #[test]
    #[should_panic(expected = "torn read")]
    fn torn_read_detected() {
        let mut h = HistoryChecker::new();
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0xAA);
        h.write_acked(ClientId(0), OpId(1));
        h.read_checked(oid(), 0, 4, &[0xAA, 0xAA, 0xBB, 0xAA]);
    }

    #[test]
    fn identical_replica_digests_diff_clean() {
        let replicas = vec![
            ("osd0".to_string(), vec![(1, Some(10)), (2, Some(20))]),
            ("osd1".to_string(), vec![(2, Some(20)), (1, Some(10))]),
        ];
        assert!(diff_replica_digests(&replicas).is_empty());
    }

    #[test]
    fn divergent_and_missing_objects_are_described() {
        let replicas = vec![
            ("osd0".to_string(), vec![(1, Some(10)), (2, Some(20))]),
            ("osd1".to_string(), vec![(1, Some(11))]),
        ];
        let diffs = diff_replica_digests(&replicas);
        // Object 1 differs, object 2 is absent on osd1.
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains("object 0x1"), "{diffs:?}");
        assert!(diffs[1].contains("object 0x2"), "{diffs:?}");
    }

    #[test]
    fn unreadable_on_both_sides_is_not_divergence() {
        let replicas = vec![
            ("osd0".to_string(), vec![(1, None)]),
            ("osd1".to_string(), vec![(1, None)]),
        ];
        assert!(diff_replica_digests(&replicas).is_empty());
    }

    #[test]
    fn digest_consistency_flags_size_and_digest_drift() {
        let replicas = vec![
            ("osd0".to_string(), vec![(1, 4096, 10), (2, 8192, 20)]),
            ("osd1".to_string(), vec![(1, 4096, 10), (2, 8192, 20)]),
        ];
        assert!(replica_digest_consistency(&replicas).is_empty());
        let replicas = vec![
            ("osd0".to_string(), vec![(1, 4096, 10), (2, 8192, 20)]),
            ("osd1".to_string(), vec![(1, 8192, 10), (2, 8192, 21)]),
        ];
        let diffs = replica_digest_consistency(&replicas);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        let replicas = vec![
            ("osd0".to_string(), vec![(1, 4096, 10)]),
            ("osd1".to_string(), Vec::new()),
        ];
        assert_eq!(replica_digest_consistency(&replicas).len(), 1);
    }

    #[test]
    fn capacity_imbalance_measures_max_deviation_from_mean() {
        assert_eq!(capacity_imbalance(&[]), 0.0);
        assert_eq!(capacity_imbalance(&[0, 0, 0]), 0.0);
        assert_eq!(capacity_imbalance(&[100, 100, 100]), 0.0);
        // Mean 100, max 150 → 50% over mean.
        let im = capacity_imbalance(&[50, 100, 150]);
        assert!((im - 0.5).abs() < 1e-9, "{im}");
        assert!(check_capacity_imbalance(&[50, 100, 150], 0.6).is_empty());
        let violations = check_capacity_imbalance(&[50, 100, 150], 0.4);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("osd index 2"), "{violations:?}");
    }

    #[test]
    fn same_op_id_on_different_clients_do_not_collide() {
        let mut h = HistoryChecker::new();
        let other = ObjectId::new(GroupId(3), 8);
        h.write_issued(ClientId(0), OpId(1), oid(), 0, 4, 0x11);
        h.write_issued(ClientId(1), OpId(1), other, 0, 4, 0x22);
        h.write_acked(ClientId(0), OpId(1));
        h.read_checked(oid(), 0, 4, &[0x11; 4]);
        // Client 1's write is still pending on its own block.
        h.read_checked(other, 0, 4, &[0x22; 4]);
    }
}
