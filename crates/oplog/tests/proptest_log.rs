//! Model-based property tests for the NVM operation log.

use proptest::prelude::*;
use rablock_oplog::GroupLog;
use rablock_storage::{GroupId, NvmRegion, ObjectId, Op, StoreError, Transaction};

#[derive(Debug, Clone)]
enum LogOp {
    Append {
        obj: u64,
        offset: u64,
        len: u16,
        fill: u8,
    },
    Drain(u8),
    Reboot,
}

fn script() -> impl Strategy<Value = Vec<LogOp>> {
    proptest::collection::vec(
        prop_oneof![
            5 => (0u64..8, 0u64..32_768, 1u16..2048, any::<u8>())
                .prop_map(|(obj, offset, len, fill)| LogOp::Append { obj, offset, len, fill }),
            2 => (1u8..8).prop_map(LogOp::Drain),
            1 => Just(LogOp::Reboot),
        ],
        1..60,
    )
}

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId(3), i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log is an exact FIFO of acknowledged transactions, across
    /// arbitrary drain points and reboots (NVM recovery).
    #[test]
    fn log_is_a_durable_fifo(ops in script()) {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut log = GroupLog::format(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
        // Model: the sequence of not-yet-drained transactions.
        let mut pending: Vec<Transaction> = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                LogOp::Append { obj, offset, len, fill } => {
                    seq += 1;
                    let txn = Transaction::new(
                        GroupId(3),
                        seq,
                        vec![Op::Write { oid: oid(obj), offset, data: vec![fill; len as usize].into() }],
                    );
                    match log.append(&mut nvm, txn.clone()) {
                        Ok(_) => pending.push(txn),
                        Err(StoreError::NoSpace) => {
                            // Model the synchronous-flush fallback: drain all.
                            let drained = log.drain_for_flush(&mut nvm, usize::MAX).unwrap();
                            prop_assert_eq!(&drained, &pending);
                            pending.clear();
                            log.append(&mut nvm, txn.clone()).unwrap();
                            pending.push(txn);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                LogOp::Drain(n) => {
                    let drained = log.drain_for_flush(&mut nvm, n as usize).unwrap();
                    let expect: Vec<Transaction> = pending.drain(..drained.len()).collect();
                    prop_assert_eq!(drained, expect);
                }
                LogOp::Reboot => {
                    nvm.reboot();
                    log = GroupLog::recover(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
                }
            }
            prop_assert_eq!(log.pending(), pending.len());
        }
        // Final recovery must reproduce exactly the pending suffix.
        nvm.reboot();
        let recovered = GroupLog::recover(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
        let txns: Vec<Transaction> = recovered.export_records().into_iter().map(|r| r.txn).collect();
        prop_assert_eq!(txns, pending);
    }

    /// Differential CRC-reject property: flipping any single bit of any
    /// committed record makes crash recovery reject exactly the records
    /// from the flipped one onward and keep every earlier one intact — no
    /// rotted record is ever replayed as valid data, and rot never bleeds
    /// backwards into its predecessors.
    #[test]
    fn single_bit_rot_rejects_exactly_the_damaged_suffix(
        lens in proptest::collection::vec((1u16..512, any::<u8>()), 2..12),
        victim_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut log = GroupLog::format(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
        let mut txns = Vec::new();
        let mut offsets = vec![0u64]; // queued-byte offset of each record
        for (i, (len, fill)) in lens.iter().enumerate() {
            let txn = Transaction::new(
                GroupId(3),
                i as u64 + 1,
                vec![Op::Write { oid: oid(i as u64), offset: 0, data: vec![*fill; *len as usize].into() }],
            );
            let before = log.nvm_used();
            log.append(&mut nvm, txn.clone()).unwrap();
            offsets.push(offsets.last().unwrap() + (log.nvm_used() - before));
            txns.push(txn);
        }
        // Pick a victim record and a byte within it.
        let victim = ((victim_frac * txns.len() as f64) as usize).min(txns.len() - 1);
        let rec_len = offsets[victim + 1] - offsets[victim];
        let byte = offsets[victim] + ((byte_frac * rec_len as f64) as u64).min(rec_len - 1);
        prop_assert!(log.rot_bit(&mut nvm, byte, bit).unwrap());

        // The in-memory mirror is clean: rot stays latent until a crash.
        prop_assert_eq!(log.pending(), txns.len());

        // Strict recovery refuses the whole log instead of serving rot.
        nvm.reboot();
        prop_assert!(matches!(
            GroupLog::recover(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX),
            Err(StoreError::Corrupt(_))
        ));
        // Truncating recovery keeps exactly the clean prefix (and persists
        // the truncation, which is why the strict check ran first).
        let (recovered, discarded) =
            GroupLog::recover_truncating(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
        let kept: Vec<Transaction> =
            recovered.export_records().into_iter().map(|r| r.txn).collect();
        prop_assert_eq!(&kept, &txns[..victim],
            "exactly the records before the flipped one survive");
        prop_assert_eq!(discarded, offsets[txns.len()] - offsets[victim],
            "everything from the damaged record onward is discarded");
    }

    /// read_path never returns stale data: a covering FromLog answer always
    /// matches the newest pending write for that range.
    #[test]
    fn read_path_returns_newest(writes in proptest::collection::vec(
        (0u64..4, 0u64..8192, 1u16..1024, any::<u8>()), 1..24)) {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut log = GroupLog::format(&mut nvm, GroupId(3), 0, 1 << 20, usize::MAX).unwrap();
        let mut newest: std::collections::HashMap<u64, (u64, u64, u8)> = Default::default();
        for (i, (obj, offset, len, fill)) in writes.iter().enumerate() {
            let txn = Transaction::new(
                GroupId(3),
                i as u64 + 1,
                vec![Op::Write { oid: oid(*obj), offset: *offset, data: vec![*fill; *len as usize].into() }],
            );
            log.append(&mut nvm, txn).unwrap();
            newest.insert(*obj, (*offset, *len as u64, *fill));
        }
        for (obj, (offset, len, fill)) in newest {
            match log.read_path(oid(obj), offset, len) {
                rablock_oplog::ReadPath::FromLog(data) => {
                    prop_assert_eq!(data, vec![fill; len as usize]);
                }
                rablock_oplog::ReadPath::FlushThenStore => {} // conservative is fine
                rablock_oplog::ReadPath::Store => {
                    return Err(TestCaseError::fail("pending write invisible to read path"));
                }
            }
        }
    }
}
