//! NVM ring buffer backing one group's operation log.
//!
//! Records append at the head and are consumed (flushed to the backend
//! store) from the tail, exactly the producer/consumer structure of §IV-A:
//! priority threads produce, non-priority threads consume. Head and tail are
//! monotone byte counters persisted in a small CRC-protected header, so a
//! crashed node recovers its log by scanning `[tail, head)`.

use rablock_storage::{NvmRegion, StoreError};

use crate::entry::crc32;

const HEADER_BYTES: u64 = 48;
const MAGIC: u32 = 0x4F50_4C47; // "OPLG"
/// A persistent ring of encoded log records inside an [`NvmRegion`] slice.
#[derive(Debug, Clone)]
pub struct NvmRing {
    base: u64,
    data_cap: u64,
    /// Monotone byte counter of the next append position.
    head: u64,
    /// Monotone byte counter of the oldest un-flushed byte.
    tail: u64,
}

impl NvmRing {
    /// Creates a fresh ring over `[base, base+len)` of the region.
    ///
    /// # Panics
    ///
    /// Panics if `len` is too small to hold the header plus one record.
    pub fn format(nvm: &mut NvmRegion, base: u64, len: u64) -> Result<Self, StoreError> {
        assert!(len > HEADER_BYTES + 64, "ring of {len} bytes is too small");
        let ring = NvmRing {
            base,
            data_cap: len - HEADER_BYTES,
            head: 0,
            tail: 0,
        };
        ring.write_header(nvm)?;
        Ok(ring)
    }

    /// Reopens a ring after a reboot, validating the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on bad magic/CRC.
    pub fn open(nvm: &mut NvmRegion, base: u64, len: u64) -> Result<Self, StoreError> {
        let raw = nvm.read(base, HEADER_BYTES)?;
        let stored_crc = u32::from_le_bytes(raw[36..40].try_into().expect("4 bytes"));
        if crc32(&raw[..36]) != stored_crc {
            return Err(StoreError::Corrupt(
                "operation-log header crc mismatch".into(),
            ));
        }
        if u32::from_le_bytes(raw[..4].try_into().expect("4 bytes")) != MAGIC {
            return Err(StoreError::Corrupt("operation-log header bad magic".into()));
        }
        let data_cap = u64::from_le_bytes(raw[4..12].try_into().expect("8 bytes"));
        if data_cap != len - HEADER_BYTES {
            return Err(StoreError::Corrupt("operation-log geometry changed".into()));
        }
        let head = u64::from_le_bytes(raw[12..20].try_into().expect("8 bytes"));
        let tail = u64::from_le_bytes(raw[20..28].try_into().expect("8 bytes"));
        Ok(NvmRing {
            base,
            data_cap,
            head,
            tail,
        })
    }

    fn write_header(&self, nvm: &mut NvmRegion) -> Result<(), StoreError> {
        let mut raw = [0u8; HEADER_BYTES as usize];
        raw[..4].copy_from_slice(&MAGIC.to_le_bytes());
        raw[4..12].copy_from_slice(&self.data_cap.to_le_bytes());
        raw[12..20].copy_from_slice(&self.head.to_le_bytes());
        raw[20..28].copy_from_slice(&self.tail.to_le_bytes());
        let crc = crc32(&raw[..36]);
        raw[36..40].copy_from_slice(&crc.to_le_bytes());
        nvm.write(self.base, &raw)
    }

    /// Base offset of the ring within its NVM region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total region length (header plus data capacity).
    pub fn region_len(&self) -> u64 {
        self.data_cap + HEADER_BYTES
    }

    /// Bytes currently queued.
    pub fn used(&self) -> u64 {
        self.head - self.tail
    }

    /// Bytes available for appends.
    pub fn available(&self) -> u64 {
        self.data_cap - self.used()
    }

    /// Appends one encoded record. Records may wrap around the region end
    /// (split into two physical writes); the logical stream stays
    /// contiguous.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when the ring cannot take the record — the
    /// caller must flush synchronously first (paper §IV-A: when NVM is full
    /// the logging degenerates to synchronous flushing).
    pub fn append(&mut self, nvm: &mut NvmRegion, record: &[u8]) -> Result<(), StoreError> {
        self.write_record(nvm, record)?;
        self.write_header(nvm)
    }

    /// Appends a batch of encoded records with a single header update at the
    /// end (group-commit admission: one persisted head advance covers the
    /// whole batch). All-or-nothing: space for the entire batch is checked up
    /// front, so a [`StoreError::NoSpace`] leaves the persisted state
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when the ring cannot take the whole batch.
    pub fn append_batch(
        &mut self,
        nvm: &mut NvmRegion,
        records: &[Vec<u8>],
    ) -> Result<(), StoreError> {
        let total: u64 = records.iter().map(|r| r.len() as u64).sum();
        if total > self.available() {
            return Err(StoreError::NoSpace);
        }
        for record in records {
            self.write_record(nvm, record)?;
        }
        self.write_header(nvm)
    }

    fn write_record(&mut self, nvm: &mut NvmRegion, record: &[u8]) -> Result<(), StoreError> {
        let len = record.len() as u64;
        assert!(len < self.data_cap, "record larger than the whole ring");
        if len > self.available() {
            return Err(StoreError::NoSpace);
        }
        let mut written = 0u64;
        while written < len {
            let pos = (self.head + written) % self.data_cap;
            let chunk = (self.data_cap - pos).min(len - written);
            nvm.write(
                self.base + HEADER_BYTES + pos,
                &record[written as usize..(written + chunk) as usize],
            )?;
            written += chunk;
        }
        self.head += len;
        Ok(())
    }

    /// Consumes `len` bytes from the tail (one or more records were flushed;
    /// a drained batch advances the tail once for the whole batch).
    pub fn consume(&mut self, nvm: &mut NvmRegion, len: u64) -> Result<(), StoreError> {
        debug_assert!(self.tail + len <= self.head, "consuming past the head");
        self.tail += len;
        self.write_header(nvm)
    }

    /// Truncates the head so that only `new_used` queued bytes remain,
    /// discarding the newest `used() - new_used` bytes (torn-tail recovery:
    /// a half-written final record is cut off, never re-served).
    ///
    /// # Errors
    ///
    /// Propagates NVM header-update errors.
    pub fn truncate_head(&mut self, nvm: &mut NvmRegion, new_used: u64) -> Result<(), StoreError> {
        debug_assert!(
            new_used <= self.used(),
            "cannot truncate to more than is queued"
        );
        self.head = self.tail + new_used;
        self.write_header(nvm)
    }

    /// Fault injection: corrupts the newest `len` queued bytes in place
    /// (bit-flips every byte), modelling a crash that tears the tail of the
    /// last append. Recovery must detect the damage by checksum.
    ///
    /// # Errors
    ///
    /// Propagates NVM access errors.
    pub fn corrupt_suffix(&self, nvm: &mut NvmRegion, len: u64) -> Result<(), StoreError> {
        let len = len.min(self.used());
        let mut at = self.head - len;
        while at < self.head {
            let pos = at % self.data_cap;
            let chunk = (self.data_cap - pos).min(self.head - at);
            let mut buf = nvm.read(self.base + HEADER_BYTES + pos, chunk)?;
            for b in &mut buf {
                *b ^= 0xFF;
            }
            nvm.write(self.base + HEADER_BYTES + pos, &buf)?;
            at += chunk;
        }
        Ok(())
    }

    /// Fault injection: flips one bit of the `nth` queued byte (modulo the
    /// queued length), modelling silent NVM bit rot inside a committed
    /// record. Returns `false` on an empty ring.
    ///
    /// # Errors
    ///
    /// Propagates NVM access errors.
    pub fn corrupt_bit(&self, nvm: &mut NvmRegion, nth: u64, bit: u8) -> Result<bool, StoreError> {
        if self.used() == 0 {
            return Ok(false);
        }
        let at = self.tail + nth % self.used();
        let pos = at % self.data_cap;
        let mut b = nvm.read(self.base + HEADER_BYTES + pos, 1)?;
        b[0] ^= 1 << (bit % 8);
        nvm.write(self.base + HEADER_BYTES + pos, &b)?;
        Ok(true)
    }

    /// Reads the queued bytes `[tail, head)` in order (recovery scan).
    ///
    /// # Errors
    ///
    /// Propagates NVM access errors.
    pub fn queued_bytes(&self, nvm: &mut NvmRegion) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(self.used() as usize);
        let mut at = self.tail;
        while at < self.head {
            let pos = at % self.data_cap;
            let chunk = (self.data_cap - pos).min(self.head - at);
            out.extend_from_slice(&nvm.read(self.base + HEADER_BYTES + pos, chunk)?);
            at += chunk;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: u64) -> (NvmRegion, NvmRing) {
        let mut nvm = NvmRegion::new(cap + HEADER_BYTES);
        let ring = NvmRing::format(&mut nvm, 0, cap + HEADER_BYTES).unwrap();
        (nvm, ring)
    }

    #[test]
    fn append_consume_cycle() {
        let (mut nvm, mut r) = ring(256);
        r.append(&mut nvm, &[1u8; 64]).unwrap();
        r.append(&mut nvm, &[2u8; 64]).unwrap();
        assert_eq!(r.used(), 128);
        let q = r.queued_bytes(&mut nvm).unwrap();
        assert_eq!(&q[..64], &[1u8; 64][..]);
        assert_eq!(&q[64..], &[2u8; 64][..]);
        r.consume(&mut nvm, 64).unwrap();
        assert_eq!(r.used(), 64);
        assert_eq!(r.queued_bytes(&mut nvm).unwrap(), vec![2u8; 64]);
    }

    #[test]
    fn fills_up_and_reports_no_space() {
        let (mut nvm, mut r) = ring(128);
        r.append(&mut nvm, &[0u8; 100]).unwrap();
        assert_eq!(r.append(&mut nvm, &[0u8; 100]), Err(StoreError::NoSpace));
        r.consume(&mut nvm, 100).unwrap();
        r.append(&mut nvm, &[0u8; 100]).unwrap();
    }

    #[test]
    fn wraps_across_the_region_end() {
        let (mut nvm, mut r) = ring(256);
        r.append(&mut nvm, &[1u8; 200]).unwrap();
        r.consume(&mut nvm, 200).unwrap();
        // Next append would cross the end: wraps to physical 0.
        r.append(&mut nvm, &[2u8; 100]).unwrap();
        assert_eq!(r.queued_bytes(&mut nvm).unwrap(), vec![2u8; 100]);
        r.consume(&mut nvm, 100).unwrap();
        assert_eq!(r.used(), 0);
    }

    #[test]
    fn survives_reopen() {
        let mut nvm = NvmRegion::new(512);
        let mut r = NvmRing::format(&mut nvm, 0, 512).unwrap();
        r.append(&mut nvm, b"alpha-record").unwrap();
        r.append(&mut nvm, b"beta-record!").unwrap();
        r.consume(&mut nvm, 12).unwrap();
        nvm.reboot();
        let r2 = NvmRing::open(&mut nvm, 0, 512).unwrap();
        assert_eq!(r2.used(), r.used());
        assert_eq!(r2.queued_bytes(&mut nvm).unwrap(), b"beta-record!");
    }

    #[test]
    fn corrupt_suffix_then_truncate_recovers_prefix() {
        let (mut nvm, mut r) = ring(256);
        r.append(&mut nvm, &[1u8; 64]).unwrap();
        r.append(&mut nvm, &[2u8; 64]).unwrap();
        // Tear the second half of the last record.
        r.corrupt_suffix(&mut nvm, 32).unwrap();
        let q = r.queued_bytes(&mut nvm).unwrap();
        assert_eq!(&q[..64], &[1u8; 64][..]);
        assert_eq!(&q[64..96], &[2u8; 32][..]);
        assert_eq!(&q[96..], &[!2u8; 32][..], "torn bytes are flipped");
        // Truncate the damaged record away.
        r.truncate_head(&mut nvm, 64).unwrap();
        assert_eq!(r.used(), 64);
        assert_eq!(r.queued_bytes(&mut nvm).unwrap(), vec![1u8; 64]);
        // The ring still works after truncation.
        r.append(&mut nvm, &[3u8; 64]).unwrap();
        assert_eq!(r.queued_bytes(&mut nvm).unwrap()[64..], [3u8; 64][..]);
    }

    #[test]
    fn bit_flipped_record_rejected_by_checksum_on_replay() {
        use crate::entry::LogRecord;
        use rablock_storage::{GroupId, ObjectId, Op, Transaction};

        let (mut nvm, mut r) = ring(4096);
        let oid = ObjectId::new(GroupId(0), 1);
        let recs: Vec<Vec<u8>> = (0..3u64)
            .map(|seq| {
                LogRecord {
                    version: 1,
                    seq,
                    txn: Transaction::new(
                        GroupId(0),
                        seq,
                        vec![Op::Write {
                            oid,
                            offset: 0,
                            data: vec![seq as u8; 128].into(),
                        }],
                    ),
                }
                .encode()
            })
            .collect();
        for rec in &recs {
            r.append(&mut nvm, rec).unwrap();
        }
        // Flip a single bit in the middle of the newest record's body — the
        // device-level corruption a torn NVM write leaves behind.
        let at = r.head - recs[2].len() as u64 / 2;
        let pos = at % r.data_cap;
        let mut b = nvm.read(r.base + HEADER_BYTES + pos, 1).unwrap();
        b[0] ^= 0x04;
        nvm.write(r.base + HEADER_BYTES + pos, &b).unwrap();

        // Replay the queued stream: the intact records decode, the damaged
        // one fails its CRC instead of being served back as valid data.
        let q = r.queued_bytes(&mut nvm).unwrap();
        let mut pos = 0usize;
        let mut decoded = 0;
        let err = loop {
            match LogRecord::decode(&q[pos..]) {
                Ok((rec, consumed)) => {
                    assert_eq!(rec.seq, decoded as u64);
                    decoded += 1;
                    pos += consumed;
                }
                Err(e) => break e,
            }
        };
        assert_eq!(decoded, 2, "records before the flip replay fine");
        assert!(
            matches!(err, StoreError::Corrupt(_)),
            "flip caught by crc: {err}"
        );
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut nvm = NvmRegion::new(512);
        let _ = NvmRing::format(&mut nvm, 0, 512).unwrap();
        let mut raw = nvm.read(0, 4).unwrap();
        raw[0] ^= 0xFF;
        nvm.write(0, &raw).unwrap();
        assert!(matches!(
            NvmRing::open(&mut nvm, 0, 512),
            Err(StoreError::Corrupt(_))
        ));
    }
}
