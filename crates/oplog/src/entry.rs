//! Log-record encoding: transactions serialized into NVM.
//!
//! Each appended record carries the paper's §IV-A-1 fields — logical group
//! id, version, sequence number — plus the full transaction (offset, data,
//! operation type per op), CRC-framed so recovery can trust what it reads.

use rablock_storage::{GroupId, ObjectId, Op, StoreError, Transaction};

/// One durable record in a group's operation log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Group version at append time (paper: version per logical group).
    pub version: u64,
    /// Global sequence number of the transaction.
    pub seq: u64,
    /// The logged transaction.
    pub txn: Transaction,
}

const POLY: u32 = 0xEDB8_8320;

pub(crate) fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// Streaming form: feeds `data` into a raw (pre-inversion) CRC state, so a
/// record's checksum can be computed piecewise as its body is built.
/// `crc32(d) == !crc32_update(!0, d)`, and resuming with more bytes extends
/// the checksummed stream.
fn crc32_update(state: u32, data: &[u8]) -> u32 {
    // Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
    // per iteration instead of one. Identical output to the classic
    // byte-at-a-time form (same polynomial, same reflection).
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// `sum ^= mat * vec` over GF(2): `mat` is a 32×32 bit matrix stored as
/// column vectors, `vec` a 32-bit vector.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// The GF(2) operator that advances a finalized CRC-32 past `len` zero
/// bytes — i.e. multiplication by `x^(8·len)` mod the CRC polynomial.
/// Building it costs ~2·log₂(len) matrix squarings, so operators are
/// memoized per distinct length (payload sizes cluster on a handful of
/// values per workload).
fn crc32_shift_op(len: u64) -> [u32; 32] {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static OPS: RefCell<HashMap<u64, [u32; 32]>> = RefCell::new(HashMap::new());
    }
    OPS.with(|ops| {
        if let Some(op) = ops.borrow().get(&len) {
            return *op;
        }
        // Operator for one zero byte (shift by 8 bits), as in zlib's
        // crc32_combine: odd = poly operator, square twice per bit of len.
        let mut odd = [0u32; 32];
        odd[0] = POLY;
        let mut row = 1u32;
        for entry in odd.iter_mut().skip(1) {
            *entry = row;
            row <<= 1;
        }
        let mut even = [0u32; 32];
        gf2_matrix_square(&mut even, &odd); // 2 bits
        gf2_matrix_square(&mut odd, &even); // 4 bits

        // Identity operator, then fold in a squaring per bit of `len`.
        let mut acc = [0u32; 32];
        for (n, entry) in acc.iter_mut().enumerate() {
            *entry = 1 << n;
        }
        let mut remaining = len;
        loop {
            gf2_matrix_square(&mut even, &odd); // 8·2^k bits
            if remaining & 1 != 0 {
                acc = {
                    let mut next = [0u32; 32];
                    for (n, entry) in next.iter_mut().enumerate() {
                        *entry = gf2_matrix_times(&even, acc[n]);
                    }
                    next
                };
            }
            remaining >>= 1;
            if remaining == 0 {
                break;
            }
            gf2_matrix_square(&mut odd, &even);
            if remaining & 1 != 0 {
                acc = {
                    let mut next = [0u32; 32];
                    for (n, entry) in next.iter_mut().enumerate() {
                        *entry = gf2_matrix_times(&odd, acc[n]);
                    }
                    next
                };
            }
            remaining >>= 1;
            if remaining == 0 {
                break;
            }
        }
        ops.borrow_mut().insert(len, acc);
        acc
    })
}

/// Splices a precomputed block checksum into a streaming CRC: given the raw
/// state after some prefix `A` and the finalized `crc32(B)`, returns the
/// raw state after `A || B` without touching `B`'s bytes. Identical to
/// feeding `B` through [`crc32_update`] (zlib's crc32_combine, restated on
/// raw states).
fn crc32_splice(state: u32, block_crc: u32, block_len: u64) -> u32 {
    if block_len == 0 {
        return state;
    }
    let op = crc32_shift_op(block_len);
    // Finalized prefix CRC shifted past the block, xor the block's CRC,
    // back to raw state.
    !(gf2_matrix_times(&op, !state) ^ block_crc)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, StoreError> {
        let end = self.pos + 4;
        if end > self.data.len() {
            return Err(trunc());
        }
        let v = u32::from_le_bytes(self.data[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        let end = self.pos + 8;
        if end > self.data.len() {
            return Err(trunc());
        }
        let v = u64::from_le_bytes(self.data[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }
    fn byte(&mut self) -> Result<u8, StoreError> {
        if self.pos >= self.data.len() {
            return Err(trunc());
        }
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }
    fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        if end > self.data.len() {
            return Err(trunc());
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

fn trunc() -> StoreError {
    StoreError::Corrupt("truncated operation-log record".into())
}

impl LogRecord {
    /// Serializes the record (header + ops + trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        // One allocation, sized for the common case (a few ops dominated by
        // write payloads); the 8-byte frame (length + CRC) is reserved up
        // front and backpatched, avoiding a second full-record copy.
        let cap = 8 + 32 + self.txn.user_bytes() as usize + self.txn.ops.len() * 64;
        let mut body = Vec::with_capacity(cap);
        body.extend_from_slice(&[0u8; 8]);
        // The record CRC is computed streamingly as the body is built, so
        // large write payloads can contribute a *memoized* block checksum
        // (spliced in via the GF(2) shift operator) instead of being
        // re-scanned for every replica's append of the same shared buffer.
        // `crc_state` covers `body[8..crc_pos]`; the tail past `crc_pos` is
        // folded in at the end.
        const CRC_SPLICE_MIN: usize = 512;
        let mut crc_state = !0u32;
        let mut crc_pos = 8usize;
        put_u64(&mut body, self.version);
        put_u64(&mut body, self.seq);
        put_u32(&mut body, self.txn.group.0);
        put_u64(&mut body, self.txn.seq);
        put_u32(&mut body, self.txn.ops.len() as u32);
        for op in &self.txn.ops {
            match op {
                Op::Create { oid, size } => {
                    body.push(0);
                    put_u64(&mut body, oid.raw());
                    put_u64(&mut body, *size);
                }
                Op::Write { oid, offset, data } => {
                    body.push(1);
                    put_u64(&mut body, oid.raw());
                    put_u64(&mut body, *offset);
                    put_u32(&mut body, data.len() as u32);
                    if data.len() >= CRC_SPLICE_MIN {
                        crc_state = crc32_update(crc_state, &body[crc_pos..]);
                        let block = data.cached_full_checksum(crc32);
                        crc_state = crc32_splice(crc_state, block, data.len() as u64);
                        body.extend_from_slice(data);
                        crc_pos = body.len();
                    } else {
                        body.extend_from_slice(data);
                    }
                }
                Op::SetXattr { oid, key, value } => {
                    body.push(2);
                    put_u64(&mut body, oid.raw());
                    put_bytes(&mut body, key.as_bytes());
                    put_bytes(&mut body, value);
                }
                Op::MetaPut { key, value } => {
                    body.push(3);
                    put_bytes(&mut body, key);
                    put_bytes(&mut body, value);
                }
                Op::MetaDelete { key } => {
                    body.push(4);
                    put_bytes(&mut body, key);
                }
                Op::Delete { oid } => {
                    body.push(5);
                    put_u64(&mut body, oid.raw());
                }
            }
        }
        let body_len = (body.len() - 8) as u32;
        let crc = !crc32_update(crc_state, &body[crc_pos..]);
        body[0..4].copy_from_slice(&body_len.to_le_bytes());
        body[4..8].copy_from_slice(&crc.to_le_bytes());
        body
    }

    /// Decodes one record from the start of `raw`; returns the record and
    /// the encoded length consumed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on truncation or CRC mismatch (expected crash
    /// residue at the ring head).
    pub fn decode(raw: &[u8]) -> Result<(LogRecord, usize), StoreError> {
        let mut r = Reader { data: raw, pos: 0 };
        let len = r.u32()? as usize;
        let stored_crc = r.u32()?;
        if r.pos + len > raw.len() {
            return Err(trunc());
        }
        let body = &raw[r.pos..r.pos + len];
        if crc32(body) != stored_crc {
            return Err(StoreError::Corrupt(
                "operation-log record crc mismatch".into(),
            ));
        }
        let mut b = Reader { data: body, pos: 0 };
        let version = b.u64()?;
        let seq = b.u64()?;
        let group = GroupId(b.u32()?);
        let txn_seq = b.u64()?;
        let nops = b.u32()? as usize;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            let tag = b.byte()?;
            ops.push(match tag {
                0 => Op::Create {
                    oid: ObjectId::from_raw(b.u64()?),
                    size: b.u64()?,
                },
                1 => {
                    let oid = ObjectId::from_raw(b.u64()?);
                    let offset = b.u64()?;
                    let data = b.bytes()?.into();
                    Op::Write { oid, offset, data }
                }
                2 => {
                    let oid = ObjectId::from_raw(b.u64()?);
                    let key = String::from_utf8(b.bytes()?.to_vec())
                        .map_err(|_| StoreError::Corrupt("non-utf8 xattr key".into()))?;
                    let value = b.bytes()?.to_vec();
                    Op::SetXattr { oid, key, value }
                }
                3 => Op::MetaPut {
                    key: b.bytes()?.to_vec(),
                    value: b.bytes()?.to_vec(),
                },
                4 => Op::MetaDelete {
                    key: b.bytes()?.to_vec(),
                },
                5 => Op::Delete {
                    oid: ObjectId::from_raw(b.u64()?),
                },
                t => return Err(StoreError::Corrupt(format!("unknown op tag {t}"))),
            });
        }
        Ok((
            LogRecord {
                version,
                seq,
                txn: Transaction::new(group, txn_seq, ops),
            },
            8 + len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        let oid = ObjectId::new(GroupId(3), 42);
        LogRecord {
            version: 7,
            seq: 1001,
            txn: Transaction::new(
                GroupId(3),
                1001,
                vec![
                    Op::Create { oid, size: 4 << 20 },
                    Op::Write {
                        oid,
                        offset: 8192,
                        data: vec![0xCD; 4096].into(),
                    },
                    Op::SetXattr {
                        oid,
                        key: "oi".into(),
                        value: vec![1, 2],
                    },
                    Op::MetaPut {
                        key: b"pglog.3.7".to_vec(),
                        value: vec![5; 30],
                    },
                    Op::MetaDelete {
                        key: b"pglog.3.1".to_vec(),
                    },
                    Op::Delete { oid },
                ],
            ),
        }
    }

    #[test]
    fn spliced_crc_matches_direct_scan() {
        // The streaming + splice path must produce the exact CRC a flat
        // scan of the body would, for any split of prefix/block/tail.
        let a: Vec<u8> = (0u8..=255).cycle().take(733).collect();
        let b: Vec<u8> = (0u8..=255).rev().cycle().take(4096).collect();
        let c: Vec<u8> = vec![0xA5; 17];
        let whole: Vec<u8> = [a.as_slice(), b.as_slice(), c.as_slice()].concat();
        let mut state = crc32_update(!0, &a);
        state = crc32_splice(state, crc32(&b), b.len() as u64);
        state = crc32_update(state, &c);
        assert_eq!(!state, crc32(&whole));
        // Zero-length block is the identity.
        assert_eq!(crc32_splice(state, crc32(&[]), 0), state);
    }

    #[test]
    fn encode_crc_identical_with_and_without_splice() {
        // A record whose payload crosses the splice threshold must encode
        // byte-identically to the flat computation (decode re-checks the
        // CRC over the raw bytes, so a mismatch would fail here).
        let oid = ObjectId::new(GroupId(3), 9);
        let rec = LogRecord {
            version: 5,
            seq: 11,
            txn: Transaction::new(
                GroupId(3),
                11,
                vec![Op::Write {
                    oid,
                    offset: 8192,
                    data: vec![0x5A; 4096].into(),
                }],
            ),
        };
        let raw = rec.encode();
        let stored = u32::from_le_bytes(raw[4..8].try_into().unwrap());
        assert_eq!(stored, crc32(&raw[8..]));
        let (back, used) = LogRecord::decode(&raw).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, raw.len());
    }

    #[test]
    fn encode_decode_round_trip() {
        let rec = sample();
        let raw = rec.encode();
        let (decoded, consumed) = LogRecord::decode(&raw).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn decode_consumes_exact_length_with_trailing_garbage() {
        let rec = sample();
        let mut raw = rec.encode();
        let len = raw.len();
        raw.extend_from_slice(&[0xFF; 32]);
        let (decoded, consumed) = LogRecord::decode(&raw).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(consumed, len);
    }

    #[test]
    fn corruption_detected() {
        let mut raw = sample().encode();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        assert!(matches!(
            LogRecord::decode(&raw),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let raw = sample().encode();
        for cut in [0, 3, 7, raw.len() - 1] {
            assert!(LogRecord::decode(&raw[..cut]).is_err(), "cut at {cut}");
        }
    }
}
