//! Log-record encoding: transactions serialized into NVM.
//!
//! Each appended record carries the paper's §IV-A-1 fields — logical group
//! id, version, sequence number — plus the full transaction (offset, data,
//! operation type per op), CRC-framed so recovery can trust what it reads.

use rablock_storage::{GroupId, ObjectId, Op, StoreError, Transaction};

/// One durable record in a group's operation log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Group version at append time (paper: version per logical group).
    pub version: u64,
    /// Global sequence number of the transaction.
    pub seq: u64,
    /// The logged transaction.
    pub txn: Transaction,
}

pub(crate) fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
    // per iteration instead of one. Identical output to the classic
    // byte-at-a-time form (same polynomial, same reflection).
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, StoreError> {
        let end = self.pos + 4;
        if end > self.data.len() {
            return Err(trunc());
        }
        let v = u32::from_le_bytes(self.data[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        let end = self.pos + 8;
        if end > self.data.len() {
            return Err(trunc());
        }
        let v = u64::from_le_bytes(self.data[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }
    fn byte(&mut self) -> Result<u8, StoreError> {
        if self.pos >= self.data.len() {
            return Err(trunc());
        }
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }
    fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        if end > self.data.len() {
            return Err(trunc());
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

fn trunc() -> StoreError {
    StoreError::Corrupt("truncated operation-log record".into())
}

impl LogRecord {
    /// Serializes the record (header + ops + trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        // One allocation, sized for the common case (a few ops dominated by
        // write payloads); the 8-byte frame (length + CRC) is reserved up
        // front and backpatched, avoiding a second full-record copy.
        let cap = 8 + 32 + self.txn.user_bytes() as usize + self.txn.ops.len() * 64;
        let mut body = Vec::with_capacity(cap);
        body.extend_from_slice(&[0u8; 8]);
        put_u64(&mut body, self.version);
        put_u64(&mut body, self.seq);
        put_u32(&mut body, self.txn.group.0);
        put_u64(&mut body, self.txn.seq);
        put_u32(&mut body, self.txn.ops.len() as u32);
        for op in &self.txn.ops {
            match op {
                Op::Create { oid, size } => {
                    body.push(0);
                    put_u64(&mut body, oid.raw());
                    put_u64(&mut body, *size);
                }
                Op::Write { oid, offset, data } => {
                    body.push(1);
                    put_u64(&mut body, oid.raw());
                    put_u64(&mut body, *offset);
                    put_bytes(&mut body, data);
                }
                Op::SetXattr { oid, key, value } => {
                    body.push(2);
                    put_u64(&mut body, oid.raw());
                    put_bytes(&mut body, key.as_bytes());
                    put_bytes(&mut body, value);
                }
                Op::MetaPut { key, value } => {
                    body.push(3);
                    put_bytes(&mut body, key);
                    put_bytes(&mut body, value);
                }
                Op::MetaDelete { key } => {
                    body.push(4);
                    put_bytes(&mut body, key);
                }
                Op::Delete { oid } => {
                    body.push(5);
                    put_u64(&mut body, oid.raw());
                }
            }
        }
        let body_len = (body.len() - 8) as u32;
        let crc = crc32(&body[8..]);
        body[0..4].copy_from_slice(&body_len.to_le_bytes());
        body[4..8].copy_from_slice(&crc.to_le_bytes());
        body
    }

    /// Decodes one record from the start of `raw`; returns the record and
    /// the encoded length consumed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on truncation or CRC mismatch (expected crash
    /// residue at the ring head).
    pub fn decode(raw: &[u8]) -> Result<(LogRecord, usize), StoreError> {
        let mut r = Reader { data: raw, pos: 0 };
        let len = r.u32()? as usize;
        let stored_crc = r.u32()?;
        if r.pos + len > raw.len() {
            return Err(trunc());
        }
        let body = &raw[r.pos..r.pos + len];
        if crc32(body) != stored_crc {
            return Err(StoreError::Corrupt(
                "operation-log record crc mismatch".into(),
            ));
        }
        let mut b = Reader { data: body, pos: 0 };
        let version = b.u64()?;
        let seq = b.u64()?;
        let group = GroupId(b.u32()?);
        let txn_seq = b.u64()?;
        let nops = b.u32()? as usize;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            let tag = b.byte()?;
            ops.push(match tag {
                0 => Op::Create {
                    oid: ObjectId::from_raw(b.u64()?),
                    size: b.u64()?,
                },
                1 => {
                    let oid = ObjectId::from_raw(b.u64()?);
                    let offset = b.u64()?;
                    let data = b.bytes()?.into();
                    Op::Write { oid, offset, data }
                }
                2 => {
                    let oid = ObjectId::from_raw(b.u64()?);
                    let key = String::from_utf8(b.bytes()?.to_vec())
                        .map_err(|_| StoreError::Corrupt("non-utf8 xattr key".into()))?;
                    let value = b.bytes()?.to_vec();
                    Op::SetXattr { oid, key, value }
                }
                3 => Op::MetaPut {
                    key: b.bytes()?.to_vec(),
                    value: b.bytes()?.to_vec(),
                },
                4 => Op::MetaDelete {
                    key: b.bytes()?.to_vec(),
                },
                5 => Op::Delete {
                    oid: ObjectId::from_raw(b.u64()?),
                },
                t => return Err(StoreError::Corrupt(format!("unknown op tag {t}"))),
            });
        }
        Ok((
            LogRecord {
                version,
                seq,
                txn: Transaction::new(group, txn_seq, ops),
            },
            8 + len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        let oid = ObjectId::new(GroupId(3), 42);
        LogRecord {
            version: 7,
            seq: 1001,
            txn: Transaction::new(
                GroupId(3),
                1001,
                vec![
                    Op::Create { oid, size: 4 << 20 },
                    Op::Write {
                        oid,
                        offset: 8192,
                        data: vec![0xCD; 4096].into(),
                    },
                    Op::SetXattr {
                        oid,
                        key: "oi".into(),
                        value: vec![1, 2],
                    },
                    Op::MetaPut {
                        key: b"pglog.3.7".to_vec(),
                        value: vec![5; 30],
                    },
                    Op::MetaDelete {
                        key: b"pglog.3.1".to_vec(),
                    },
                    Op::Delete { oid },
                ],
            ),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let rec = sample();
        let raw = rec.encode();
        let (decoded, consumed) = LogRecord::decode(&raw).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn decode_consumes_exact_length_with_trailing_garbage() {
        let rec = sample();
        let mut raw = rec.encode();
        let len = raw.len();
        raw.extend_from_slice(&[0xFF; 32]);
        let (decoded, consumed) = LogRecord::decode(&raw).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(consumed, len);
    }

    #[test]
    fn corruption_detected() {
        let mut raw = sample().encode();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        assert!(matches!(
            LogRecord::decode(&raw),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let raw = sample().encode();
        for cut in [0, 3, 7, raw.len() - 1] {
            assert!(LogRecord::decode(&raw[..cut]).is_err(), "cut at {cut}");
        }
    }
}
