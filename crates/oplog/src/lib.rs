//! # rablock-oplog — decoupled operation processing via an NVM operation log
//!
//! The paper's first design ingredient (§IV-A): split I/O into a
//! latency-critical *top half* that logs the operation in NVM, replicates,
//! and acks the client, and a best-effort *bottom half* that batch-flushes
//! logged operations to the backend object store.
//!
//! * [`GroupLog`] — per-logical-group operation log + index cache. Appends
//!   are W1/W2 of the paper's write path; [`GroupLog::read_path`] is the
//!   R1/R2/R3 read decision; [`GroupLog::drain_for_flush`] is the
//!   non-priority thread's batch.
//! * [`NvmRing`] — the persistent ring buffer under each log, with a
//!   CRC-protected header so a crashed node recovers its log from NVM.
//! * [`LogRecord`] — CRC-framed record carrying (group, version, sequence,
//!   transaction).
//!
//! Strong consistency falls out of the structure: a read either finds a
//! single covering write in the index cache (served straight from NVM), or
//! forces a flush before touching the store — never a stale value.

#![warn(missing_docs)]

mod entry;
mod group;
mod ring;

pub use entry::LogRecord;
pub use group::{AppendOutcome, GroupLog, IndexEntry, IndexKind, ReadPath};
pub use ring::NvmRing;
