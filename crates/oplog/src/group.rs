//! Per-logical-group operation log + index cache.
//!
//! The two data structures of §IV-A: the *operation log* stores incoming
//! operations sequentially (a producer/consumer buffer between priority and
//! non-priority threads), and the *index cache* tracks the recent writes per
//! object id so reads can be answered with strong consistency. Index entries
//! are never overwritten — each one tracks one operation in the log
//! (paper: "We do not overwrite them").

use std::collections::{HashMap, VecDeque};

use rablock_storage::{GroupId, NvmRegion, ObjectId, Op, Payload, StoreError, Transaction};

use crate::entry::LogRecord;
use crate::ring::NvmRing;

/// What kind of operation an index entry tracks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// A data write.
    Write,
    /// An xattr update (does not affect data reads).
    Xattr,
    /// An object create/pre-allocation.
    Create,
    /// An object delete.
    Delete,
}

/// One index-cache entry: a recent operation touching an object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// What the operation was.
    pub kind: IndexKind,
    /// Group version of the logged record.
    pub version: u64,
    /// Sequence number of the logged record.
    pub seq: u64,
    /// Byte offset of the write within the object (0 for non-write ops).
    pub offset: u64,
    /// Length of the write (0 for non-write ops).
    pub len: u64,
    /// Index of the op inside the logged transaction.
    pub op_index: usize,
}

/// How a read can be satisfied, per the paper's R1/R2/R3 paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadPath {
    /// R1: a single logged write covers the request — served straight from
    /// the operation log by the priority thread. The payload is a zero-copy
    /// slice of the logged record's data (refcount bump, no allocation).
    FromLog(Payload),
    /// R2/R3: the object has pending log entries that do not cover the
    /// request; the group must flush, then read from the backend store.
    FlushThenStore,
    /// No pending entries for this object; read from the backend store.
    Store,
}

/// Outcome of appending a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendOutcome {
    /// True once the pending count crosses the flush threshold.
    pub needs_flush: bool,
    /// NVM bytes consumed by the record.
    pub nvm_bytes: u64,
}

/// The operation log and index cache of one logical group.
#[derive(Debug, Clone)]
pub struct GroupLog {
    group: GroupId,
    ring: NvmRing,
    /// Decoded mirror of the ring: `(record, encoded_len)` in log order.
    /// A deque so the flush path's FIFO drain is O(1) per record.
    records: VecDeque<(LogRecord, u64)>,
    /// Recent operations per object (never overwritten, only appended).
    index: HashMap<u64, Vec<IndexEntry>>,
    /// Flush once this many records are pending (paper default: 16).
    pub flush_threshold: usize,
    /// Group version, bumped per append (§IV-C-7: kept in the log).
    version: u64,
}

impl GroupLog {
    /// Formats a fresh group log over `[base, base+len)` of `nvm`.
    ///
    /// # Errors
    ///
    /// Propagates NVM errors.
    pub fn format(
        nvm: &mut NvmRegion,
        group: GroupId,
        base: u64,
        len: u64,
        flush_threshold: usize,
    ) -> Result<Self, StoreError> {
        Ok(GroupLog {
            group,
            ring: NvmRing::format(nvm, base, len)?,
            records: VecDeque::new(),
            index: HashMap::new(),
            flush_threshold,
            version: 0,
        })
    }

    /// Recovers a group log from NVM after a crash or reboot: reopens the
    /// ring, re-decodes every queued record, and rebuilds the index cache.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the header or a queued record fails its
    /// CRC (the log is persisted before being acknowledged, so valid state
    /// never has a hole in the middle).
    pub fn recover(
        nvm: &mut NvmRegion,
        group: GroupId,
        base: u64,
        len: u64,
        flush_threshold: usize,
    ) -> Result<Self, StoreError> {
        let ring = NvmRing::open(nvm, base, len)?;
        let raw = ring.queued_bytes(nvm)?;
        let mut g = GroupLog {
            group,
            ring,
            records: VecDeque::new(),
            index: HashMap::new(),
            flush_threshold,
            version: 0,
        };
        let mut pos = 0usize;
        while pos < raw.len() {
            let (rec, consumed) = LogRecord::decode(&raw[pos..])?;
            g.version = g.version.max(rec.version);
            g.index_record(&rec);
            g.records.push_back((rec, consumed as u64));
            pos += consumed;
        }
        Ok(g)
    }

    /// Recovers like [`GroupLog::recover`], but a record that fails its CRC
    /// mid-scan is treated as a torn tail: the scan stops there, the ring
    /// head is truncated to the last valid record, and the number of
    /// discarded bytes is returned alongside the log.
    ///
    /// A torn record was by construction never acknowledged (the log is
    /// persisted before the ack), so dropping it is safe; recovering the
    /// intact prefix preserves every acknowledged write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] only if the ring *header* is damaged — then
    /// nothing can be salvaged.
    pub fn recover_truncating(
        nvm: &mut NvmRegion,
        group: GroupId,
        base: u64,
        len: u64,
        flush_threshold: usize,
    ) -> Result<(Self, u64), StoreError> {
        let mut ring = NvmRing::open(nvm, base, len)?;
        let raw = ring.queued_bytes(nvm)?;
        let mut g = GroupLog {
            group,
            ring: ring.clone(),
            records: VecDeque::new(),
            index: HashMap::new(),
            flush_threshold,
            version: 0,
        };
        let mut pos = 0usize;
        while pos < raw.len() {
            match LogRecord::decode(&raw[pos..]) {
                Ok((rec, consumed)) => {
                    g.version = g.version.max(rec.version);
                    g.index_record(&rec);
                    g.records.push_back((rec, consumed as u64));
                    pos += consumed;
                }
                Err(_) => break, // torn tail: keep the valid prefix
            }
        }
        let discarded = (raw.len() - pos) as u64;
        if discarded > 0 {
            ring.truncate_head(nvm, pos as u64)?;
            g.ring = ring;
        }
        Ok((g, discarded))
    }

    /// Fault injection: tears the tail of the newest record in place (flips
    /// the bits of its second half in NVM), simulating a crash mid-append.
    /// Returns `false` if the log is empty. The in-memory state is left
    /// untouched — callers model a crash by dropping it and re-running
    /// recovery.
    ///
    /// # Errors
    ///
    /// Propagates NVM access errors.
    pub fn tear_tail(&self, nvm: &mut NvmRegion) -> Result<bool, StoreError> {
        let Some((_, encoded_len)) = self.records.back() else {
            return Ok(false);
        };
        self.ring.corrupt_suffix(nvm, encoded_len / 2)?;
        Ok(true)
    }

    /// Fault injection: flips one bit of the `nth` queued NVM byte (modulo
    /// the queued length), modelling silent bit rot in a committed log
    /// record. The in-memory mirror stays clean, so the damage is latent
    /// until a crash forces recovery to re-read NVM — exactly how real NVM
    /// rot behaves. Returns `false` when nothing is queued.
    ///
    /// # Errors
    ///
    /// Propagates NVM access errors.
    pub fn rot_bit(&self, nvm: &mut NvmRegion, nth: u64, bit: u8) -> Result<bool, StoreError> {
        self.ring.corrupt_bit(nvm, nth, bit)
    }

    /// The group this log belongs to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Base offset of the log's ring within its NVM region.
    pub fn nvm_base(&self) -> u64 {
        self.ring.base()
    }

    /// Total NVM region length reserved for the log (header plus data).
    pub fn nvm_region_len(&self) -> u64 {
        self.ring.region_len()
    }

    /// Pending (unflushed) records.
    pub fn pending(&self) -> usize {
        self.records.len()
    }

    /// Current group version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// NVM bytes currently held by this log.
    pub fn nvm_used(&self) -> u64 {
        self.ring.used()
    }

    fn index_record(&mut self, rec: &LogRecord) {
        for (op_index, op) in rec.txn.ops.iter().enumerate() {
            let (oid, kind, offset, len) = match op {
                Op::Write { oid, offset, data } => {
                    (*oid, IndexKind::Write, *offset, data.len() as u64)
                }
                Op::SetXattr { oid, .. } => (*oid, IndexKind::Xattr, 0, 0),
                Op::Create { oid, .. } => (*oid, IndexKind::Create, 0, 0),
                Op::Delete { oid } => (*oid, IndexKind::Delete, 0, 0),
                Op::MetaPut { .. } | Op::MetaDelete { .. } => continue,
            };
            self.index.entry(oid.raw()).or_default().push(IndexEntry {
                kind,
                version: rec.version,
                seq: rec.seq,
                offset,
                len,
                op_index,
            });
        }
    }

    /// Appends a transaction to the log (the priority thread's W1+W2).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when NVM is full — the caller must flush
    /// synchronously and retry (the paper's degenerate case).
    pub fn append(
        &mut self,
        nvm: &mut NvmRegion,
        txn: Transaction,
    ) -> Result<AppendOutcome, StoreError> {
        debug_assert_eq!(txn.group, self.group, "transaction routed to wrong group");
        self.version += 1;
        let rec = LogRecord {
            version: self.version,
            seq: txn.seq,
            txn,
        };
        let raw = rec.encode();
        match self.ring.append(nvm, &raw) {
            Ok(()) => {}
            Err(e) => {
                self.version -= 1;
                return Err(e);
            }
        }
        self.index_record(&rec);
        self.records.push_back((rec, raw.len() as u64));
        Ok(AppendOutcome {
            needs_flush: self.records.len() >= self.flush_threshold,
            nvm_bytes: raw.len() as u64,
        })
    }

    /// Classifies a read (the paper's R1/R2/R3 decision).
    ///
    /// R1 requires a *single* logged write whose range covers the request
    /// and that is the newest operation on the object; anything more complex
    /// flushes first to preserve strong consistency.
    pub fn read_path(&self, oid: ObjectId, offset: u64, len: u64) -> ReadPath {
        let Some(entries) = self.index.get(&oid.raw()) else {
            return ReadPath::Store;
        };
        if entries.is_empty() {
            return ReadPath::Store;
        }
        // Pending deletes or creates change object existence/size: always
        // flush before reading. Xattr updates never affect data reads.
        if entries
            .iter()
            .any(|e| matches!(e.kind, IndexKind::Delete | IndexKind::Create))
        {
            return ReadPath::FlushThenStore;
        }
        let writes: Vec<&IndexEntry> = entries
            .iter()
            .filter(|e| e.kind == IndexKind::Write)
            .collect();
        let Some(newest) = writes.last() else {
            return ReadPath::Store; // only xattr updates pending
        };
        // The newest write must fully cover the request ("if the length of
        // the request is not larger than it of the log entry") and be the
        // only pending write — otherwise older pending writes below could
        // matter after a flush.
        let covers = newest.offset <= offset && offset + len <= newest.offset + newest.len;
        if covers && writes.len() == 1 {
            let (rec, _) = self
                .records
                .iter()
                .find(|(r, _)| r.seq == newest.seq)
                .expect("index entry references live record");
            if let Op::Write {
                offset: woff, data, ..
            } = &rec.txn.ops[newest.op_index]
            {
                let from = (offset - woff) as usize;
                return ReadPath::FromLog(data.slice(from, len as usize));
            }
        }
        ReadPath::FlushThenStore
    }

    /// Drains up to `max` oldest records for flushing to the backend store
    /// (the non-priority thread's batch). Index entries and NVM space are
    /// released; the paper then deletes the corresponding store state.
    ///
    /// # Errors
    ///
    /// Propagates NVM header-update errors.
    pub fn drain_for_flush(
        &mut self,
        nvm: &mut NvmRegion,
        max: usize,
    ) -> Result<Vec<Transaction>, StoreError> {
        let n = max.min(self.records.len());
        self.drain_front(nvm, n)
    }

    /// Drains every record whose log version is at most `version` (records
    /// are version-ordered, oldest first). A flush completion uses this
    /// with the version observed when the batch was exported, so records
    /// appended — or drained by another path — while the flush was in
    /// flight are never discarded by mistake; a count would be.
    ///
    /// # Errors
    ///
    /// Propagates NVM header-update errors.
    pub fn drain_through_version(
        &mut self,
        nvm: &mut NvmRegion,
        version: u64,
    ) -> Result<Vec<Transaction>, StoreError> {
        let n = self
            .records
            .iter()
            .take_while(|(r, _)| r.version <= version)
            .count();
        self.drain_front(nvm, n)
    }

    fn drain_front(
        &mut self,
        nvm: &mut NvmRegion,
        n: usize,
    ) -> Result<Vec<Transaction>, StoreError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(n);
        let mut drained = 0u64;
        for _ in 0..n {
            let (rec, encoded_len) = self.records.pop_front().expect("n <= records.len()");
            drained += encoded_len;
            for op in &rec.txn.ops {
                let oid = match op {
                    Op::Write { oid, .. }
                    | Op::Create { oid, .. }
                    | Op::Delete { oid }
                    | Op::SetXattr { oid, .. } => *oid,
                    _ => continue,
                };
                if let Some(entries) = self.index.get_mut(&oid.raw()) {
                    entries.retain(|e| e.seq != rec.seq);
                    if entries.is_empty() {
                        self.index.remove(&oid.raw());
                    }
                }
            }
            out.push(rec.txn);
        }
        // One tail advance (and one persisted header write) for the whole
        // batch — group commit on the consume side.
        self.ring.consume(nvm, drained)?;
        Ok(out)
    }

    /// Exports every pending record (peer recovery, §IV-A-4 step ⑤).
    pub fn export_records(&self) -> Vec<LogRecord> {
        self.records.iter().map(|(r, _)| r.clone()).collect()
    }

    /// Imports records from a peer into an empty log (replacement node
    /// synchronization, §IV-A-4 steps ⑥–⑦).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidArgument`] if this log is not empty;
    /// [`StoreError::NoSpace`] if NVM cannot hold the records.
    pub fn import_records(
        &mut self,
        nvm: &mut NvmRegion,
        records: Vec<LogRecord>,
    ) -> Result<(), StoreError> {
        if !self.records.is_empty() {
            return Err(StoreError::InvalidArgument(
                "importing into a non-empty operation log".into(),
            ));
        }
        // All-or-nothing batch append: one persisted header write covers the
        // whole import, and a NoSpace failure leaves the log untouched.
        let encoded: Vec<Vec<u8>> = records.iter().map(LogRecord::encode).collect();
        self.ring.append_batch(nvm, &encoded)?;
        for (rec, raw) in records.into_iter().zip(encoded) {
            self.version = self.version.max(rec.version);
            self.index_record(&rec);
            self.records.push_back((rec, raw.len() as u64));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u64) -> ObjectId {
        ObjectId::new(GroupId(1), i)
    }

    fn write_txn(seq: u64, o: ObjectId, offset: u64, data: Vec<u8>) -> Transaction {
        Transaction::new(
            GroupId(1),
            seq,
            vec![Op::Write {
                oid: o,
                offset,
                data: data.into(),
            }],
        )
    }

    fn fresh() -> (NvmRegion, GroupLog) {
        let mut nvm = NvmRegion::new(1 << 20);
        let g = GroupLog::format(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        (nvm, g)
    }

    #[test]
    fn append_until_threshold_requests_flush() {
        let (mut nvm, mut g) = fresh();
        for seq in 0..15 {
            let out = g
                .append(&mut nvm, write_txn(seq, oid(seq), 0, vec![1; 64]))
                .unwrap();
            assert!(!out.needs_flush, "seq {seq}");
        }
        let out = g
            .append(&mut nvm, write_txn(15, oid(15), 0, vec![1; 64]))
            .unwrap();
        assert!(out.needs_flush);
        assert_eq!(g.pending(), 16);
    }

    #[test]
    fn read_served_from_log_when_covered() {
        let (mut nvm, mut g) = fresh();
        g.append(&mut nvm, write_txn(1, oid(7), 100, (0..50u8).collect()))
            .unwrap();
        match g.read_path(oid(7), 110, 20) {
            ReadPath::FromLog(data) => assert_eq!(data, (10..30u8).collect::<Vec<_>>()),
            other => panic!("expected FromLog, got {other:?}"),
        }
    }

    #[test]
    fn uncovered_read_flushes_first() {
        let (mut nvm, mut g) = fresh();
        g.append(&mut nvm, write_txn(1, oid(7), 100, vec![1; 50]))
            .unwrap();
        // Larger than the log entry (paper's R3).
        assert_eq!(g.read_path(oid(7), 100, 200), ReadPath::FlushThenStore);
        // Outside the entry.
        assert_eq!(g.read_path(oid(7), 0, 10), ReadPath::FlushThenStore);
    }

    #[test]
    fn read_of_untouched_object_goes_to_store() {
        let (mut nvm, mut g) = fresh();
        g.append(&mut nvm, write_txn(1, oid(7), 0, vec![1; 10]))
            .unwrap();
        assert_eq!(g.read_path(oid(8), 0, 10), ReadPath::Store);
    }

    #[test]
    fn multiple_pending_writes_force_flush_on_read() {
        let (mut nvm, mut g) = fresh();
        g.append(&mut nvm, write_txn(1, oid(7), 0, vec![1; 100]))
            .unwrap();
        g.append(&mut nvm, write_txn(2, oid(7), 50, vec![2; 100]))
            .unwrap();
        // Two entries for the object: the single-entry fast path refuses.
        assert_eq!(g.read_path(oid(7), 60, 10), ReadPath::FlushThenStore);
    }

    #[test]
    fn drain_releases_nvm_and_index() {
        let (mut nvm, mut g) = fresh();
        for seq in 0..8 {
            g.append(&mut nvm, write_txn(seq, oid(seq % 2), 0, vec![3; 128]))
                .unwrap();
        }
        let used_before = g.nvm_used();
        let txns = g.drain_for_flush(&mut nvm, 8).unwrap();
        assert_eq!(txns.len(), 8);
        assert_eq!(g.pending(), 0);
        assert!(g.nvm_used() < used_before);
        assert_eq!(g.read_path(oid(0), 0, 1), ReadPath::Store);
    }

    #[test]
    fn drain_is_fifo() {
        let (mut nvm, mut g) = fresh();
        for seq in 0..5 {
            g.append(&mut nvm, write_txn(seq, oid(seq), 0, vec![seq as u8; 16]))
                .unwrap();
        }
        let txns = g.drain_for_flush(&mut nvm, 3).unwrap();
        let seqs: Vec<u64> = txns.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(g.pending(), 2);
    }

    #[test]
    fn recovery_rebuilds_log_and_index() {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut g = GroupLog::format(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        for seq in 0..6 {
            g.append(
                &mut nvm,
                write_txn(seq, oid(seq % 3), seq * 10, vec![seq as u8; 40]),
            )
            .unwrap();
        }
        g.drain_for_flush(&mut nvm, 2).unwrap();
        let exported = g.export_records();
        nvm.reboot();
        let g2 = GroupLog::recover(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        assert_eq!(g2.pending(), 4);
        assert_eq!(g2.export_records(), exported);
        assert_eq!(g2.version(), g.version());
        // Index works after recovery: oid(0) has exactly one pending write
        // left (seq 3 at offset 30; seq 0 was drained before the crash).
        match g2.read_path(oid(0), 30, 40) {
            ReadPath::FromLog(d) => assert_eq!(d, vec![3u8; 40]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn torn_tail_rejected_by_strict_recovery() {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut g = GroupLog::format(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        for seq in 0..4 {
            g.append(&mut nvm, write_txn(seq, oid(seq), 0, vec![seq as u8; 64]))
                .unwrap();
        }
        assert!(g.tear_tail(&mut nvm).unwrap());
        nvm.reboot();
        // Strict recovery sees the CRC mismatch and refuses the whole log.
        assert!(matches!(
            GroupLog::recover(&mut nvm, GroupId(1), 0, 1 << 20, 16),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn torn_tail_truncated_by_lossy_recovery() {
        let mut nvm = NvmRegion::new(1 << 20);
        let mut g = GroupLog::format(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        for seq in 0..4 {
            g.append(&mut nvm, write_txn(seq, oid(seq), 0, vec![seq as u8; 64]))
                .unwrap();
        }
        assert!(g.tear_tail(&mut nvm).unwrap());
        nvm.reboot();
        let (g2, discarded) =
            GroupLog::recover_truncating(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        assert!(discarded > 0, "the torn record is discarded");
        assert_eq!(g2.pending(), 3, "the intact prefix survives");
        for seq in 0..3u64 {
            match g2.read_path(oid(seq), 0, 64) {
                ReadPath::FromLog(d) => assert_eq!(d, vec![seq as u8; 64]),
                other => panic!("unexpected {other:?}"),
            }
        }
        // The truncated ring accepts fresh appends and re-recovers cleanly.
        let mut g2 = g2;
        g2.append(&mut nvm, write_txn(9, oid(9), 0, vec![9u8; 64]))
            .unwrap();
        nvm.reboot();
        let (g3, d3) = GroupLog::recover_truncating(&mut nvm, GroupId(1), 0, 1 << 20, 16).unwrap();
        assert_eq!(d3, 0);
        assert_eq!(g3.pending(), 4);
    }

    #[test]
    fn empty_log_tear_is_a_noop() {
        let (mut nvm, g) = fresh();
        assert!(!g.tear_tail(&mut nvm).unwrap());
    }

    #[test]
    fn nvm_exhaustion_surfaces_no_space() {
        let mut nvm = NvmRegion::new(4096);
        let mut g = GroupLog::format(&mut nvm, GroupId(1), 0, 4096, 1000).unwrap();
        let mut filled = 0;
        loop {
            match g.append(&mut nvm, write_txn(filled, oid(0), 0, vec![0; 256])) {
                Ok(_) => filled += 1,
                Err(StoreError::NoSpace) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(filled > 5, "filled {filled} records first");
        // Draining makes room again.
        g.drain_for_flush(&mut nvm, 2).unwrap();
        g.append(&mut nvm, write_txn(999, oid(0), 0, vec![0; 256]))
            .unwrap();
    }

    #[test]
    fn peer_import_replicates_state() {
        let (mut nvm_a, mut a) = fresh();
        for seq in 0..5 {
            a.append(&mut nvm_a, write_txn(seq, oid(seq), 0, vec![9; 64]))
                .unwrap();
        }
        let mut nvm_b = NvmRegion::new(1 << 20);
        let mut b = GroupLog::format(&mut nvm_b, GroupId(1), 0, 1 << 20, 16).unwrap();
        b.import_records(&mut nvm_b, a.export_records()).unwrap();
        assert_eq!(b.pending(), 5);
        assert_eq!(b.export_records(), a.export_records());
        assert!(
            b.import_records(&mut nvm_b, a.export_records()).is_err(),
            "non-empty import rejected"
        );
    }
}
