//! Model-based property tests: the CPU-efficient object store against a
//! byte-array model, including mount-recovery equivalence.

use proptest::prelude::*;
use rablock_cos::{CosObjectStore, CosOptions};
use rablock_storage::{GroupId, MemDisk, ObjectId, ObjectStore, Op, Transaction};

const OBJ_BYTES: u64 = 64 << 10;
const OBJECTS: u64 = 4;

#[derive(Debug, Clone)]
enum StoreOp {
    Write {
        obj: u64,
        offset: u64,
        len: u64,
        fill: u8,
    },
    Read {
        obj: u64,
        offset: u64,
        len: u64,
    },
    Delete {
        obj: u64,
    },
    Maintain,
}

fn ops() -> impl Strategy<Value = Vec<StoreOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..OBJECTS, 0..OBJ_BYTES - 1, 1u64..16_000, any::<u8>()).prop_map(
                |(obj, offset, len, fill)| {
                    let len = len.min(OBJ_BYTES - offset);
                    StoreOp::Write { obj, offset, len, fill }
                }
            ),
            3 => (0..OBJECTS, 0..OBJ_BYTES - 1, 1u64..16_000).prop_map(|(obj, offset, len)| {
                let len = len.min(OBJ_BYTES - offset);
                StoreOp::Read { obj, offset, len }
            }),
            1 => (0..OBJECTS).prop_map(|obj| StoreOp::Delete { obj }),
            1 => Just(StoreOp::Maintain),
        ],
        1..80,
    )
}

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId((i % 2) as u32), i)
}

/// Model entry: `(logical_size, bytes)`; `None` = deleted.
type ModelObj = Option<(u64, Vec<u8>)>;

fn run_script(opts: CosOptions, script: Vec<StoreOp>) -> (CosObjectStore<MemDisk>, Vec<ModelObj>) {
    let mut store = CosObjectStore::format(MemDisk::new(32 << 20), opts).unwrap();
    let mut model: Vec<ModelObj> = (0..OBJECTS)
        .map(|_| Some((OBJ_BYTES, vec![0u8; OBJ_BYTES as usize])))
        .collect();
    let mut seq = 0u64;
    for i in 0..OBJECTS {
        seq += 1;
        store
            .submit(Transaction::new(
                oid(i).group(),
                seq,
                vec![Op::Create {
                    oid: oid(i),
                    size: OBJ_BYTES,
                }],
            ))
            .unwrap();
    }
    for op in script {
        seq += 1;
        match op {
            StoreOp::Write {
                obj,
                offset,
                len,
                fill,
            } => {
                let txn = Transaction::new(
                    oid(obj).group(),
                    seq,
                    vec![Op::Write {
                        oid: oid(obj),
                        offset,
                        data: vec![fill; len as usize].into(),
                    }],
                );
                if model[obj as usize].is_none() {
                    // A write to a deleted object recreates it from zeroes,
                    // sized by the write's extent.
                    model[obj as usize] = Some((0, vec![0u8; OBJ_BYTES as usize]));
                }
                store.submit(txn).unwrap();
                let m = model[obj as usize].as_mut().unwrap();
                m.0 = m.0.max(offset + len);
                m.1[offset as usize..(offset + len) as usize].fill(fill);
            }
            StoreOp::Read { obj, offset, len } => {
                let got = store.read(oid(obj), offset, len);
                match &model[obj as usize] {
                    Some((size, bytes)) if offset + len <= *size => {
                        assert_eq!(
                            got.unwrap(),
                            bytes[offset as usize..(offset + len) as usize].to_vec()
                        );
                    }
                    _ => assert!(got.is_err(), "read past size / of deleted object must fail"),
                }
            }
            StoreOp::Delete { obj } => {
                let txn =
                    Transaction::new(oid(obj).group(), seq, vec![Op::Delete { oid: oid(obj) }]);
                match &model[obj as usize] {
                    Some(_) => {
                        store.submit(txn).unwrap();
                        model[obj as usize] = None;
                    }
                    None => assert!(store.submit(txn).is_err()),
                }
            }
            StoreOp::Maintain => {
                if store.needs_maintenance() {
                    store.maintenance();
                }
            }
        }
    }
    (store, model)
}

fn check_all(store: &mut CosObjectStore<MemDisk>, model: &[ModelObj]) {
    for (i, m) in model.iter().enumerate() {
        match m {
            Some((size, bytes)) => {
                if *size > 0 {
                    let got = store.read(oid(i as u64), 0, *size).unwrap();
                    assert_eq!(&got, &bytes[..*size as usize], "object {i}");
                }
            }
            None => assert!(
                store.read(oid(i as u64), 0, 1).is_err(),
                "object {i} deleted"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random writes/reads/deletes agree with a byte-array model, under
    /// each metadata-path configuration.
    #[test]
    fn store_matches_model(script in ops(), cache in any::<bool>(), prealloc in any::<bool>()) {
        let opts = CosOptions { metadata_cache: cache, pre_allocate: prealloc, ..CosOptions::tiny() };
        let (mut store, model) = run_script(opts, script);
        check_all(&mut store, &model);
    }

    /// After any script + full flush, unmounting and remounting the device
    /// reproduces the same state (allocator + radix rebuild from onodes).
    #[test]
    fn mount_round_trips_state(script in ops()) {
        let opts = CosOptions { metadata_cache: false, ..CosOptions::tiny() };
        let (mut store, model) = run_script(opts.clone(), script);
        while store.needs_maintenance() {
            store.maintenance();
        }
        let dev = store.into_device();
        let mut store2 = CosObjectStore::mount(dev, opts).unwrap();
        check_all(&mut store2, &model);
    }
}
