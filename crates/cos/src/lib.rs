//! # rablock-cos — the CPU-efficient object store
//!
//! The paper's backend contribution (§IV-C), built from scratch: an
//! in-place-update object store on a raw device that eliminates the LSM
//! backend's compaction CPU burn and host-side write amplification.
//!
//! * [`CosObjectStore`] — the [`ObjectStore`](rablock_storage::ObjectStore)
//!   backend: sharded partitions (one per non-priority thread), modulo
//!   group→partition distribution.
//! * [`ExtentBTree`] — per-partition free-block B+tree with max-length hints
//!   (XFS-style first-fit in O(log n)).
//! * [`RadixTree`] — onode lookup keyed by object id.
//! * [`Onode`] / [`ExtentMap`] — fixed 512-byte object metadata with an
//!   extent block map and inline xattrs; overflow extents spill to a
//!   metadata block.
//! * [`MetaCache`] — NVM metadata cache that absorbs per-write onode
//!   updates (WAF → ~1.0, Fig. 8-b).
//! * [`CosOptions`] — toggles for the paper's ablations: `pre_allocate`
//!   on/off, `metadata_cache` on/off, partition count (Fig. 11).
//!
//! Crash consistency: the operation log in NVM (crate `rablock-oplog`) is
//! the REDO log; mount rebuilds allocator and index state from the onode
//! table and replays the log above this layer (§IV-C-6).

#![warn(missing_docs)]

mod btree;
mod layout;
mod metacache;
mod onode;
mod partition;
mod radix;
mod store;
mod util;

pub use btree::ExtentBTree;
pub use layout::{CosOptions, PartGeometry, BLOCK_BYTES, SUPERBLOCK_BYTES};
pub use metacache::MetaCache;
pub use onode::{Extent, ExtentMap, Onode, INLINE_EXTENTS, ONODE_BYTES};
pub use radix::RadixTree;
pub use store::CosObjectStore;

pub(crate) use util::crc32;
