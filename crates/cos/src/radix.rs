//! Radix tree for onode lookup.
//!
//! The paper's object store locates onodes with a radix tree keyed by the
//! object id (§IV-C-1): a few leftmost bits pick the sharded partition, the
//! rest index within it. This is a 16-way (nibble-at-a-time) radix tree over
//! the 48-bit object index, mapping to the onode's slot number in the
//! partition's onode table. Lookup cost is bounded by key width, not
//! population — no rebalancing, no comparisons, cheap CPU.

/// Number of children per node (one hex nibble).
const FANOUT: usize = 16;
/// Nibbles in a 48-bit object index.
const DEPTH: usize = 12;

#[derive(Debug, Clone)]
struct RadixNode {
    children: [Option<Box<RadixNode>>; FANOUT],
    value: Option<u32>,
    /// Number of values stored in this subtree (enables cheap pruning).
    population: usize,
}

impl RadixNode {
    fn new() -> Self {
        RadixNode {
            children: Default::default(),
            value: None,
            population: 0,
        }
    }
}

/// A radix tree from 48-bit object indexes to onode slot ids.
///
/// ```
/// use rablock_cos::RadixTree;
/// let mut t = RadixTree::new();
/// t.insert(42, 7);
/// assert_eq!(t.get(42), Some(7));
/// assert_eq!(t.get(43), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RadixTree {
    root: Option<Box<RadixNode>>,
    len: usize,
}

fn nibble(key: u64, level: usize) -> usize {
    ((key >> ((DEPTH - 1 - level) * 4)) & 0xF) as usize
}

impl RadixTree {
    /// An empty tree.
    pub fn new() -> Self {
        RadixTree::default()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the slot for `key`; returns the previous slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds 48 bits (object indexes never do).
    pub fn insert(&mut self, key: u64, slot: u32) -> Option<u32> {
        assert!(key < (1 << 48), "key exceeds 48 bits");
        fn rec(node: &mut RadixNode, key: u64, level: usize, slot: u32) -> Option<u32> {
            let prev = if level == DEPTH {
                node.value.replace(slot)
            } else {
                let idx = nibble(key, level);
                let child = node.children[idx].get_or_insert_with(|| Box::new(RadixNode::new()));
                rec(child, key, level + 1, slot)
            };
            if prev.is_none() {
                node.population += 1;
            }
            prev
        }
        let root = self.root.get_or_insert_with(|| Box::new(RadixNode::new()));
        let prev = rec(root, key, 0, slot);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Looks up the slot for `key`.
    pub fn get(&self, key: u64) -> Option<u32> {
        let mut node = self.root.as_deref()?;
        for level in 0..DEPTH {
            node = node.children[nibble(key, level)].as_deref()?;
        }
        node.value
    }

    /// Removes the mapping for `key`; returns the removed slot.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        fn rec(node: &mut RadixNode, key: u64, level: usize) -> Option<u32> {
            let removed = if level == DEPTH {
                node.value.take()
            } else {
                let idx = nibble(key, level);
                let child = node.children[idx].as_mut()?;
                let removed = rec(child, key, level + 1)?;
                if child.population == 0 {
                    node.children[idx] = None;
                }
                Some(removed)
            };
            if removed.is_some() {
                node.population -= 1;
            }
            removed
        }
        let root = self.root.as_mut()?;
        let removed = rec(root, key, 0)?;
        if root.population == 0 {
            self.root = None;
        }
        self.len -= 1;
        Some(removed)
    }

    /// Iterates `(key, slot)` pairs in key order.
    pub fn iter(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::with_capacity(self.len);
        fn rec(node: &RadixNode, prefix: u64, level: usize, out: &mut Vec<(u64, u32)>) {
            if level == DEPTH {
                if let Some(v) = node.value {
                    out.push((prefix, v));
                }
                return;
            }
            for (i, child) in node.children.iter().enumerate() {
                if let Some(c) = child {
                    rec(c, (prefix << 4) | i as u64, level + 1, out);
                }
            }
        }
        if let Some(root) = &self.root {
            rec(root, 0, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut t = RadixTree::new();
        assert_eq!(t.insert(100, 1), None);
        assert_eq!(t.insert(100, 2), Some(1));
        assert_eq!(t.get(100), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(100), Some(2));
        assert_eq!(t.get(100), None);
        assert!(t.is_empty());
    }

    #[test]
    fn near_miss_keys_do_not_collide() {
        let mut t = RadixTree::new();
        t.insert(0xABCDEF, 1);
        assert_eq!(t.get(0xABCDEE), None);
        assert_eq!(t.get(0xABCDE), None);
        assert_eq!(t.get(0xABCDEF0), None);
    }

    #[test]
    fn removal_prunes_empty_paths() {
        let mut t = RadixTree::new();
        t.insert(1, 1);
        t.insert((1 << 47) | 1, 2);
        t.remove(1);
        assert_eq!(t.get((1 << 47) | 1), Some(2));
        t.remove((1 << 47) | 1);
        assert!(t.root.is_none(), "tree fully pruned");
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut t = RadixTree::new();
        for (i, k) in [500u64, 3, 0xFFFF_FFFF, 42, 0].iter().enumerate() {
            t.insert(*k, i as u32);
        }
        let keys: Vec<u64> = t.iter().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 3, 42, 500, 0xFFFF_FFFF]);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_key_rejected() {
        RadixTree::new().insert(1 << 48, 0);
    }

    proptest! {
        #[test]
        fn matches_btreemap_model(ops in proptest::collection::vec(
            (0u8..3, 0u64..(1 << 20), 0u32..1000), 1..300)) {
            let mut tree = RadixTree::new();
            let mut model = std::collections::BTreeMap::new();
            for (kind, key, slot) in ops {
                match kind {
                    0 => {
                        prop_assert_eq!(tree.insert(key, slot), model.insert(key, slot));
                    }
                    1 => {
                        prop_assert_eq!(tree.remove(key), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(tree.get(key), model.get(&key).copied());
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
            let entries: Vec<(u64, u32)> = model.into_iter().collect();
            prop_assert_eq!(tree.iter(), entries);
        }
    }
}
